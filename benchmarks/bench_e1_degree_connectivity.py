"""E1 — Lemma 2.1: ΘALG's output N is connected with degree ≤ 4π/θ.

Paper claim: for any node distribution (with G* connected) and any
θ ≤ π/3, the topology N is connected and every node has at most 4π/θ
incident edges.  The table sweeps n × θ × distribution.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import e1_degree_connectivity


def test_e1_degree_connectivity(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e1_degree_connectivity(
            ns=(64, 128, 256, 512),
            thetas=(math.pi / 6, math.pi / 9, math.pi / 12),
            distributions=("uniform", "clustered", "ring", "two_cluster"),
            rng=0,
        ),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e1_degree_connectivity",
        render_table(rows, title="E1: Lemma 2.1 — connectivity and degree bound of N"),
    )
    for r in rows:
        assert r["N_connected"], r
        assert r["within_bound"], r
