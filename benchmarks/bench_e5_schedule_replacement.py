"""E5 — Theorem 2.8 / Lemma 2.9: simulating G* schedules on N.

Paper claim: any set W of packets deliverable by a schedule on G* in t
steps is deliverable on N in O(t·I + n²) steps.  The constructive core
replaces each G* edge by its θ-path in N; Lemma 2.9 bounds by 6 the
number of θ-paths that reuse any single N edge within one
(non-interfering) step.  The bench replaces random greedy maximal
non-interfering G* edge sets and reports the observed congestion.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import (
    e5_schedule_replacement,
    e5b_full_simulation,
    e5c_packet_transform,
)


def test_e5_schedule_replacement(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e5_schedule_replacement(ns=(64, 128, 256), steps=20, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e5_schedule_replacement",
        render_table(rows, title="E5: Lemma 2.9 — θ-path congestion when simulating G* steps on N"),
    )
    for r in rows:
        assert r["within_bound"], r
        assert r["paths_replaced"] > 0, r


def test_e5c_packet_transform(benchmark, record_table):
    """Packet-level Theorem 2.8: transform witnessed G* packet schedules
    into validated interference-free N schedules; inflation ≤ O(I)."""
    rows = benchmark.pedantic(
        lambda: e5c_packet_transform(ns=(48, 96), n_packets=25, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e5c_packet_transform",
        render_table(rows, title="E5c: Theorem 2.8 — packet-schedule transform, makespan inflation"),
    )
    for r in rows:
        assert r["inflation"] <= r["interference_I"] + 1, r
        assert r["makespan_N"] >= r["makespan_Gstar"] * 0.5, r


def test_e5b_full_simulation(benchmark, record_table):
    """End-to-end Theorem 2.8: whole-G*-schedule slowdown on N ≤ O(I)."""
    rows = benchmark.pedantic(
        lambda: e5b_full_simulation(ns=(48, 96), rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e5b_full_simulation",
        render_table(rows, title="E5b: Theorem 2.8 — slowdown of a complete G* schedule simulated on N"),
    )
    for r in rows:
        # Slowdown within the theorem's O(I) envelope, far under it.
        assert r["slowdown"] <= r["interference_I"], r
        assert r["n_slots_on_N"] >= r["gstar_rounds"] * 0.2, r
