"""E12 — §3.2: the threshold/buffer trade-off of balancing.

Paper context: Theorem 3.1 buys its (1−ε) throughput with buffers a
factor ≈ O(L̄/ε) larger than OPT's.  This ablation sweeps the
threshold T and buffer height H on a fixed stream workload, showing

* throughput increasing in H (too-small buffers drop load),
* the stuck-packet tail growing with T (ramp-up packets below the
  gradient never deliver — the additive slack of the theorem),
* drops vanishing once H clears the working set.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import e12_buffer_tradeoff
from repro.analysis.tables import render_table


def test_e12_buffer_tradeoff(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e12_buffer_tradeoff(
            thresholds=(1, 4, 16, 64), heights=(8, 32, 128, 512), duration=400, rng=0
        ),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e12_buffer_tradeoff",
        render_table(rows, title="E12: §3.2 — throughput/drops vs threshold T and buffer height H"),
    )
    # Monotone in H at fixed T=1.
    t1 = sorted((r for r in rows if r["threshold_T"] == 1), key=lambda r: r["height_H"])
    deliv = [r["delivered"] for r in t1]
    assert deliv == sorted(deliv)
    # Larger T leaves (weakly) more packets stuck at the largest H.
    h_max = max(r["height_H"] for r in rows)
    tails = {
        r["threshold_T"]: r["witness"] - r["delivered"]
        for r in rows
        if r["height_H"] == h_max
    }
    assert tails[64] >= tails[1]
