"""E3 — Theorem 2.7: O(1) distance-stretch on civilized graphs.

Paper claim: when the input is a λ-precision ("civilized") point set —
all pairwise distances at least λ·D for constant λ — the topology N is
a spanner: Euclidean path lengths in N are within a constant of the
shortest paths in G*.  The table sweeps n × λ × θ.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import e3_distance_stretch_civilized

DISTANCE_STRETCH_CEILING = 4.0


def test_e3_distance_stretch_civilized(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e3_distance_stretch_civilized(
            ns=(64, 128, 256),
            lams=(0.3, 0.5, 0.8),
            thetas=(math.pi / 6, math.pi / 12),
            rng=0,
            max_sources=96,
        ),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e3_distance_stretch",
        render_table(rows, title="E3: Theorem 2.7 — distance-stretch of N on civilized point sets"),
    )
    for r in rows:
        assert r["connected"], r
        assert r["distance_stretch_max"] < DISTANCE_STRETCH_CEILING, r
