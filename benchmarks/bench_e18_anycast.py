"""E18 — anycast balancing vs fixed-member unicast (extension).

The paper generalizes the anycast balancing of [10] to edge costs; the
library implements both directions.  With more replicas, anycast's
gradient pulls packets to the nearest member: deliveries should not
drop and per-packet energy should not rise as the group grows, while
unicast to a fixed member gains nothing from extra replicas.
"""

from __future__ import annotations

from repro.analysis.anycast_experiments import e18_anycast
from repro.analysis.tables import render_table


def test_e18_anycast(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e18_anycast(n=80, duration=500, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table("e18_anycast", render_table(rows, title="E18: anycast balancing vs fixed-member unicast"))
    for r in rows:
        assert r["anycast_delivered"] > 0, r
    # With ≥ 2 replicas anycast delivers at least as much as unicast…
    multi = [r for r in rows if r["group_size"] >= 2]
    assert all(r["anycast_delivered"] >= 0.9 * r["unicast_delivered"] for r in multi), rows
    # …and at the largest group its energy per packet is no worse.
    biggest = max(rows, key=lambda r: r["group_size"])
    assert biggest["anycast_avg_cost"] <= 1.2 * biggest["unicast_avg_cost"], rows