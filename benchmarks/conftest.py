"""Shared plumbing for the experiment benchmarks.

Every benchmark regenerates one experiment table (see DESIGN.md §2 for
the experiment index), prints it, writes it under
``benchmarks/results/``, and asserts the paper's claim for that
experiment.  ``pytest benchmarks/ --benchmark-only`` runs everything;
``-s`` shows the tables inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Print a rendered table and persist it to results/<name>.txt."""

    def _record(name: str, table: str) -> None:
        print()
        print(table)
        (results_dir / f"{name}.txt").write_text(table + "\n")

    return _record
