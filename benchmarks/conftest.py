"""Shared plumbing for the experiment benchmarks.

Every benchmark regenerates one experiment table (see DESIGN.md §2 for
the experiment index), prints it, writes it under the results
directory, and asserts the paper's claim for that experiment.  ``pytest
benchmarks/ --benchmark-only`` runs everything; ``-s`` shows the tables
inline.

The results directory defaults to ``benchmarks/results/`` next to this
file and can be redirected with the ``REPRO_RESULTS_DIR`` environment
variable (CI points it at the artifact staging dir).  The benches share
the experiment definitions with ``python -m repro verify`` through the
claim registry (:mod:`repro.harness.registry`), so a claim's "full"
parameters exist in exactly one place.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.registry import REGISTRY, build_rows


def _results_dir() -> Path:
    env = os.environ.get("REPRO_RESULTS_DIR")
    return Path(env) if env else Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = _results_dir()
    path.mkdir(parents=True, exist_ok=True)
    assert path.is_dir(), f"results dir {path} was not created"
    return path


@pytest.fixture
def record_table(results_dir):
    """Print a rendered table and persist it to results/<name>.txt."""

    def _record(name: str, table: str) -> None:
        print()
        print(table)
        (results_dir / f"{name}.txt").write_text(table + "\n")

    return _record


@pytest.fixture
def claim_rows():
    """Run a registry claim's harness at full (or quick) scale.

    Lets a bench consume the same parameter sets ``repro verify``
    gates on, instead of restating them.
    """

    def _rows(claim_id: str, profile: str = "full") -> list[dict]:
        return build_rows(REGISTRY[claim_id], profile)

    return _rows
