"""E6 — Theorem 3.1: competitiveness of (T, γ)-balancing with a MAC.

Paper claim: with T ≥ B + 2(δ−1) and γ ≥ (T+B+δ)·L̄/C̄, the
(T, γ)-balancing algorithm is
``(1−ε, 1 + 2(1+(T+δ)/B)·L̄/ε, 1 + 2/ε)``-competitive: it delivers a
(1−ε) fraction of what an optimal schedule with buffer B and average
cost C̄ delivers, with buffers O(L̄/ε)·B and average cost ≤ (1+2/ε)·C̄.

The bench runs sustained-stream witnessed workloads on ring and grid
topologies across an ε sweep and reports the measured (t, s, c)
triples; the γ=0 row is the cost-oblivious ablation and the SP row a
shortest-path baseline.  Ratios sit slightly below (1−ε) at finite
horizons because the theorem's additive slack (ramp-up packets stuck
below the threshold gradient) has not amortized away.
"""

from __future__ import annotations

import math

from repro.analysis.routing_experiments import e6_balancing_competitive
from repro.analysis.tables import render_table

ABSOLUTE_FLOOR = 0.45  # raw delivered/witness sanity floor at this horizon


def test_e6_balancing_competitive(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e6_balancing_competitive(epsilons=(0.5, 0.25, 0.1), duration=500, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e6_balancing_competitive",
        render_table(rows, title="E6: Theorem 3.1 — (t, s, c)-competitiveness of (T, γ)-balancing"),
    )
    theorem_rows = [
        r for r in rows if "[" not in r["workload"] and not math.isnan(r["epsilon"])
    ]
    assert theorem_rows
    for r in theorem_rows:
        # The theorem's exact form: delivered ≥ (1-ε)·OPT − r, with the
        # additive slack r realized by the packets still ramping up the
        # threshold gradient when the horizon ends (the leftover).
        assert r["delivered"] >= r["target_fraction"] * r["witness"] - r["leftover"], r
        # Absolute sanity: well over half the witness at this horizon.
        assert r["throughput_ratio"] >= ABSOLUTE_FLOOR, r
        assert r["cost_ratio"] <= r["cost_bound"], r
