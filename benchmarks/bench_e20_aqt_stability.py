"""E20 — stability under (w, ρ)-bounded adversaries (§1.2 AQT lineage).

The paper's balancing results descend from adversarial queuing theory,
where the adversary's injections must be feasible (each edge loaded at
most ρ·w per w-window, ρ < 1) and the question is queue *stability*.
This bench asks that classical question of the (T, γ)-balancing
algorithm: buffer heights should stay bounded (no linear growth with
the horizon) for subcritical ρ, growing with ρ but not with time.

Rows come from the claim registry (the same parameters ``repro verify``
gates on); the assertions mirror ``repro.harness.checks.check_e20``.
"""

from __future__ import annotations

from repro.analysis.tables import render_table


def test_e20_aqt_stability(benchmark, record_table, claim_rows):
    rows = benchmark.pedantic(lambda: claim_rows("e20"), iterations=1, rounds=1)
    record_table(
        "e20_aqt_stability",
        render_table(rows, title="E20: stability of (T, γ)-balancing under (w, ρ)-bounded adversaries"),
    )
    for r in rows:
        assert r["measured_window_load"] <= r["rho"] + 1e-9, r
    # Stability: doubling the horizon must not double the peak height.
    for rho in sorted({r["rho"] for r in rows}):
        sub = [r for r in rows if r["rho"] == rho]
        short = min(sub, key=lambda r: r["duration"])
        long = max(sub, key=lambda r: r["duration"])
        assert long["max_buffer_height"] <= 1.5 * max(short["max_buffer_height"], 4), (
            short,
            long,
        )
