"""E20 — stability under (w, ρ)-bounded adversaries (§1.2 AQT lineage).

The paper's balancing results descend from adversarial queuing theory,
where the adversary's injections must be feasible (each edge loaded at
most ρ·w per w-window, ρ < 1) and the question is queue *stability*.
This bench asks that classical question of the (T, γ)-balancing
algorithm: buffer heights should stay bounded (no linear growth with
the horizon) for subcritical ρ, growing with ρ but not with time.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import grid_graph
from repro.analysis.tables import render_table
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.sim.aqt import bounded_adversary_scenario, max_window_load
from repro.sim.engine import SimulationEngine


def _rows():
    rows = []
    g = grid_graph(5)
    for rho in (0.25, 0.5, 0.75):
        for duration in (200, 400):
            scenario = bounded_adversary_scenario(
                g, rho=rho, window=8, duration=duration, rng=0
            )
            router = BalancingRouter(
                g.n_nodes,
                scenario.destinations,
                BalancingConfig(threshold=1.0, gamma=0.0, max_height=100_000),
            )
            SimulationEngine.for_scenario(router, scenario).run(scenario.duration)
            rows.append(
                {
                    "rho": rho,
                    "duration": duration,
                    "measured_window_load": round(max_window_load(scenario, 8), 3),
                    "injected": router.stats.injected,
                    "delivered": router.stats.delivered,
                    "max_buffer_height": router.stats.max_buffer_height,
                    "in_flight_at_end": router.total_packets(),
                }
            )
    return rows


def test_e20_aqt_stability(benchmark, record_table):
    rows = benchmark.pedantic(_rows, iterations=1, rounds=1)
    record_table("e20_aqt_stability", render_table(rows, title="E20: stability of (T, γ)-balancing under (w, ρ)-bounded adversaries"))
    for r in rows:
        assert r["measured_window_load"] <= r["rho"] + 1e-9, r
    # Stability: doubling the horizon must not double the peak height.
    for rho in (0.25, 0.5, 0.75):
        short = next(r for r in rows if r["rho"] == rho and r["duration"] == 200)
        long = next(r for r in rows if r["rho"] == rho and r["duration"] == 400)
        assert long["max_buffer_height"] <= 1.5 * max(short["max_buffer_height"], 4), (
            short,
            long,
        )