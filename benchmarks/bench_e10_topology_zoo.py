"""E10 — the §1.2 related-work comparison table ("topology zoo").

The paper positions ΘALG against the classical proximity graphs:

* Yao graph (N₁)      — spanner, but Ω(n) worst-case degree;
* Gabriel graph       — optimal energy paths, Ω(n) degree;
* RNG                 — sparse, polynomial energy-stretch worst case;
* restricted Delaunay — spanner, Ω(n) degree worst case;
* kNN                 — not even connected in general;
* Euclidean MST       — sparsest, unbounded stretch.

ΘALG's N is the only entry that simultaneously guarantees O(1) degree,
O(1) energy-stretch, and connectivity.  The bench reproduces the
comparison quantitatively on uniform and civilized inputs, including
each topology's interference number.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import e10_topology_zoo


def test_e10_topology_zoo(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e10_topology_zoo(n=256, distributions=("uniform", "civilized"), rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e10_topology_zoo",
        render_table(rows, title="E10: §1.2 — topology comparison (degree / stretch / interference)"),
    )
    by_key = {(r["distribution"], r["topology"]): r for r in rows}
    for dist in ("uniform", "civilized"):
        theta = by_key[(dist, "ThetaALG(N)")]
        gstar = by_key[(dist, "Gstar")]
        mst = by_key[(dist, "MST")]
        assert theta["connected"]
        assert theta["energy_stretch"] < 3.0
        assert theta["max_degree"] < gstar["max_degree"] or gstar["max_degree"] <= 8
        # The MST is sparser but pays for it in stretch.
        assert mst["energy_stretch"] >= theta["energy_stretch"] - 1e-9
