"""E17 — greedy geographic routing vs topology sparsity (§1.2 context).

Greedy geographic forwarding (the stateless mode of GPSR, cited in the
paper's related work) delivers only when no local minimum intervenes.
Denser graphs have fewer minima, so sparsification — the very thing
topology control does — erodes greedy deliverability.  The bench
quantifies the trade and shows why the paper's balancing layer, which
needs no geometric progress, composes better with ΘALG.
"""

from __future__ import annotations

from repro.analysis.geographic_experiments import e17_geographic_routing
from repro.analysis.tables import render_table


def test_e17_geographic(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e17_geographic_routing(n=200, n_pairs=300, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e17_geographic",
        render_table(rows, title="E17: greedy geographic routing — delivery rate vs sparsity"),
    )
    by_name = {r["topology"]: r for r in rows}
    # Density ordering: G* ≥ ΘALG ≥ MST in greedy deliverability.
    assert by_name["Gstar"]["greedy_delivery_rate"] >= by_name["ThetaALG(N)"]["greedy_delivery_rate"]
    assert by_name["ThetaALG(N)"]["greedy_delivery_rate"] >= by_name["MST"]["greedy_delivery_rate"]
    # G* greedy is near-perfect at this density.
    assert by_name["Gstar"]["greedy_delivery_rate"] >= 0.9