"""E8 — Corollary 3.5: O(1/log n)-competitiveness on random nodes.

Paper claim: for nodes uniformly random in the unit square, ΘALG +
(T, γ, I)-balancing is (O(1/log n), O(L̄))-competitive against an
optimal algorithm free to use any G* edges.  The bench grows n and
checks that throughput-ratio × ln n does not collapse — i.e. the decay
is no faster than 1/ln n up to the constant hidden in Lemma 2.10's
interference bound.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import e8_random_competitive
from repro.analysis.tables import render_table


def test_e8_random_competitive(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e8_random_competitive(ns=(32, 64, 128, 256), duration=2000, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e8_random_competitive",
        render_table(rows, title="E8: Corollary 3.5 — throughput ratio × ln n across n (uniform random)"),
    )
    for r in rows:
        assert r["delivered"] > 0, r
    # I grows like log n times a constant; the ratio should not decay
    # faster than 1/I (up to noise): ratio × I bounded below.
    prods = [r["throughput_vs_witness"] * r["interference_I"] for r in rows]
    assert min(prods) > 0.05 * max(prods), rows
