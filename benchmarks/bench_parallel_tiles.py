"""Performance bench: sharded-plane engine vs the serial kernels.

The payoff of :mod:`repro.parallel`: the construction kernels and the
churn applier stop being single-core.  Timed series (all land in
``BENCH_baseline.json`` under the usual 3× gate):

* ΘALG construction at n = 100 000 across 1/2/4 pinned workers — the
  cores-vs-speedup curve of ``docs/performance.md`` — plus a
  n = 300 000 point proving the story holds an order of magnitude past
  the old n = 30 000 ceiling;
* §2.4 conflict-row construction at n = 30 000 on 4 workers;
* a 5 %-churn trace applied through :class:`TileWorkerPool` vs the
  serial per-event loop.

Speedup gates only assert when the runner actually has ≥ 4 cores
(``os.sched_getaffinity``); correctness (edge-for-edge, row-for-row
equality against the serial kernels) asserts everywhere, so a 1-core
run still validates the engine while CI's multi-core lane enforces the
≥ 2× acceptance floor.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from repro.core.theta import theta_algorithm
from repro.dynamic.events import random_event_trace
from repro.dynamic.incremental import IncrementalTheta
from repro.dynamic.interference import DynamicInterference
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.interference.conflict import interference_sets
from repro.parallel import TiledEngine, TileWorkerPool

THETA = math.pi / 9
DELTA = 0.5
#: pinned worker counts for the cores-vs-speedup curve.
WORKER_CURVE = (1, 2, 4)
SPEEDUP_FLOOR = 2.0


def _cores() -> int:
    return len(os.sched_getaffinity(0))


def _world(n: int, *, rng: int = 2):
    side = math.sqrt(n)
    pts = uniform_points(n, rng=rng) * side
    d = max_range_for_connectivity(pts, method="sparse")
    return pts, d, side


@pytest.mark.parametrize("n", [100_000])
def test_tiled_theta_speedup_curve(benchmark, n):
    """ΘALG over tiles across 1/2/4 workers vs one serial run."""
    pts, d, _ = _world(n)

    t0 = time.perf_counter()
    topo = theta_algorithm(pts, THETA, d)
    t_serial = time.perf_counter() - t0
    serial_edges = topo.edge_set()

    curve = {}
    tiled = None
    for w in WORKER_CURVE:
        with TiledEngine(workers=w) as eng:
            if w == WORKER_CURVE[-1]:
                tiled = benchmark.pedantic(
                    lambda: eng.theta(pts, THETA, d, delta=DELTA),
                    rounds=1, iterations=1,
                )
                curve[w] = tiled.stats.wall_seconds
            else:
                curve[w] = eng.theta(pts, THETA, d, delta=DELTA).stats.wall_seconds

    print(f"\nn={n}: serial {t_serial:.2f}s ({_cores()} cores)")
    for w, secs in curve.items():
        print(f"  workers={w}: {secs:.2f}s — {t_serial / secs:.2f}x")
    assert tiled.edge_set() == serial_edges  # bit-identical before fast
    if _cores() >= 4:
        speedup = t_serial / curve[4]
        assert speedup >= SPEEDUP_FLOOR, (
            f"tiled ΘALG only {speedup:.2f}x on 4 workers at n={n} "
            f"(floor: {SPEEDUP_FLOOR}x)"
        )


@pytest.mark.parametrize("n", [300_000])
def test_tiled_theta_scale(benchmark, n):
    """The 4-worker engine an order of magnitude past the old ceiling."""
    pts, d, _ = _world(n)
    t0 = time.perf_counter()
    topo = theta_algorithm(pts, THETA, d)
    t_serial = time.perf_counter() - t0
    with TiledEngine(workers=4) as eng:
        tiled = benchmark.pedantic(
            lambda: eng.theta(pts, THETA, d, delta=DELTA), rounds=1, iterations=1
        )
    wall = tiled.stats.wall_seconds
    print(
        f"\nn={n}: serial {t_serial:.2f}s vs tiled(4w) {wall:.2f}s "
        f"({t_serial / wall:.2f}x, {tiled.stats.n_tiles} tiles, "
        f"{tiled.stats.halo_items} halo items)"
    )
    assert tiled.edge_set() == topo.edge_set()
    if _cores() >= 4:
        assert t_serial / wall >= SPEEDUP_FLOOR


@pytest.mark.parametrize("n", [30_000])
def test_tiled_conflict_rows(benchmark, n):
    """§2.4 conflict CSR over tiles, row-for-row equal to the kernel."""
    pts, d, _ = _world(n)
    topo = theta_algorithm(pts, THETA, d)
    t0 = time.perf_counter()
    serial = interference_sets(topo.graph, DELTA)
    t_serial = time.perf_counter() - t0
    with TiledEngine(workers=4) as eng:
        sets, stats = benchmark.pedantic(
            lambda: eng.interference_sets(topo.graph, DELTA), rounds=1, iterations=1
        )
    print(
        f"\nn={n}, m={topo.graph.n_edges}: serial {t_serial:.2f}s vs "
        f"tiled(4w) {stats.wall_seconds:.2f}s "
        f"({t_serial / stats.wall_seconds:.2f}x, {stats.n_tiles} tiles)"
    )
    assert np.array_equal(sets.indptr, serial.indptr)
    assert np.array_equal(sets.indices, serial.indices)
    if _cores() >= 4:
        # halo duplication caps conflict scaling below ΘALG's; gate at 1.5x
        assert t_serial / stats.wall_seconds >= 1.5


@pytest.mark.parametrize("n", [30_000])
def test_pool_churn_process_vs_serial(benchmark, n):
    """Sparse-churn batches through the worker pool vs the serial loop.

    Batches stay in the *group-parallel* regime: dense batches
    percolate into one merged repair region (nothing to distribute --
    the serial batch applier already owns that case), while small
    steps split into many independent groups the pool can fan out.
    Reported as a speedup line; correctness asserts everywhere, the
    timing is tracked by the 3x baseline gate rather than a hard
    serial-vs-pool floor (the crossover point is machine-dependent).
    """
    pts, d, side = _world(n)
    per_step = 20
    events = list(
        random_event_trace(
            pts, per_step * 15, side=side, move_sigma=d / 2.0, rng=5
        ).events()
    )

    inc_s = IncrementalTheta(pts, THETA, d)
    di_s = DynamicInterference(inc_s, DELTA)
    t0 = time.perf_counter()
    for ev in events:
        di_s.update_event(inc_s.apply(ev))
    t_serial = time.perf_counter() - t0

    inc_p = IncrementalTheta(pts, THETA, d)
    di_p = DynamicInterference(inc_p, DELTA)
    cap = max([inc_p.size] + [int(ev.node) + 1 for ev in events]) + 16

    halo = groups = 0

    def run_pooled():
        nonlocal halo, groups
        with TileWorkerPool(inc_p, di_p, workers=4, capacity=cap) as pool:
            for lo in range(0, len(events), per_step):
                stats = pool.apply_batch(events[lo : lo + per_step])
                halo += stats.halo_nodes
                groups += stats.groups

    t0 = time.perf_counter()
    benchmark.pedantic(run_pooled, rounds=1, iterations=1)
    t_pool = time.perf_counter() - t0

    print(
        f"\nn={n}: {len(events)} events in {per_step}-event steps "
        f"({groups} groups) -- serial {t_serial:.2f}s vs pool(4w) "
        f"{t_pool:.2f}s ({t_serial / t_pool:.2f}x, {halo} halo entries)"
    )
    # Correctness first: same topology, same conflict rows.
    assert inc_s.edge_set() == inc_p.edge_set()
    assert di_s.interference_sets() == di_p.interference_sets()
    # The sparse steps really did decompose (else the pool measured
    # nothing but its own overhead).
    assert groups >= 20
