"""Performance bench: sharded-plane engine vs the serial kernels.

The payoff of :mod:`repro.parallel`: the construction kernels and the
churn applier stop being single-core.  Timed series (all land in
``BENCH_baseline.json`` under the usual 3× gate):

* ΘALG construction at n = 100 000 across 1/2/4 pinned workers — the
  cores-vs-speedup curve of ``docs/performance.md`` — plus a
  n = 300 000 point proving the story holds an order of magnitude past
  the old n = 30 000 ceiling;
* the **memory-budgeted n = 10⁶ profile**: float32 position arena,
  int32 admitted-pair slab, peak parent RSS sampled live via
  :class:`~repro.obs.telemetry.ResourceSampler` and gated against the
  committed budget (CI runs the n = 2×10⁵ quick variant; set
  ``REPRO_BENCH_FULL=1`` for the full million-node point);
* §2.4 conflict-row construction at n = 30 000 on 4 workers;
* a 5 %-churn trace applied through :class:`TileWorkerPool` vs the
  serial per-event loop;
* the **halo-refresh gate**: a 10 %/step churn on a clustered world,
  halo-subscription filtering on vs. off — same state, CI-gated
  reduction in replayed diff entries (the suppressed ratio lands in
  ``extra_info`` and the bench-delta table);
* pool-side MAC steps vs the serial ``DynamicMAC.deterministic_step``.

Speedup gates only assert when the runner actually has ≥ 4 cores
(``os.sched_getaffinity``); correctness (edge-for-edge, row-for-row
equality against the serial kernels) asserts everywhere, so a 1-core
run still validates the engine while CI's multi-core lane enforces the
≥ 2× acceptance floor.
"""

from __future__ import annotations

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.core.theta import theta_algorithm
from repro.dynamic.events import NodeMove, random_event_trace
from repro.dynamic.incremental import IncrementalTheta
from repro.dynamic.interference import DynamicInterference, DynamicMAC
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.interference.conflict import interference_sets
from repro.obs.telemetry import ResourceSampler
from repro.parallel import TiledEngine, TileWorkerPool

THETA = math.pi / 9
DELTA = 0.5
#: pinned worker counts for the cores-vs-speedup curve.
WORKER_CURVE = (1, 2, 4)
SPEEDUP_FLOOR = 2.0


def _cores() -> int:
    return len(os.sched_getaffinity(0))


def _world(n: int, *, rng: int = 2):
    side = math.sqrt(n)
    pts = uniform_points(n, rng=rng) * side
    d = max_range_for_connectivity(pts, method="sparse")
    return pts, d, side


@pytest.mark.parametrize("n", [100_000])
def test_tiled_theta_speedup_curve(benchmark, n):
    """ΘALG over tiles across 1/2/4 workers vs one serial run."""
    pts, d, _ = _world(n)

    t0 = time.perf_counter()
    topo = theta_algorithm(pts, THETA, d)
    t_serial = time.perf_counter() - t0
    serial_edges = topo.edge_set()

    curve = {}
    tiled = None
    for w in WORKER_CURVE:
        with TiledEngine(workers=w) as eng:
            if w == WORKER_CURVE[-1]:
                tiled = benchmark.pedantic(
                    lambda: eng.theta(pts, THETA, d, delta=DELTA),
                    rounds=1, iterations=1,
                )
                curve[w] = tiled.stats.wall_seconds
            else:
                curve[w] = eng.theta(pts, THETA, d, delta=DELTA).stats.wall_seconds

    print(f"\nn={n}: serial {t_serial:.2f}s ({_cores()} cores)")
    for w, secs in curve.items():
        print(f"  workers={w}: {secs:.2f}s — {t_serial / secs:.2f}x")
    assert tiled.edge_set() == serial_edges  # bit-identical before fast
    if _cores() >= 4:
        speedup = t_serial / curve[4]
        assert speedup >= SPEEDUP_FLOOR, (
            f"tiled ΘALG only {speedup:.2f}x on 4 workers at n={n} "
            f"(floor: {SPEEDUP_FLOOR}x)"
        )


@pytest.mark.parametrize("n", [300_000])
def test_tiled_theta_scale(benchmark, n):
    """The 4-worker engine an order of magnitude past the old ceiling."""
    pts, d, _ = _world(n)
    t0 = time.perf_counter()
    topo = theta_algorithm(pts, THETA, d)
    t_serial = time.perf_counter() - t0
    with TiledEngine(workers=4) as eng:
        tiled = benchmark.pedantic(
            lambda: eng.theta(pts, THETA, d, delta=DELTA), rounds=1, iterations=1
        )
    wall = tiled.stats.wall_seconds
    print(
        f"\nn={n}: serial {t_serial:.2f}s vs tiled(4w) {wall:.2f}s "
        f"({t_serial / wall:.2f}x, {tiled.stats.n_tiles} tiles, "
        f"{tiled.stats.halo_items} halo items)"
    )
    assert tiled.edge_set() == topo.edge_set()
    if _cores() >= 4:
        assert t_serial / wall >= SPEEDUP_FLOOR


#: Peak parent-RSS budgets for the n=10⁶ profile and its CI quick
#: variant.  Measured peaks on the reference runner: ~250 MB at
#: n=2×10⁵ and ~985 MB at n=10⁶; the budgets leave ~2.5× headroom for
#: allocator and runner variance.  The profile runs float32 positions
#: + int32 slab; the budget covers the parent only (workers are COW
#: forks whose private growth is bounded by their tile subsets).
RSS_BUDGET_BYTES = {200_000: 700_000_000, 1_000_000: 2_500_000_000}


def _peak_rss_during(fn, interval: float = 0.05):
    """Run ``fn`` while sampling this process's RSS; return (result, peak)."""
    sampler = ResourceSampler()
    peak = [sampler.sample()["rss_bytes"]]
    stop = threading.Event()

    def poll():
        while not stop.is_set():
            peak.append(sampler.sample()["rss_bytes"])
            stop.wait(interval)

    t = threading.Thread(target=poll, daemon=True)
    t.start()
    try:
        result = fn()
    finally:
        stop.set()
        t.join()
    peak.append(sampler.sample()["rss_bytes"])
    return result, max(peak)


@pytest.mark.parametrize(
    "n",
    [
        200_000,
        pytest.param(
            1_000_000,
            marks=pytest.mark.skipif(
                not os.environ.get("REPRO_BENCH_FULL"),
                reason="full n=10^6 profile: set REPRO_BENCH_FULL=1",
            ),
        ),
    ],
)
def test_tiled_theta_million_profile(benchmark, n):
    """Memory-budgeted construction profile on the float32/int32 arena.

    The radius is the analytic connectivity scale ``1.15·√(ln n / π)``
    of a unit-intensity Poisson field (an exact sparse search at n=10⁶
    would dominate the bench without exercising the engine).  The quick
    variant keeps the bit-identity assertion against a serial run on
    the same float32-quantized coordinates; the full variant gates peak
    RSS and internal invariants only.
    """
    side = math.sqrt(n)
    pts = uniform_points(n, rng=6) * side
    d = 1.15 * math.sqrt(math.log(n) / math.pi)

    def build():
        with TiledEngine(workers=4) as eng:
            return eng.theta(pts, THETA, d, delta=DELTA, share_dtype=np.float32)

    tiled, peak_rss = _peak_rss_during(
        lambda: benchmark.pedantic(build, rounds=1, iterations=1)
    )
    stats = tiled.stats
    budget = RSS_BUDGET_BYTES[n]
    benchmark.extra_info["peak_rss_mb"] = round(peak_rss / 1e6, 1)
    benchmark.extra_info["rss_budget_mb"] = round(budget / 1e6, 1)
    benchmark.extra_info["tile_shape"] = f"{stats.shape[0]}x{stats.shape[1]}"
    benchmark.extra_info["corner_halo_items"] = stats.corner_halo_items
    print(
        f"\nn={n}: tiled(4w) {stats.wall_seconds:.2f}s, grid "
        f"{stats.shape[0]}x{stats.shape[1]}, {stats.corner_halo_items} corner-halo "
        f"items, peak rss {peak_rss / 1e6:.0f}MB (budget {budget / 1e6:.0f}MB)"
    )
    assert sum(stats.owned) == n  # every point owned exactly once
    assert stats.n_tiles == stats.shape[0] * stats.shape[1]
    assert len(tiled.graph.edges) > 0
    if n <= 200_000:
        quantized = pts.astype(np.float32).astype(np.float64)
        topo = theta_algorithm(quantized, THETA, d)
        assert tiled.edge_set() == topo.edge_set()
    assert peak_rss <= budget, (
        f"peak parent RSS {peak_rss / 1e6:.0f}MB exceeds the committed "
        f"{budget / 1e6:.0f}MB budget for n={n}"
    )


@pytest.mark.parametrize("n", [30_000])
def test_tiled_conflict_rows(benchmark, n):
    """§2.4 conflict CSR over tiles, row-for-row equal to the kernel."""
    pts, d, _ = _world(n)
    topo = theta_algorithm(pts, THETA, d)
    t0 = time.perf_counter()
    serial = interference_sets(topo.graph, DELTA)
    t_serial = time.perf_counter() - t0
    with TiledEngine(workers=4) as eng:
        sets, stats = benchmark.pedantic(
            lambda: eng.interference_sets(topo.graph, DELTA), rounds=1, iterations=1
        )
    print(
        f"\nn={n}, m={topo.graph.n_edges}: serial {t_serial:.2f}s vs "
        f"tiled(4w) {stats.wall_seconds:.2f}s "
        f"({t_serial / stats.wall_seconds:.2f}x, {stats.n_tiles} tiles)"
    )
    assert np.array_equal(sets.indptr, serial.indptr)
    assert np.array_equal(sets.indices, serial.indices)
    if _cores() >= 4:
        # halo duplication caps conflict scaling below ΘALG's; gate at 1.5x
        assert t_serial / stats.wall_seconds >= 1.5


@pytest.mark.parametrize("n", [30_000])
def test_pool_churn_process_vs_serial(benchmark, n):
    """Sparse-churn batches through the worker pool vs the serial loop.

    Batches stay in the *group-parallel* regime: dense batches
    percolate into one merged repair region (nothing to distribute --
    the serial batch applier already owns that case), while small
    steps split into many independent groups the pool can fan out.
    Reported as a speedup line; correctness asserts everywhere, the
    timing is tracked by the 3x baseline gate rather than a hard
    serial-vs-pool floor (the crossover point is machine-dependent).
    """
    pts, d, side = _world(n)
    per_step = 20
    events = list(
        random_event_trace(
            pts, per_step * 15, side=side, move_sigma=d / 2.0, rng=5
        ).events()
    )

    inc_s = IncrementalTheta(pts, THETA, d)
    di_s = DynamicInterference(inc_s, DELTA)
    t0 = time.perf_counter()
    for ev in events:
        di_s.update_event(inc_s.apply(ev))
    t_serial = time.perf_counter() - t0

    inc_p = IncrementalTheta(pts, THETA, d)
    di_p = DynamicInterference(inc_p, DELTA)
    cap = max([inc_p.size] + [int(ev.node) + 1 for ev in events]) + 16

    halo = groups = 0

    def run_pooled():
        nonlocal halo, groups
        with TileWorkerPool(inc_p, di_p, workers=4, capacity=cap) as pool:
            for lo in range(0, len(events), per_step):
                stats = pool.apply_batch(events[lo : lo + per_step])
                halo += stats.halo_nodes
                groups += stats.groups

    t0 = time.perf_counter()
    benchmark.pedantic(run_pooled, rounds=1, iterations=1)
    t_pool = time.perf_counter() - t0

    print(
        f"\nn={n}: {len(events)} events in {per_step}-event steps "
        f"({groups} groups) -- serial {t_serial:.2f}s vs pool(4w) "
        f"{t_pool:.2f}s ({t_serial / t_pool:.2f}x, {halo} halo entries)"
    )
    # Correctness first: same topology, same conflict rows.
    assert inc_s.edge_set() == inc_p.edge_set()
    assert di_s.interference_sets() == di_p.interference_sets()
    # The sparse steps really did decompose (else the pool measured
    # nothing but its own overhead).
    assert groups >= 20


def _clustered_world(*, clusters=8, per_cluster=750, spacing=400.0, d=2.0, rng=3):
    """Far-apart dense clusters on a 4×2 lattice — the halo-filter's case.

    Cluster spacing ≫ the (9+3Δ)D subscription radius, so churn inside
    one cluster is invisible to workers owning only distant tiles.
    """
    g = np.random.default_rng(rng)
    centers = np.array(
        [[x * spacing + spacing / 2, y * spacing + spacing / 2]
         for x in range(4) for y in range(2)][:clusters]
    )
    pts = np.vstack(
        [c + g.normal(scale=3 * d, size=(per_cluster, 2)) for c in centers]
    )
    return pts, centers, d, g


@pytest.mark.parametrize("n", [6_000])
def test_pool_churn_halo_filter_gate(benchmark, n):
    """Halo-refresh gate: subscription filtering vs full diff broadcast.

    10 %/step churn on the clustered world through two twin pools —
    identical per-batch state, but the filtered pool must ship strictly
    fewer foreign diffs (the acceptance reduction gate).  The suppressed
    ratio is exported via ``extra_info`` into the bench-delta table.
    """
    pts, centers, d, g = _clustered_world(per_cluster=n // 8)
    steps, per_step = 6, n // 10

    def trace_step():
        ids = g.choice(len(pts), size=per_step, replace=False)
        batch = []
        for i in ids:
            c = centers[int(i) // (n // 8)]
            p = c + g.normal(scale=3 * d, size=2)
            batch.append(NodeMove(node=int(i), x=float(p[0]), y=float(p[1])))
        return batch
    batches = [trace_step() for _ in range(steps)]

    inc_f = IncrementalTheta(pts, THETA, d)
    di_f = DynamicInterference(inc_f, DELTA)
    inc_b = IncrementalTheta(pts, THETA, d)
    di_b = DynamicInterference(inc_b, DELTA)
    cap = len(pts) + 16

    with TileWorkerPool(
        inc_b, di_b, workers=4, capacity=cap, tiles=(4, 2), halo_filter=False
    ) as bcast:
        for batch in batches:
            bcast.apply_batch(batch)
        replay_full = bcast.diffs_replayed_total

    def run_filtered():
        with TileWorkerPool(
            inc_f, di_f, workers=4, capacity=cap, tiles=(4, 2), halo_filter=True
        ) as pool:
            for batch in batches:
                pool.apply_batch(batch)
            return pool.diffs_replayed_total, pool.diffs_suppressed_total

    replay_filt, suppressed = benchmark.pedantic(run_filtered, rounds=1, iterations=1)

    ratio = suppressed / max(replay_filt + suppressed, 1)
    benchmark.extra_info["diffs_suppressed_ratio"] = round(ratio, 3)
    benchmark.extra_info["diffs_replayed_filtered"] = replay_filt
    benchmark.extra_info["diffs_replayed_broadcast"] = replay_full
    print(
        f"\nn={n}: {steps}x{per_step} churn — broadcast replayed {replay_full} "
        f"diffs, filtered {replay_filt} (suppressed {suppressed}, "
        f"ratio {ratio:.2f})"
    )
    # Same state with and without filtering — then, and only then, the
    # traffic reduction means anything.
    assert inc_f.edge_set() == inc_b.edge_set()
    assert di_f.interference_sets() == di_b.interference_sets()
    assert not inc_f.check_full_equivalence()
    # The acceptance gate: filtering must cut replayed diff deliveries
    # hard on a clustered world (broadcast ships every diff 3x here).
    assert replay_full > 0
    assert replay_filt <= replay_full // 2, (
        f"halo filtering only cut replay {replay_full} -> {replay_filt}; "
        "expected at least a 2x reduction on far-apart clusters"
    )


@pytest.mark.parametrize("n", [20_000])
def test_pool_mac_step(benchmark, n):
    """Pool-side MAC rounds vs the serial ``deterministic_step``.

    Times 5 activate+resolve rounds through the worker pool; asserts
    the merged result is bit-identical to the serial MAC on the same
    state (same hash-derived uniforms, same guard-zone resolution).
    """
    pts, d, _ = _world(n)
    inc = IncrementalTheta(pts, THETA, d)
    di = DynamicInterference(inc, DELTA)
    inc_s = IncrementalTheta(pts, THETA, d)
    di_s = DynamicInterference(inc_s, DELTA)
    mac_s = DynamicMAC(di_s, bound_mode="own")

    t0 = time.perf_counter()
    refs = [mac_s.deterministic_step(seed=77, step=k) for k in range(5)]
    t_serial = time.perf_counter() - t0

    with TileWorkerPool(inc, di, workers=4, capacity=inc.size + 16) as pool:
        steps = benchmark.pedantic(
            lambda: [pool.mac_step(seed=77, step=k) for k in range(5)],
            rounds=1, iterations=1,
        )
    for got, ref in zip(steps, refs):
        assert np.array_equal(got.edges, ref.edges)
        assert np.array_equal(got.ok, ref.ok)
        assert np.array_equal(got.costs, ref.costs)
    total = sum(s.activated for s in steps)
    print(
        f"\nn={n}: 5 MAC rounds, {total} activations — serial "
        f"{t_serial:.2f}s vs pool(4w) benchmarked"
    )
