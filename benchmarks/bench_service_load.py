#!/usr/bin/env python
"""Gate: session-service load — throughput, p99 latency, exact streams.

Starts a :class:`repro.service.server.ServiceServer` on a loopback
port and drives it with an asyncio client swarm: ``--sessions``
concurrent sessions (default 8), each with ``--subscribers`` SSE
stream consumers attached (default 2), each stepped through
``--rounds`` keep-alive ``POST .../step?steps=k`` requests while churn
events are injected mid-run.  Three gates:

1. every subscriber's stream reconciles **exactly** — hello baseline
   plus the sum of received step deltas equals the session's final
   ``RoutingStats`` (and the gauge rows arrive in step order);
2. p99 step-request latency stays under ``--p99-budget`` seconds;
3. sustained step throughput stays above ``--min-steps-per-sec``.

Exit status 1 on any gate failure, so CI can run this file directly::

    python benchmarks/bench_service_load.py --sessions 8 --subscribers 2

``--benchmark-json PATH`` writes the latency means in the
``BENCH_baseline.json`` dict format for ``check_regression.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.analysis.tables import render_table
from repro.obs.metrics import StepSeries
from repro.service.server import ServiceServer

RECONCILE_FIELDS = (
    StepSeries.COUNTER_FIELDS + StepSeries.ENERGY_FIELDS + StepSeries.CHURN_FIELDS
)


class Client:
    """One keep-alive HTTP/1.1 connection to the service."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int) -> "Client":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(self, method: str, path: str, body=None):
        payload = json.dumps(body).encode() if body is not None else b""
        self.writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nhost: bench\r\n"
                f"content-length: {len(payload)}\r\n\r\n"
            ).encode()
            + payload
        )
        await self.writer.drain()
        head = (await self.reader.readuntil(b"\r\n\r\n")).decode("latin-1")
        status = int(head.split(" ", 2)[1])
        length = 0
        for line in head.split("\r\n")[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        raw = await self.reader.readexactly(length) if length else b""
        return status, json.loads(raw) if raw else None

    def close(self) -> None:
        self.writer.close()


async def subscribe(port: int, sid: str):
    """Attach one SSE consumer; returns a task resolving to its events."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET /v1/sessions/{sid}/series HTTP/1.1\r\nhost: b\r\n\r\n".encode())
    await writer.drain()
    await reader.readuntil(b"\r\n\r\n")

    async def consume():
        events, buf = [], b""
        while True:
            while b"\n\n" in buf:
                block, buf = buf.split(b"\n\n", 1)
                text = block.decode().strip()
                if not text or text.startswith(":"):
                    continue
                fields = dict(ln.split(": ", 1) for ln in text.split("\n") if ": " in ln)
                events.append((fields["event"], json.loads(fields["data"])))
                if events[-1][0] in ("end", "evicted"):
                    writer.close()
                    return events
            chunk = await reader.read(65536)
            if not chunk:
                return events
            buf += chunk

    return asyncio.create_task(consume())


def check_stream(events, final_stats: dict) -> "list[str]":
    """Reconcile one subscriber's stream; returns mismatch descriptions."""
    problems = []
    if not events or events[0][0] != "hello":
        return ["stream did not start with a hello frame"]
    if events[-1][0] != "end":
        return [f"stream ended with {events[-1][0]!r}, not 'end'"]
    baseline = events[0][1]["baseline"]
    deltas = [d for e, d in events if e == "step"]
    steps = [d["step"] for d in deltas]
    if steps != sorted(steps) or len(set(steps)) != len(steps):
        problems.append("step rows out of order or duplicated")
    for name in RECONCILE_FIELDS:
        total = baseline[name] + sum(d[name] for d in deltas)
        if name in final_stats and total != final_stats[name]:
            problems.append(
                f"{name}: baseline+deltas = {total}, final stats say {final_stats[name]}"
            )
    return problems


async def drive_session(
    port: int, *, n: int, rounds: int, steps_per_round: int, subscribers: int, seed: int,
    latencies: "list[float]",
):
    """One session's full lifecycle; returns (streams_ok, problems)."""
    client = await Client.connect(port)
    try:
        status, body = await client.request(
            "POST", "/v1/sessions",
            {"n": n, "seed": seed, "traffic_rate": 2.0, "name": f"load-{seed}"},
        )
        assert status == 201, body
        sid = body["session"]["id"]
        subs = [await subscribe(port, sid) for _ in range(subscribers)]
        for r in range(rounds):
            t0 = time.perf_counter()
            status, body = await client.request(
                "POST", f"/v1/sessions/{sid}/step?steps={steps_per_round}"
            )
            latencies.append(time.perf_counter() - t0)
            assert status == 200, body
            if r == rounds // 2:
                # Mid-run churn: fail one node, inject a traffic burst.
                status, body = await client.request(
                    "POST", f"/v1/sessions/{sid}/events",
                    {"events": [
                        {"kind": "fail", "node": (seed % (n - 4)) + 2},
                        {"kind": "inject", "node": 1, "dest": 0, "count": 5},
                    ]},
                )
                assert status == 200, body
        status, body = await client.request("DELETE", f"/v1/sessions/{sid}")
        assert status == 200, body
        final = body["final_stats"]
        problems = []
        for task in subs:
            problems.extend(check_stream(await task, final))
        return problems
    finally:
        client.close()


async def run_load(args) -> dict:
    server = ServiceServer(port=0, max_sessions=args.sessions, session_ttl=600.0)
    await server.start()
    latencies: "list[float]" = []
    try:
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *(
                drive_session(
                    server.port,
                    n=args.n,
                    rounds=args.rounds,
                    steps_per_round=args.steps_per_round,
                    subscribers=args.subscribers,
                    seed=1000 + i,
                    latencies=latencies,
                )
                for i in range(args.sessions)
            )
        )
        wall = time.perf_counter() - t0
    finally:
        await server.shutdown(reason="bench-complete")
    problems = [p for session_problems in results for p in session_problems]
    latencies.sort()
    total_steps = args.sessions * args.rounds * args.steps_per_round
    return {
        "wall": wall,
        "total_steps": total_steps,
        "steps_per_sec": total_steps / wall,
        "requests": len(latencies),
        "mean_latency": sum(latencies) / len(latencies),
        "p50_latency": latencies[len(latencies) // 2],
        "p99_latency": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
        "streams": args.sessions * args.subscribers,
        "problems": problems,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=8, metavar="S")
    parser.add_argument("--subscribers", type=int, default=2, metavar="K",
                        help="SSE consumers per session (default 2)")
    parser.add_argument("--n", type=int, default=64, metavar="N",
                        help="nodes per session (default 64)")
    parser.add_argument("--rounds", type=int, default=12, metavar="R",
                        help="step requests per session (default 12)")
    parser.add_argument("--steps-per-round", type=int, default=8, metavar="K")
    parser.add_argument("--p99-budget", type=float, default=0.75, metavar="SEC",
                        help="max allowed p99 step-request latency (default 0.75s)")
    parser.add_argument("--min-steps-per-sec", type=float, default=50.0, metavar="RATE",
                        help="min sustained aggregate step throughput (default 50/s)")
    parser.add_argument("--benchmark-json", default=None, metavar="PATH")
    args = parser.parse_args(argv)

    out = asyncio.run(run_load(args))

    p99_ok = out["p99_latency"] <= args.p99_budget
    rate_ok = out["steps_per_sec"] >= args.min_steps_per_sec
    streams_ok = not out["problems"]
    row = {
        "sessions": args.sessions,
        "streams": out["streams"],
        "total_steps": out["total_steps"],
        "steps_per_sec": round(out["steps_per_sec"], 1),
        "mean_ms": round(out["mean_latency"] * 1e3, 2),
        "p50_ms": round(out["p50_latency"] * 1e3, 2),
        "p99_ms": round(out["p99_latency"] * 1e3, 2),
        "reconcile": "exact" if streams_ok else "MISMATCH",
        "gate": "pass" if (p99_ok and rate_ok and streams_ok) else "FAIL",
    }
    print(
        render_table(
            [row],
            title=(
                f"service load — {args.sessions} sessions × {args.subscribers} "
                f"subscribers, {args.rounds}×{args.steps_per_round} steps each, "
                f"p99 budget {args.p99_budget * 1e3:.0f} ms, "
                f"{out['wall']:.2f}s wall"
            ),
        )
    )
    for p in out["problems"]:
        print(f"STREAM MISMATCH: {p}", file=sys.stderr)
    if not p99_ok:
        print(
            f"FAIL: p99 step latency {out['p99_latency'] * 1e3:.1f} ms over "
            f"budget {args.p99_budget * 1e3:.0f} ms",
            file=sys.stderr,
        )
    if not rate_ok:
        print(
            f"FAIL: {out['steps_per_sec']:.1f} steps/s under floor "
            f"{args.min_steps_per_sec:.0f}/s",
            file=sys.stderr,
        )

    if args.benchmark_json:
        doc = {
            "comment": "latency means from benchmarks/bench_service_load.py",
            "benchmarks": {
                "service_load[step_request_mean]": {
                    "mean_seconds": round(out["mean_latency"], 6)
                },
                "service_load[step_request_p99]": {
                    "mean_seconds": round(out["p99_latency"], 6)
                },
            },
        }
        Path(args.benchmark_json).write_text(json.dumps(doc, indent=2) + "\n")

    if not (p99_ok and rate_ok and streams_ok):
        return 1
    print("\nservice load gates hold (streams exact, latency within budget)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
