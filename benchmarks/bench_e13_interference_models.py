"""E13 — ablation: protocol (guard-zone) vs physical (SINR) interference.

§2.4 adopts the pairwise protocol model as "a simplified version of the
physical model".  This ablation quantifies the simplification on ΘALG
topologies: the two models should mostly agree, and where they disagree
the protocol model should err on the conservative side (it kills
transmissions SINR would allow) — increasingly so for larger Δ.
"""

from __future__ import annotations

from repro.analysis.ablation_experiments import e13_interference_models
from repro.analysis.tables import render_table


def test_e13_interference_models(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e13_interference_models(n=128, sets_per_config=150, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e13_interference_models",
        render_table(rows, title="E13: protocol vs SINR interference — agreement and bias"),
    )
    for r in rows:
        assert r["agreement"] >= 0.5, r
    # For a matched decode threshold (β ≤ 2) a generous guard zone is
    # almost never optimistic: it rarely passes a transmission SINR
    # would kill.  (At β = 4 the pairwise model misses *aggregate*
    # interference — visible in the table, and exactly the gap the
    # paper's "simplified version of the physical model" remark names.)
    matched = [r for r in rows if r["delta"] >= 0.5 and r["beta"] <= 2.0]
    assert all(r["protocol_optimistic"] <= 0.1 for r in matched), matched
    # Agreement improves with the guard zone at fixed β = 2.
    beta2 = sorted((r for r in rows if r["beta"] == 2.0), key=lambda r: r["delta"])
    agreements = [r["agreement"] for r in beta2]
    assert agreements == sorted(agreements), beta2