#!/usr/bin/env python
"""Gate: disabled-mode observability overhead < 5% on the e4/e6 quick runs.

The engine, balancing router, MAC, and protocol runtime carry permanent
``repro.obs`` instrumentation that collapses to a no-op singleton while
tracing is off.  This bench proves the collapse is cheap three ways:

1. **A/B wall clock** (the gate): each quick workload runs with the
   instrumentation in its normal disabled state, and again with the
   ``trace.span`` / ``trace.active`` / ``metrics.active`` entry points
   stubbed out to constant-return functions — the closest executable
   stand-in for an uninstrumented build.  Modes are interleaved and the
   min over N repeats compared, so scheduler noise largely cancels.
2. **Analytic estimate**: per-call disabled span cost (microbenchmark)
   × the span count of an enabled run, as a fraction of the runtime.
3. **Enabled-mode ratio**, reported for context (not gated): what a
   ``--trace`` run actually costs.

Exit status 1 if any workload's A/B ratio exceeds the threshold
(default 5%), so CI can run this file directly::

    python benchmarks/bench_obs_overhead.py --repeats 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.tables import render_table
from repro.harness.cache import clear_cache
from repro.harness.registry import REGISTRY, build_rows
from repro.obs import metrics, trace

WORKLOADS = ("e4", "e6")


def _run(cid: str) -> None:
    # Cold substrate cache every run: otherwise e4 degenerates to pure
    # cache hits and the timing measures nothing.
    clear_cache()
    build_rows(REGISTRY[cid], "quick")


def _timed(cid: str) -> float:
    t0 = time.perf_counter()
    _run(cid)
    return time.perf_counter() - t0


class _Uninstrumented:
    """Stub the obs entry points to constant-return functions."""

    def __enter__(self):
        self._saved = (trace.span, trace.active, metrics.active)
        noop = trace.NOOP_SPAN
        trace.span = lambda name, **args: noop
        trace.active = lambda: None
        metrics.active = lambda: None
        return self

    def __exit__(self, *exc):
        trace.span, trace.active, metrics.active = self._saved
        return False


def _per_span_call_ns(iters: int = 200_000) -> float:
    """Cost of one disabled ``with trace.span(...)`` round trip."""
    assert trace.active() is None
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        with trace.span("bench.noop", step=0):
            pass
    return (time.perf_counter_ns() - t0) / iters


def _span_calls_per_run(cid: str) -> int:
    """Span count of one traced run (ring events + drops)."""
    tracer = trace.enable(fresh=True)
    metrics.enable(fresh=True)
    try:
        _run(cid)
        return tracer.total_appended
    finally:
        trace.disable()
        metrics.disable()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7, metavar="N")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max allowed disabled/uninstrumented slowdown (default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    trace.disable()
    metrics.disable()
    per_call = _per_span_call_ns()

    rows, failed = [], False
    for cid in WORKLOADS:
        _run(cid)  # warm the substrate cache once, outside timing
        disabled, stubbed, enabled = [], [], []
        for _ in range(args.repeats):
            disabled.append(_timed(cid))
            with _Uninstrumented():
                stubbed.append(_timed(cid))
            trace.enable(fresh=True)
            metrics.enable(fresh=True)
            try:
                enabled.append(_timed(cid))
            finally:
                trace.disable()
                metrics.disable()
        spans = _span_calls_per_run(cid)
        best_dis, best_stub = min(disabled), min(stubbed)
        ratio = best_dis / best_stub
        estimate = spans * per_call / 1e9 / best_dis
        ok = ratio <= 1.0 + args.threshold
        failed |= not ok
        rows.append(
            {
                "workload": f"{cid} quick",
                "uninstrumented_ms": round(best_stub * 1e3, 2),
                "disabled_ms": round(best_dis * 1e3, 2),
                "enabled_ms": round(min(enabled) * 1e3, 2),
                "overhead": f"{(ratio - 1) * 100:+.2f}%",
                "span_calls": spans,
                "analytic_est": f"{estimate * 100:.3f}%",
                "gate": "pass" if ok else "FAIL",
            }
        )

    print(
        render_table(
            rows,
            title=(
                f"obs disabled-mode overhead — min of {args.repeats} repeats, "
                f"gate at +{args.threshold * 100:.0f}%, "
                f"disabled span call ≈ {per_call:.0f} ns"
            ),
        )
    )
    if failed:
        print(
            f"\nFAIL: disabled-mode tracing costs more than {args.threshold:.0%} "
            "over the uninstrumented baseline",
            file=sys.stderr,
        )
        return 1
    print("\ndisabled-mode overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
