#!/usr/bin/env python
"""Gate: disabled-mode observability overhead < 5% per workload.

The engine, balancing router, MAC, protocol runtime, and the
process-parallel pool carry permanent ``repro.obs`` instrumentation
that collapses to a no-op singleton while tracing is off.  This bench
proves the collapse is cheap three ways:

1. **A/B wall clock** (the gate): each workload runs with the
   instrumentation in its normal disabled state, and again with the
   ``trace.span`` / ``trace.active`` / ``metrics.active`` /
   ``telemetry.resource_sample`` entry points stubbed out to
   constant-return functions — the closest executable stand-in for an
   uninstrumented build.  Modes are interleaved and the min over N
   repeats compared, so scheduler noise largely cancels.
2. **Analytic estimate**: per-call disabled span cost (microbenchmark)
   × the span count of an enabled run, as a fraction of the runtime.
3. **Enabled-mode ratio**, reported for context (not gated): what a
   ``--trace`` run actually costs.

Workloads: the e4/e6 quick claim runs (single-process hot loops) and a
pooled churn batch (``TileWorkerPool``, 2 workers — the stub context
wraps pool construction, so the workers fork with the stubbed modules
and the A/B covers the cross-process telemetry path too; pool build and
teardown stay outside the timed window).

Exit status 1 if any workload's A/B ratio exceeds the threshold
(default 5%), so CI can run this file directly::

    python benchmarks/bench_obs_overhead.py --repeats 7

``--benchmark-json PATH`` additionally writes the disabled-mode means
in the ``BENCH_baseline.json`` dict format, so
``check_regression.py`` can gate them like the pytest-benchmark lanes.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from repro.analysis.tables import render_table
from repro.harness.cache import clear_cache
from repro.harness.registry import REGISTRY, build_rows
from repro.obs import metrics, telemetry, trace

WORKLOADS = ("e4", "e6")


def _run(cid: str) -> None:
    # Cold substrate cache every run: otherwise e4 degenerates to pure
    # cache hits and the timing measures nothing.
    clear_cache()
    build_rows(REGISTRY[cid], "quick")


def _timed(cid: str) -> float:
    t0 = time.perf_counter()
    _run(cid)
    return time.perf_counter() - t0


class _Uninstrumented:
    """Stub the obs entry points to constant-return functions.

    Also stubs :func:`repro.obs.telemetry.resource_sample` (the per-reply
    ``/proc`` reads pool workers ship regardless of tracing), so the
    pooled A/B measures the full telemetry-disabled surface.  Pool
    workers forked inside this context inherit the stubbed modules.
    """

    def __enter__(self):
        self._saved = (trace.span, trace.active, metrics.active, telemetry.resource_sample)
        noop = trace.NOOP_SPAN
        sample = {"pid": 0, "ts": 0.0, "rss_bytes": 0, "cpu_user_s": 0.0, "cpu_sys_s": 0.0}
        trace.span = lambda name, **args: noop
        trace.active = lambda: None
        metrics.active = lambda: None
        telemetry.resource_sample = lambda pid="self": dict(sample)
        return self

    def __exit__(self, *exc):
        trace.span, trace.active, metrics.active, telemetry.resource_sample = self._saved
        return False


def _pool_layout(n: int = 600, batch: int = 12, batches: int = 5, seed: int = 17):
    """Points + event trace for the pooled churn workload (built once)."""
    import numpy as np

    from repro import max_range_for_connectivity, random_event_trace, uniform_points

    pts = uniform_points(n, rng=seed)
    d0 = max_range_for_connectivity(pts, slack=1.5)
    tr = random_event_trace(
        pts, batch * batches, move_sigma=d0 / 2.0, rng=np.random.default_rng(seed)
    )
    return pts, d0, list(tr.events()), batch


def _timed_pool(layout) -> float:
    """One pooled churn run; pool build/teardown outside the timed window.

    The incremental state and the worker pool are rebuilt per call —
    churn mutates the state, and the workers must fork under the mode
    (stubbed / disabled / enabled) being measured.
    """
    from repro import DynamicInterference, IncrementalTheta
    from repro.parallel import TileWorkerPool

    pts, d0, events, batch = layout
    inc = IncrementalTheta(pts, math.pi / 9, d0)
    di = DynamicInterference(inc, 0.5)
    cap = max([inc.size] + [int(ev.node) + 1 for ev in events]) + 16
    pool = TileWorkerPool(inc, di, workers=2, capacity=cap)
    try:
        t0 = time.perf_counter()
        for lo in range(0, len(events), batch):
            pool.apply_batch(events[lo : lo + batch])
        return time.perf_counter() - t0
    finally:
        pool.close()


def _per_span_call_ns(iters: int = 200_000) -> float:
    """Cost of one disabled ``with trace.span(...)`` round trip."""
    assert trace.active() is None
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        with trace.span("bench.noop", step=0):
            pass
    return (time.perf_counter_ns() - t0) / iters


def _span_calls_per_run(cid: str) -> int:
    """Span count of one traced run (ring events + drops)."""
    tracer = trace.enable(fresh=True)
    metrics.enable(fresh=True)
    try:
        _run(cid)
        return tracer.total_appended
    finally:
        trace.disable()
        metrics.disable()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7, metavar="N")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max allowed disabled/uninstrumented slowdown (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--benchmark-json",
        default=None,
        metavar="PATH",
        help="write the disabled-mode means as a BENCH_baseline.json-format "
        "document for check_regression.py",
    )
    args = parser.parse_args(argv)

    trace.disable()
    metrics.disable()
    per_call = _per_span_call_ns()

    rows, failed = [], False
    bench_means: "dict[str, float]" = {}
    for cid in WORKLOADS:
        _run(cid)  # warm the substrate cache once, outside timing
        disabled, stubbed, enabled = [], [], []
        for _ in range(args.repeats):
            disabled.append(_timed(cid))
            with _Uninstrumented():
                stubbed.append(_timed(cid))
            trace.enable(fresh=True)
            metrics.enable(fresh=True)
            try:
                enabled.append(_timed(cid))
            finally:
                trace.disable()
                metrics.disable()
        spans = _span_calls_per_run(cid)
        best_dis, best_stub = min(disabled), min(stubbed)
        ratio = best_dis / best_stub
        estimate = spans * per_call / 1e9 / best_dis
        ok = ratio <= 1.0 + args.threshold
        failed |= not ok
        bench_means[f"obs_overhead_disabled[{cid}]"] = best_dis
        rows.append(
            {
                "workload": f"{cid} quick",
                "uninstrumented_ms": round(best_stub * 1e3, 2),
                "disabled_ms": round(best_dis * 1e3, 2),
                "enabled_ms": round(min(enabled) * 1e3, 2),
                "overhead": f"{(ratio - 1) * 100:+.2f}%",
                "span_calls": spans,
                "analytic_est": f"{estimate * 100:.3f}%",
                "gate": "pass" if ok else "FAIL",
            }
        )

    # Pooled churn A/B: the cross-process path (worker spans, per-reply
    # resource samples, diff-byte accounting) must also collapse when
    # telemetry is off.  Fewer repeats — each one forks a 2-worker pool.
    layout = _pool_layout()
    pool_repeats = min(args.repeats, 3)
    _timed_pool(layout)  # warm the fork/import machinery once
    disabled, stubbed, enabled = [], [], []
    pool_spans = 0
    for _ in range(pool_repeats):
        disabled.append(_timed_pool(layout))
        with _Uninstrumented():
            stubbed.append(_timed_pool(layout))
        tracer = trace.enable(fresh=True)
        metrics.enable(fresh=True)
        try:
            enabled.append(_timed_pool(layout))
            pool_spans = tracer.total_appended
        finally:
            trace.disable()
            metrics.disable()
    best_dis, best_stub = min(disabled), min(stubbed)
    ratio = best_dis / best_stub
    ok = ratio <= 1.0 + args.threshold
    failed |= not ok
    bench_means["obs_overhead_disabled[pool-churn]"] = best_dis
    rows.append(
        {
            "workload": "pool churn (2 workers)",
            "uninstrumented_ms": round(best_stub * 1e3, 2),
            "disabled_ms": round(best_dis * 1e3, 2),
            "enabled_ms": round(min(enabled) * 1e3, 2),
            "overhead": f"{(ratio - 1) * 100:+.2f}%",
            "span_calls": pool_spans,
            "analytic_est": f"{pool_spans * per_call / 1e9 / best_dis * 100:.3f}%",
            "gate": "pass" if ok else "FAIL",
        }
    )

    if args.benchmark_json:
        doc = {
            "comment": "disabled-mode means from benchmarks/bench_obs_overhead.py",
            "benchmarks": {
                name: {"mean_seconds": round(v, 6)} for name, v in bench_means.items()
            },
        }
        Path(args.benchmark_json).write_text(json.dumps(doc, indent=2) + "\n")

    print(
        render_table(
            rows,
            title=(
                f"obs disabled-mode overhead — min of {args.repeats} repeats, "
                f"gate at +{args.threshold * 100:.0f}%, "
                f"disabled span call ≈ {per_call:.0f} ns"
            ),
        )
    )
    if failed:
        print(
            f"\nFAIL: disabled-mode tracing costs more than {args.threshold:.0%} "
            "over the uninstrumented baseline",
            file=sys.stderr,
        )
        return 1
    print("\ndisabled-mode overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
