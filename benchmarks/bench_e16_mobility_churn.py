"""E16 — routing under mobility churn (the §1 motivation, measured).

Balancing (stateless w.r.t. topology history) vs a shortest-path router
with tables frozen at t=0, as node speed grows.  The paper's adversarial
model predicts exactly this shape: balancing's guarantees are oblivious
to *why* edges changed, so it degrades gracefully, while table-driven
forwarding collapses under churn.
"""

from __future__ import annotations

from repro.analysis.mobility_experiments import e16_mobility_churn
from repro.analysis.tables import render_table


def test_e16_mobility_churn(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e16_mobility_churn(n=50, steps=400, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e16_mobility_churn",
        render_table(rows, title="E16: delivery under mobility churn — balancing vs frozen tables"),
    )
    static = rows[0]
    fastest = rows[-1]
    # Balancing keeps delivering at the highest churn…
    assert fastest["balancing_fraction"] >= 0.4, rows
    # …and beats the frozen-table router there by a clear margin.
    assert (
        fastest["balancing_delivered"] >= 1.5 * max(fastest["frozen_sp_delivered"], 1)
    ), rows
    # Sanity: in the static case the frozen tables are fine.
    assert static["frozen_sp_fraction"] >= 0.8, rows
