"""Performance bench: incremental ΘALG repair vs. from-scratch rebuild.

The payoff of the dynamic subsystem (ISSUE E23/E24, ``docs/dynamics.md``):
at production scale an event repairs a bounded disk, while a rebuild
pays for the whole network.  Three gated comparisons at n = 10 000:

* topology: mean per-event ΘALG repair ≥ 5× faster than one
  from-scratch :func:`~repro.core.theta.theta_algorithm` run;
* interference: mean per-event conflict-row repair
  (:class:`repro.dynamic.interference.DynamicInterference`) ≥ 5× faster
  than a from-scratch :func:`~repro.interference.conflict.
  interference_sets` rebuild under the same 1%-churn MAC workload;
* batching: disjoint-region batch application of a high-churn trace
  (10%/step) beats the serial per-event loop while producing the
  identical edge set and conflict CSR.

Runs in the CI bench-smoke job next to ``bench_perf_scaling.py``; the
wall-clock means land in ``BENCH_baseline.json`` under the usual 3×
regression gate.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.core.theta import theta_algorithm
from repro.dynamic.batching import apply_events_parallel
from repro.dynamic.events import random_event_trace
from repro.dynamic.incremental import IncrementalTheta
from repro.dynamic.interference import DynamicInterference
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.interference.conflict import interference_sets

THETA = math.pi / 9
DELTA = 0.5
SPEEDUP_FLOOR = 5.0


def _world(n: int, *, rng: int = 2):
    # Scale the square by sqrt(n): constant density, size-independent D.
    side = math.sqrt(n)
    pts = uniform_points(n, rng=rng) * side
    d = max_range_for_connectivity(pts, method="sparse")
    return pts, d, side


@pytest.mark.parametrize("n", [10_000])
def test_churn_incremental_vs_rebuild(benchmark, n):
    pts, d, side = _world(n)
    trace = random_event_trace(
        pts, max(1, round(0.01 * n)), side=side, move_sigma=d / 2.0, rng=3
    )
    inc = IncrementalTheta(pts, THETA, d)

    # Events mutate the maintainer, so exactly one timed round.
    stats = benchmark.pedantic(lambda: inc.apply_trace(trace), rounds=1, iterations=1)
    assert len(stats) == len(trace)
    per_event = float(np.mean([s.wall_time for s in stats]))

    live = inc.live_points()
    t_rebuild = []
    for _ in range(3):
        t0 = time.perf_counter()
        theta_algorithm(live, THETA, d)
        t_rebuild.append(time.perf_counter() - t0)
    rebuild = float(np.mean(t_rebuild))

    speedup = rebuild / per_event
    print(
        f"\nn={n}: {len(stats)} events, {per_event * 1e3:.3f} ms/event vs "
        f"{rebuild * 1e3:.1f} ms/rebuild — {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental repair only {speedup:.1f}x faster than a full rebuild "
        f"at n={n} (floor: {SPEEDUP_FLOOR}x)"
    )
    # And it stayed correct while being fast.
    assert not inc.check_full_equivalence()


@pytest.mark.parametrize("n", [10_000])
def test_churn_full_rebuild_baseline(benchmark, n):
    # The comparison partner as its own tracked series, so the baseline
    # JSON records both sides of the E23 speedup claim.
    pts, d, _ = _world(n)
    topo = benchmark.pedantic(
        lambda: theta_algorithm(pts, THETA, d), rounds=1, iterations=1
    )
    assert topo.graph.n_edges > 0


@pytest.mark.parametrize("n", [10_000])
def test_churn_mac_conflict_incremental_vs_rebuild(benchmark, n):
    """E24 gate: conflict-row repair under a 1%-churn MAC workload.

    Each event repairs only the rows whose guard zones intersect the
    dirty disk; a per-step MAC over the maintained structure would
    otherwise pay a full ``interference_sets`` rebuild.
    """
    pts, d, side = _world(n)
    events = list(
        random_event_trace(
            pts, max(1, round(0.01 * n)), side=side, move_sigma=d / 2.0, rng=3
        ).events()
    )
    inc = IncrementalTheta(pts, THETA, d)
    di = DynamicInterference(inc, DELTA)

    def churn():
        return [di.update_event(inc.apply(ev)) for ev in events]

    conflict_stats = benchmark.pedantic(churn, rounds=1, iterations=1)
    per_event = float(np.mean([cs.wall_time for cs in conflict_stats]))

    snapshot = inc.snapshot_graph()
    t_rebuild = []
    for _ in range(3):
        t0 = time.perf_counter()
        interference_sets(snapshot, DELTA)
        t_rebuild.append(time.perf_counter() - t0)
    rebuild = float(np.mean(t_rebuild))

    speedup = rebuild / per_event
    print(
        f"\nn={n}: {len(conflict_stats)} events, {per_event * 1e3:.3f} ms/repair vs "
        f"{rebuild * 1e3:.1f} ms/rebuild — {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"conflict repair only {speedup:.1f}x faster than a full rebuild "
        f"at n={n} (floor: {SPEEDUP_FLOOR}x)"
    )
    # Bit-identical to the from-scratch rows while being fast.
    assert di.check_full_equivalence() == 0


@pytest.mark.parametrize("n", [10_000])
def test_churn_mac_full_conflict_rebuild_baseline(benchmark, n):
    # The comparison partner of the E24 speedup claim as its own series.
    pts, d, _ = _world(n)
    inc = IncrementalTheta(pts, THETA, d)
    snapshot = inc.snapshot_graph()
    sets = benchmark.pedantic(
        lambda: interference_sets(snapshot, DELTA), rounds=1, iterations=1
    )
    assert len(sets) == snapshot.n_edges


@pytest.mark.parametrize("n", [10_000])
def test_churn_parallel_vs_serial(benchmark, n):
    """Disjoint-region batch application beats the serial event loop.

    A 10%-per-step churn trace makes the per-event dirty disks overlap
    heavily; grouping the step's events and repairing each merged
    region once dedups that overlap, so batch application wins even on
    one core — while producing the identical edge set and conflict CSR.
    """
    pts, d, side = _world(n)
    per_step = max(1, round(0.10 * n))
    events = list(
        random_event_trace(
            pts, per_step * 2, side=side, move_sigma=d / 2.0, rng=5
        ).events()
    )

    inc_s = IncrementalTheta(pts, THETA, d)
    di_s = DynamicInterference(inc_s, DELTA)
    t0 = time.perf_counter()
    for ev in events:
        di_s.update_event(inc_s.apply(ev))
    t_serial = time.perf_counter() - t0

    inc_p = IncrementalTheta(pts, THETA, d)
    di_p = DynamicInterference(inc_p, DELTA)

    def run_batched():
        for lo in range(0, len(events), per_step):
            apply_events_parallel(
                inc_p, events[lo : lo + per_step], interference=di_p, jobs=4
            )

    t0 = time.perf_counter()
    benchmark.pedantic(run_batched, rounds=1, iterations=1)
    t_parallel = time.perf_counter() - t0

    print(
        f"\nn={n}: {len(events)} events — serial {t_serial:.2f}s vs "
        f"batched {t_parallel:.2f}s ({t_serial / t_parallel:.2f}x)"
    )
    # Correctness first: same topology, same conflict rows.
    assert np.array_equal(inc_s.edge_array(), inc_p.edge_array())
    assert di_s.interference_sets() == di_p.interference_sets()
    assert di_p.check_full_equivalence() == 0
    assert t_parallel < t_serial, (
        f"batched application ({t_parallel:.2f}s) not faster than the serial "
        f"event loop ({t_serial:.2f}s) on a 10%-churn trace at n={n}"
    )
