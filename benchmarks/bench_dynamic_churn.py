"""Performance bench: incremental ΘALG repair vs. from-scratch rebuild.

The payoff of the dynamic subsystem (ISSUE E23, ``docs/dynamics.md``):
at production scale an event repairs a bounded disk, while a rebuild
pays for the whole network.  This bench drives a 1%-churn mixed trace
(``0.01 · n`` events) through :class:`repro.dynamic.incremental.
IncrementalTheta` at n = 10 000 and **gates the speedup**: the mean
per-event repair must be at least 5× faster than one from-scratch
:func:`~repro.core.theta.theta_algorithm` run on the live node set.

Runs in the CI bench-smoke job next to ``bench_perf_scaling.py``; the
wall-clock means land in ``BENCH_baseline.json`` under the usual 3×
regression gate.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.core.theta import theta_algorithm
from repro.dynamic.events import random_event_trace
from repro.dynamic.incremental import IncrementalTheta
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity

THETA = math.pi / 9
SPEEDUP_FLOOR = 5.0


def _world(n: int, *, rng: int = 2):
    # Scale the square by sqrt(n): constant density, size-independent D.
    side = math.sqrt(n)
    pts = uniform_points(n, rng=rng) * side
    d = max_range_for_connectivity(pts, method="sparse")
    return pts, d, side


@pytest.mark.parametrize("n", [10_000])
def test_churn_incremental_vs_rebuild(benchmark, n):
    pts, d, side = _world(n)
    trace = random_event_trace(
        pts, max(1, round(0.01 * n)), side=side, move_sigma=d / 2.0, rng=3
    )
    inc = IncrementalTheta(pts, THETA, d)

    # Events mutate the maintainer, so exactly one timed round.
    stats = benchmark.pedantic(lambda: inc.apply_trace(trace), rounds=1, iterations=1)
    assert len(stats) == len(trace)
    per_event = float(np.mean([s.wall_time for s in stats]))

    live = inc.live_points()
    t_rebuild = []
    for _ in range(3):
        t0 = time.perf_counter()
        theta_algorithm(live, THETA, d)
        t_rebuild.append(time.perf_counter() - t0)
    rebuild = float(np.mean(t_rebuild))

    speedup = rebuild / per_event
    print(
        f"\nn={n}: {len(stats)} events, {per_event * 1e3:.3f} ms/event vs "
        f"{rebuild * 1e3:.1f} ms/rebuild — {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental repair only {speedup:.1f}x faster than a full rebuild "
        f"at n={n} (floor: {SPEEDUP_FLOOR}x)"
    )
    # And it stayed correct while being fast.
    assert not inc.check_full_equivalence()


@pytest.mark.parametrize("n", [10_000])
def test_churn_full_rebuild_baseline(benchmark, n):
    # The comparison partner as its own tracked series, so the baseline
    # JSON records both sides of the E23 speedup claim.
    pts, d, _ = _world(n)
    topo = benchmark.pedantic(
        lambda: theta_algorithm(pts, THETA, d), rounds=1, iterations=1
    )
    assert topo.graph.n_edges > 0
