"""E19 — slot cost of the "three rounds" under interference (§2.1).

The paper notes the three protocol rounds "may take a variable amount
of time due to the interference and confliction."  This bench measures
that time in guard-zone-feasible slots for uniform vs civilized inputs:
on bounded-density (civilized) inputs the slot cost per round is flat
in n (true locality), while at connectivity-critical uniform density it
grows with the Θ(log n) local density.

Rows come from the claim registry (the same parameters ``repro verify``
gates on); the assertions mirror ``repro.harness.checks.check_e19``.
"""

from __future__ import annotations

from repro.analysis.tables import render_table


def test_e19_protocol_slots(benchmark, record_table, claim_rows):
    rows = benchmark.pedantic(lambda: claim_rows("e19"), iterations=1, rounds=1)
    record_table(
        "e19_protocol_slots",
        render_table(rows, title="E19: §2.1 — slot cost of the 3 protocol rounds under interference"),
    )
    for r in rows:
        assert r["total_slots"] >= 3
    # Civilized inputs: slot cost roughly flat in n (bounded density).
    civ = sorted((r for r in rows if r["distribution"] == "civilized"), key=lambda r: r["n"])
    assert civ[-1]["total_slots"] <= 3.0 * max(civ[0]["total_slots"], 1), civ
