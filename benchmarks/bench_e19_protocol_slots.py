"""E19 — slot cost of the "three rounds" under interference (§2.1).

The paper notes the three protocol rounds "may take a variable amount
of time due to the interference and confliction."  This bench measures
that time in guard-zone-feasible slots for uniform vs civilized inputs:
on bounded-density (civilized) inputs the slot cost per round is flat
in n (true locality), while at connectivity-critical uniform density it
grows with the Θ(log n) local density.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.geometry.pointsets import civilized_points, uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.localsim.timed import timed_protocol_cost
from repro.utils.rng import spawn_rngs


def _rows():
    rows = []
    for dist_name, maker in (
        ("uniform", lambda n, r: uniform_points(n, rng=r)),
        ("civilized", lambda n, r: civilized_points(n, lam=0.5, rng=r)),
    ):
        for n, child in zip((64, 128, 256), spawn_rngs(0, 3)):
            pts = maker(n, child)
            d = max_range_for_connectivity(pts, slack=1.3)
            rep = timed_protocol_cost(pts, math.pi / 9, d, delta=0.5)
            row = {"distribution": dist_name, "n": n}
            row.update(
                {
                    "position_slots": rep.position_slots,
                    "neighborhood_slots": rep.neighborhood_slots,
                    "connection_slots": rep.connection_slots,
                    "total_slots": rep.total_slots,
                }
            )
            rows.append(row)
    return rows


def test_e19_protocol_slots(benchmark, record_table):
    rows = benchmark.pedantic(_rows, iterations=1, rounds=1)
    record_table("e19_protocol_slots", render_table(rows, title="E19: §2.1 — slot cost of the 3 protocol rounds under interference"))
    for r in rows:
        assert r["total_slots"] >= 3
    # Civilized inputs: slot cost roughly flat in n (bounded density).
    civ = sorted((r for r in rows if r["distribution"] == "civilized"), key=lambda r: r["n"])
    assert civ[-1]["total_slots"] <= 3.0 * max(civ[0]["total_slots"], 1), civ