"""E11 — §2.1: ΘALG runs in three rounds of local communication.

Paper claim: ΘALG is implementable with three rounds of local message
broadcasting (Position at max power, Neighborhood to each Yao choice,
Connection to each admitted in-neighbor).  The bench runs the actual
message-passing protocol, asserts the constructed topology is
edge-for-edge identical to the centralized construction, and reports
message counts — which must be O(1) per node.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import e11_local_protocol


def test_e11_local_protocol(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e11_local_protocol(ns=(64, 128, 256, 512), rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e11_local_protocol",
        render_table(rows, title="E11: §2.1 — 3-round local protocol (message counts, equivalence)"),
    )
    for r in rows:
        assert r["matches_centralized"], r
        assert r["rounds"] == 3
    # Per-node message count flat in n (locality).
    per_node = [r["msgs_per_node"] for r in rows]
    assert max(per_node) / min(per_node) < 1.5
