"""Gate pytest-benchmark results against the committed baseline.

Usage::

    PYTHONPATH=src pytest benchmarks/bench_perf_scaling.py --benchmark-json=bench.json
    python benchmarks/check_regression.py bench.json                # gate (CI)
    python benchmarks/check_regression.py --write-baseline bench.json  # refresh baseline

Compares each benchmark's mean against ``BENCH_baseline.json`` and
exits 1 if any exceeds ``regression_factor`` (default 3×) times its
baseline mean.  The factor is deliberately loose: absolute speeds vary
across runners, but a 3× blowup on the same workload is a real
regression, not machine noise.  Benchmarks missing from the baseline
are reported but do not fail the gate (so adding a bench does not
require touching the baseline in the same commit).

``--delta-json PATH`` additionally emits the per-benchmark deltas as a
machine-readable document (``repro-bench-delta/v1``), and
``--github-summary`` renders the same deltas as a Markdown table
appended to ``$GITHUB_STEP_SUMMARY`` (a no-op outside GitHub Actions),
so the CI job page shows the regression/improvement table without
digging through logs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_baseline.json"
DELTA_SCHEMA = "repro-bench-delta/v1"


def load_means(path: Path) -> "dict[str, float]":
    """Means by test name, from either pytest-benchmark output or a baseline."""
    data = json.loads(Path(path).read_text())
    benches = data["benchmarks"]
    if isinstance(benches, list):  # raw pytest-benchmark format
        return {b["name"]: float(b["stats"]["mean"]) for b in benches}
    return {name: float(b["mean_seconds"]) for name, b in benches.items()}


def load_extra_info(path: Path) -> "dict[str, dict]":
    """Per-benchmark ``extra_info`` (suppressed ratios, RSS budgets, ...).

    Only the raw pytest-benchmark format carries it; baselines gate
    means, not annotations.
    """
    data = json.loads(Path(path).read_text())
    benches = data["benchmarks"]
    if not isinstance(benches, list):
        return {}
    return {b["name"]: b.get("extra_info") or {} for b in benches}


def write_baseline(run_path: Path, baseline_path: Path) -> None:
    means = load_means(run_path)
    raw = json.loads(Path(run_path).read_text())
    out = {
        "comment": (
            "Committed reference means for benchmarks/bench_perf_scaling.py. "
            "Regenerate with: PYTHONPATH=src pytest benchmarks/bench_perf_scaling.py "
            "--benchmark-json=bench.json && python benchmarks/check_regression.py "
            "--write-baseline bench.json. CI fails a run whose mean exceeds "
            "regression_factor x these values (absolute speeds vary by runner; the "
            "factor is deliberately loose)."
        ),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw", "unknown"),
        "regression_factor": 3.0,
        "benchmarks": {n: {"mean_seconds": round(m, 6)} for n, m in means.items()},
    }
    baseline_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"baseline written to {baseline_path} ({len(means)} benchmarks)")


def build_deltas(
    current: "dict[str, float]",
    baseline: "dict[str, float]",
    factor: float,
    extra: "dict[str, dict] | None" = None,
) -> "list[dict]":
    """Per-benchmark delta rows: mean, baseline, ratio, and a verdict.

    Verdicts: ``regressed`` (ratio beyond the gate factor), ``improved``
    (faster than baseline), ``ok``, and ``new`` (no baseline entry —
    never gated).  Benchmarks only in the baseline come back as
    ``missing`` with no mean.  ``extra`` annotations (the benches'
    ``extra_info``) ride along per row and surface in the summary table.
    """
    extra = extra or {}
    rows = []
    for name, mean in sorted(current.items()):
        ref = baseline.get(name)
        ratio = mean / ref if ref else None
        if ref is None:
            verdict = "new"
        elif ratio > factor:
            verdict = "regressed"
        elif ratio < 1.0:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(
            {
                "name": name,
                "mean_seconds": mean,
                "baseline_seconds": ref,
                "ratio": ratio,
                "verdict": verdict,
                "extra_info": extra.get(name, {}),
            }
        )
    for name in sorted(set(baseline) - set(current)):
        rows.append(
            {
                "name": name,
                "mean_seconds": None,
                "baseline_seconds": baseline[name],
                "ratio": None,
                "verdict": "missing",
                "extra_info": {},
            }
        )
    return rows


def write_delta_json(rows: "list[dict]", factor: float, path: Path) -> None:
    doc = {
        "schema": DELTA_SCHEMA,
        "regression_factor": factor,
        "n_regressed": sum(r["verdict"] == "regressed" for r in rows),
        "benchmarks": rows,
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


def render_markdown(rows: "list[dict]", factor: float) -> str:
    """The delta table as GitHub-flavored Markdown for the job summary."""
    icon = {"ok": "✅", "improved": "🚀", "regressed": "❌", "new": "🆕", "missing": "⚠️"}
    lines = [
        f"### benchmark deltas vs committed baseline (gate: {factor:.1f}×)",
        "",
        "| benchmark | mean | baseline | ratio | verdict | notes |",
        "| --- | ---: | ---: | ---: | --- | --- |",
    ]
    for r in rows:
        mean = f"{r['mean_seconds'] * 1e3:.2f} ms" if r["mean_seconds"] is not None else "—"
        ref = (
            f"{r['baseline_seconds'] * 1e3:.2f} ms"
            if r["baseline_seconds"] is not None
            else "—"
        )
        ratio = f"{r['ratio']:.2f}×" if r["ratio"] is not None else "—"
        notes = " · ".join(
            f"{k}={v}" for k, v in sorted(r.get("extra_info", {}).items())
        ) or "—"
        lines.append(
            f"| `{r['name']}` | {mean} | {ref} | {ratio} | "
            f"{icon[r['verdict']]} {r['verdict']} | {notes} |"
        )
    return "\n".join(lines) + "\n"


def append_github_summary(markdown: str) -> bool:
    """Append to ``$GITHUB_STEP_SUMMARY`` if set; returns whether it was."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    with open(path, "a") as fh:
        fh.write(markdown + "\n")
    return True


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--factor",
        type=float,
        default=None,
        help="override the baseline's regression_factor",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the baseline from this run instead of gating",
    )
    parser.add_argument(
        "--report-improvements",
        action="store_true",
        help="also print a speedup factor for benchmarks faster than baseline",
    )
    parser.add_argument(
        "--delta-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the per-benchmark deltas as machine-readable JSON "
        f"({DELTA_SCHEMA})",
    )
    parser.add_argument(
        "--github-summary",
        action="store_true",
        help="append the delta table as Markdown to $GITHUB_STEP_SUMMARY "
        "(no-op when the variable is unset)",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        write_baseline(args.results, args.baseline)
        return 0

    baseline_doc = json.loads(args.baseline.read_text())
    factor = args.factor if args.factor is not None else float(
        baseline_doc.get("regression_factor", 3.0)
    )
    baseline = load_means(args.baseline)
    current = load_means(args.results)
    extra = load_extra_info(args.results)

    deltas = build_deltas(current, baseline, factor, extra)
    failed = []
    for row in deltas:
        name, mean, ref, ratio = (
            row["name"], row["mean_seconds"], row["baseline_seconds"], row["ratio"],
        )
        if row["verdict"] == "missing":
            print(f"MISSING  {name}: in baseline but not in this run")
            continue
        if row["verdict"] == "new":
            print(f"NEW      {name}: {mean * 1e3:8.2f} ms (no baseline entry)")
            continue
        if args.report_improvements and row["verdict"] == "improved":
            print(
                f"IMPROVED {name}: {mean * 1e3:8.2f} ms vs baseline "
                f"{ref * 1e3:8.2f} ms ({1.0 / ratio:.2f}x faster)"
            )
            continue
        verdict = "OK" if row["verdict"] != "regressed" else "REGRESSED"
        print(
            f"{verdict:8s} {name}: {mean * 1e3:8.2f} ms vs baseline "
            f"{ref * 1e3:8.2f} ms ({ratio:.2f}x, limit {factor:.1f}x)"
        )
        if row["verdict"] == "regressed":
            failed.append(name)

    if args.delta_json:
        write_delta_json(deltas, factor, args.delta_json)
        print(f"delta JSON written to {args.delta_json}")
    if args.github_summary and append_github_summary(render_markdown(deltas, factor)):
        print("delta table appended to $GITHUB_STEP_SUMMARY")

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed beyond {factor:.1f}x", file=sys.stderr)
        return 1
    print(f"\nall {len(current)} benchmarks within {factor:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
