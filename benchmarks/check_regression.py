"""Gate pytest-benchmark results against the committed baseline.

Usage::

    PYTHONPATH=src pytest benchmarks/bench_perf_scaling.py --benchmark-json=bench.json
    python benchmarks/check_regression.py bench.json                # gate (CI)
    python benchmarks/check_regression.py --write-baseline bench.json  # refresh baseline

Compares each benchmark's mean against ``BENCH_baseline.json`` and
exits 1 if any exceeds ``regression_factor`` (default 3×) times its
baseline mean.  The factor is deliberately loose: absolute speeds vary
across runners, but a 3× blowup on the same workload is a real
regression, not machine noise.  Benchmarks missing from the baseline
are reported but do not fail the gate (so adding a bench does not
require touching the baseline in the same commit).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_baseline.json"


def load_means(path: Path) -> "dict[str, float]":
    """Means by test name, from either pytest-benchmark output or a baseline."""
    data = json.loads(Path(path).read_text())
    benches = data["benchmarks"]
    if isinstance(benches, list):  # raw pytest-benchmark format
        return {b["name"]: float(b["stats"]["mean"]) for b in benches}
    return {name: float(b["mean_seconds"]) for name, b in benches.items()}


def write_baseline(run_path: Path, baseline_path: Path) -> None:
    means = load_means(run_path)
    raw = json.loads(Path(run_path).read_text())
    out = {
        "comment": (
            "Committed reference means for benchmarks/bench_perf_scaling.py. "
            "Regenerate with: PYTHONPATH=src pytest benchmarks/bench_perf_scaling.py "
            "--benchmark-json=bench.json && python benchmarks/check_regression.py "
            "--write-baseline bench.json. CI fails a run whose mean exceeds "
            "regression_factor x these values (absolute speeds vary by runner; the "
            "factor is deliberately loose)."
        ),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw", "unknown"),
        "regression_factor": 3.0,
        "benchmarks": {n: {"mean_seconds": round(m, 6)} for n, m in means.items()},
    }
    baseline_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"baseline written to {baseline_path} ({len(means)} benchmarks)")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--factor",
        type=float,
        default=None,
        help="override the baseline's regression_factor",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the baseline from this run instead of gating",
    )
    parser.add_argument(
        "--report-improvements",
        action="store_true",
        help="also print a speedup factor for benchmarks faster than baseline",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        write_baseline(args.results, args.baseline)
        return 0

    baseline_doc = json.loads(args.baseline.read_text())
    factor = args.factor if args.factor is not None else float(
        baseline_doc.get("regression_factor", 3.0)
    )
    baseline = load_means(args.baseline)
    current = load_means(args.results)

    failed = []
    for name, mean in sorted(current.items()):
        ref = baseline.get(name)
        if ref is None:
            print(f"NEW      {name}: {mean * 1e3:8.2f} ms (no baseline entry)")
            continue
        ratio = mean / ref
        if args.report_improvements and ratio < 1.0:
            verdict = "IMPROVED"
            print(
                f"{verdict:8s} {name}: {mean * 1e3:8.2f} ms vs baseline "
                f"{ref * 1e3:8.2f} ms ({1.0 / ratio:.2f}x faster)"
            )
            continue
        verdict = "OK" if ratio <= factor else "REGRESSED"
        print(
            f"{verdict:8s} {name}: {mean * 1e3:8.2f} ms vs baseline "
            f"{ref * 1e3:8.2f} ms ({ratio:.2f}x, limit {factor:.1f}x)"
        )
        if ratio > factor:
            failed.append(name)
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"MISSING  {name}: in baseline but not in this run")

    if failed:
        print(f"\n{len(failed)} benchmark(s) regressed beyond {factor:.1f}x", file=sys.stderr)
        return 1
    print(f"\nall {len(current)} benchmarks within {factor:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
