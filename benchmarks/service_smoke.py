#!/usr/bin/env python
"""CI smoke: real ``python -m repro serve`` process, SIGTERM drain, SSE.

Spawns the service as a subprocess (port 0 → parsed from its announce
line), then, over plain sockets:

1. creates two sessions and attaches one SSE consumer to each;
2. steps both sessions and injects a churn event into the first;
3. SIGTERMs the server and asserts the graceful-drain contract:
   every stream ends with a terminal ``end`` frame whose
   ``final_stats`` reconcile exactly against the hello baseline plus
   the received step deltas, the process exits 0, and the port is
   actually released (no orphan listener).

Raw SSE transcripts are written into ``--artifact-dir`` so the CI lane
can upload them.  Exit status 1 on any violated assertion::

    python benchmarks/service_smoke.py --artifact-dir service-smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from repro.obs.metrics import StepSeries
from repro.service.protocol import PROTOCOL

RECONCILE_FIELDS = (
    StepSeries.COUNTER_FIELDS + StepSeries.ENERGY_FIELDS + StepSeries.CHURN_FIELDS
)


async def request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nhost: smoke\r\n"
            f"content-length: {len(payload)}\r\nconnection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    response = await reader.read(-1)
    writer.close()
    status = int(response.split(b" ", 2)[1])
    body_bytes = response.partition(b"\r\n\r\n")[2]
    return status, json.loads(body_bytes) if body_bytes.startswith(b"{") else body_bytes.decode()


async def attach_stream(port, sid, transcript_path: Path):
    """SSE consumer task: records the raw transcript, returns the frames."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET /v1/sessions/{sid}/series HTTP/1.1\r\nhost: smoke\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b"200 OK" in head, head

    async def consume():
        raw = bytearray()
        events, buf = [], b""
        try:
            while True:
                while b"\n\n" in buf:
                    block, buf = buf.split(b"\n\n", 1)
                    text = block.decode().strip()
                    if not text or text.startswith(":"):
                        continue
                    fields = dict(ln.split(": ", 1) for ln in text.split("\n") if ": " in ln)
                    events.append((fields["event"], json.loads(fields["data"])))
                    if events[-1][0] in ("end", "evicted"):
                        return events
                chunk = await reader.read(65536)
                if not chunk:
                    return events
                raw.extend(chunk)
                buf += chunk
        finally:
            transcript_path.write_bytes(bytes(raw))
            writer.close()

    return asyncio.create_task(consume())


def reconcile(events) -> "list[str]":
    problems = []
    assert events and events[0][0] == "hello", "stream missing hello frame"
    assert events[-1][0] == "end", f"stream ended with {events[-1][0]!r}"
    baseline = events[0][1]["baseline"]
    final = events[-1][1]["final_stats"]
    deltas = [d for e, d in events if e == "step"]
    for name in RECONCILE_FIELDS:
        if name not in final:
            continue
        total = baseline[name] + sum(d[name] for d in deltas)
        if total != final[name]:
            problems.append(f"{name}: baseline+deltas={total} != final {final[name]}")
    return problems


async def main_async(args) -> int:
    artifacts = Path(args.artifact_dir)
    artifacts.mkdir(parents=True, exist_ok=True)

    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--max-sessions", "4", "--session-ttl", "120",
        stdout=asyncio.subprocess.PIPE, stderr=asyncio.subprocess.STDOUT,
    )
    try:
        line = (await asyncio.wait_for(proc.stdout.readline(), 60)).decode()
        print(f"server: {line.strip()}")
        assert PROTOCOL in line and "listening on http://" in line, line
        port = int(line.rsplit(":", 1)[1].split()[0].rstrip("/)"))

        status, health = await request(port, "GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok", health

        sids, streams = [], []
        for i in range(2):
            status, body = await request(
                port, "POST", "/v1/sessions",
                {"n": 48, "seed": 40 + i, "traffic_rate": 2.0, "name": f"smoke-{i}"},
            )
            assert status == 201, body
            sid = body["session"]["id"]
            sids.append(sid)
            streams.append(
                await attach_stream(port, sid, artifacts / f"stream-{i}.sse")
            )

        for sid in sids:
            status, body = await request(port, "POST", f"/v1/sessions/{sid}/step?steps=20")
            assert status == 200 and body["t"] == 20, body

        # Live churn into the first session, then step both again.
        status, body = await request(
            port, "POST", f"/v1/sessions/{sids[0]}/events",
            {"events": [{"kind": "fail", "node": 5},
                        {"kind": "inject", "node": 7, "dest": 0, "count": 3}]},
        )
        assert status == 200 and body["scheduled"] == 1, body
        for sid in sids:
            status, body = await request(port, "POST", f"/v1/sessions/{sid}/step?steps=10")
            assert status == 200 and body["t"] == 30, body

        status, metrics_text = await request(port, "GET", "/v1/metrics")
        assert status == 200 and "repro_service_sessions_active" in metrics_text, (
            metrics_text.splitlines()[:5]
        )
        (artifacts / "metrics.txt").write_text(metrics_text)

        # Graceful drain: SIGTERM → streams end, exit 0, port released.
        proc.send_signal(signal.SIGTERM)
        rc = await asyncio.wait_for(proc.wait(), 30)
        assert rc == 0, f"server exited {rc}, expected graceful 0"

        problems = []
        for i, task in enumerate(streams):
            events = await asyncio.wait_for(task, 10)
            assert events[-1][1]["reason"].startswith("signal:"), events[-1]
            assert events[-1][1]["steps"] == 30, events[-1]
            problems += [f"stream {i}: {p}" for p in reconcile(events)]
            print(
                f"stream {i}: {len(events)} frames, "
                f"end reason {events[-1][1]['reason']!r}, reconcile "
                f"{'exact' if not any(p.startswith(f'stream {i}') for p in problems) else 'MISMATCH'}"
            )
        for p in problems:
            print(f"SMOKE FAIL: {p}", file=sys.stderr)
        if problems:
            return 1

        try:
            await asyncio.open_connection("127.0.0.1", port)
            print("SMOKE FAIL: port still accepting after exit", file=sys.stderr)
            return 1
        except OSError:
            pass
        print("service smoke: drain clean, streams exact, port released")
        return 0
    finally:
        if proc.returncode is None:
            proc.kill()
            await proc.wait()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact-dir", default="service-smoke", metavar="DIR",
        help="where to write SSE transcripts and the metrics page",
    )
    args = parser.parse_args(argv)
    return asyncio.run(asyncio.wait_for(main_async(args), 240))


if __name__ == "__main__":
    raise SystemExit(main())
