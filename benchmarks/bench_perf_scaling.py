"""Performance benches: construction-cost scaling of the core kernels.

Not a paper claim — engineering due diligence per the optimize-after-
measuring workflow: these benches time the hot construction paths
(transmission graph, ΘALG, interference sets, a balancing step) at a
realistic size so regressions surface in `--benchmark-compare` runs.

Two tiers:

* the n=512 tier runs every kernel with full pytest-benchmark
  statistics (several rounds each);
* the scaling tier times transmission-graph and interference-set
  construction at n ∈ {2 000, 10 000, 30 000} with a single round per
  size (``benchmark.pedantic``), checking that the vectorized kernels
  stay usable at production scale inside the CI smoke budget.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph
from repro.interference.conflict import interference_sets

N = 512


@pytest.fixture(scope="module")
def world():
    pts = uniform_points(N, rng=0)
    d = max_range_for_connectivity(pts, slack=1.5)
    return pts, d


def test_perf_transmission_graph(benchmark, world):
    pts, d = world
    g = benchmark(lambda: transmission_graph(pts, d))
    assert g.n_edges > N


def test_perf_theta_algorithm(benchmark, world):
    pts, d = world
    topo = benchmark(lambda: theta_algorithm(pts, math.pi / 9, d))
    assert topo.graph.n_edges > 0


def test_perf_interference_sets(benchmark, world):
    pts, d = world
    topo = theta_algorithm(pts, math.pi / 9, d)
    sets = benchmark(lambda: interference_sets(topo.graph, 0.5))
    assert len(sets) == topo.graph.n_edges


def test_perf_balancing_step(benchmark, world):
    pts, d = world
    topo = theta_algorithm(pts, math.pi / 9, d)
    g = topo.graph
    router = BalancingRouter(g.n_nodes, list(range(8)), BalancingConfig(1.0, 0.0, 64))
    gen = np.random.default_rng(0)
    for _ in range(200):
        s = int(gen.integers(8, g.n_nodes))
        router.inject(s, int(gen.integers(0, 8)), 1)
    edges = g.directed_edge_array()
    costs = np.concatenate([g.edge_costs, g.edge_costs])

    def step():
        return router.run_step(edges, costs, injections=[(20, 1, 1)])

    benchmark(step)
    assert router.stats.steps > 0


# ---------------------------------------------------------------------------
# Scaling tier: one timed round per size (setup dominates otherwise).
# ---------------------------------------------------------------------------

SCALING_NS = [2_000, 10_000, 30_000]


@pytest.fixture(scope="module")
def scaling_world():
    """Lazily built (points, range, G*) per size, shared across benches."""
    cache: dict[int, tuple] = {}

    def get(n: int):
        if n not in cache:
            # Scale the unit square by sqrt(n) so node density stays
            # constant and the connectivity range is size-independent.
            pts = uniform_points(n, rng=1) * math.sqrt(n)
            d = max_range_for_connectivity(pts, method="sparse")
            cache[n] = (pts, d, transmission_graph(pts, d))
        return cache[n]

    return get


@pytest.mark.parametrize("n", SCALING_NS)
def test_scaling_transmission_graph(benchmark, scaling_world, n):
    pts, d, _ = scaling_world(n)
    g = benchmark.pedantic(lambda: transmission_graph(pts, d), rounds=1, iterations=1)
    assert g.n_edges >= n - 1


@pytest.mark.parametrize("n", SCALING_NS)
def test_scaling_interference_sets(benchmark, scaling_world, n):
    _, _, g = scaling_world(n)
    sets = benchmark.pedantic(lambda: interference_sets(g, 0.5), rounds=1, iterations=1)
    assert len(sets) == g.n_edges