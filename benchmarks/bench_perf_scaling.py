"""Performance benches: construction-cost scaling of the core kernels.

Not a paper claim — engineering due diligence per the optimize-after-
measuring workflow: these benches time the hot construction paths
(transmission graph, ΘALG, interference sets, a balancing step) at a
realistic size so regressions surface in `--benchmark-compare` runs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.core.theta import theta_algorithm
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity, transmission_graph
from repro.interference.conflict import interference_sets

N = 512


@pytest.fixture(scope="module")
def world():
    pts = uniform_points(N, rng=0)
    d = max_range_for_connectivity(pts, slack=1.5)
    return pts, d


def test_perf_transmission_graph(benchmark, world):
    pts, d = world
    g = benchmark(lambda: transmission_graph(pts, d))
    assert g.n_edges > N


def test_perf_theta_algorithm(benchmark, world):
    pts, d = world
    topo = benchmark(lambda: theta_algorithm(pts, math.pi / 9, d))
    assert topo.graph.n_edges > 0


def test_perf_interference_sets(benchmark, world):
    pts, d = world
    topo = theta_algorithm(pts, math.pi / 9, d)
    sets = benchmark(lambda: interference_sets(topo.graph, 0.5))
    assert len(sets) == topo.graph.n_edges


def test_perf_balancing_step(benchmark, world):
    pts, d = world
    topo = theta_algorithm(pts, math.pi / 9, d)
    g = topo.graph
    router = BalancingRouter(g.n_nodes, list(range(8)), BalancingConfig(1.0, 0.0, 64))
    gen = np.random.default_rng(0)
    for _ in range(200):
        s = int(gen.integers(8, g.n_nodes))
        router.inject(s, int(gen.integers(0, 8)), 1)
    edges = g.directed_edge_array()
    costs = np.concatenate([g.edge_costs, g.edge_costs])

    def step():
        return router.run_step(edges, costs, injections=[(20, 1, 1)])

    benchmark(step)
    assert router.stats.steps > 0