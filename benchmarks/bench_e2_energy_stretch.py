"""E2 — Theorem 2.2: N has O(1) energy-stretch for any distribution.

Paper claim: for sufficiently small θ, the minimum-energy path in N
between the endpoints of any G* edge costs O(|uv|^κ); hence the
energy-stretch of N w.r.t. G* is a constant independent of n and of
the node distribution.  The table sweeps distribution × n × θ × κ and
includes the unpruned Yao graph N₁ as the phase-2 ablation (DESIGN.md
§4): pruning costs a little stretch but caps the degree.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.analysis.topology_experiments import e2_energy_stretch

STRETCH_CEILING = 3.0  # generous constant for θ ≤ π/6, κ ≤ 4


def test_e2_energy_stretch(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e2_energy_stretch(
            ns=(64, 128, 256),
            thetas=(math.pi / 6, math.pi / 9, math.pi / 12),
            kappas=(2.0, 3.0, 4.0),
            distributions=("uniform", "clustered", "ring", "two_cluster"),
            rng=0,
            max_sources=96,
        ),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e2_energy_stretch",
        render_table(rows, title="E2: Theorem 2.2 — energy-stretch of N (O(1), flat in n/distribution)"),
    )
    for r in rows:
        assert r["disconnected_pairs"] == 0, r
        assert r["energy_stretch_max"] < STRETCH_CEILING, r
    # Flatness in n: the max over each n-slice varies by < 50%.
    by_n: dict[int, list[float]] = {}
    for r in rows:
        by_n.setdefault(r["n"], []).append(r["energy_stretch_max"])
    maxima = [max(v) for v in by_n.values()]
    assert max(maxima) / min(maxima) < 1.5
