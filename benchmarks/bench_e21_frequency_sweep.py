"""E21 — the δ (frequencies) parameter of Theorem 3.1, ablated.

Theorem 3.1's threshold rule T ≥ B + 2(δ−1) names δ, the number of
edges one node can use concurrently.  This ablation caps per-node
concurrency in the MAC and sweeps δ: throughput should rise with δ
(radio contention is the binding constraint at δ=1) and saturate once
the stream paths stop competing for radios.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import e21_frequency_sweep
from repro.analysis.tables import render_table


def test_e21_frequency_sweep(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e21_frequency_sweep(deltas=(1, 2, 4), duration=600, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e21_frequency_sweep",
        render_table(rows, title="E21: throughput vs δ (concurrent edges per node)"),
    )
    ratios = [r["throughput_ratio"] for r in rows]
    # Monotone non-decreasing in δ (with a little noise slack).
    assert all(b >= a - 0.03 for a, b in zip(ratios, ratios[1:])), rows
    assert ratios[-1] > ratios[0], rows