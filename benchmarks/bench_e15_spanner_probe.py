"""E15 — probing the paper's open problem: is N a spanner in general?

§2 leaves open whether ΘALG's topology N has O(1) *distance*-stretch
for arbitrary (non-civilized) node distributions; only O(1)
energy-stretch is proved.  This probe measures the worst distance
stretch over every adversarial point-set family in the library across
θ.  Bounded results are (non-conclusive) evidence toward spannerhood;
the bench asserts only what the paper guarantees — connectivity — and
reports the distance numbers for the record.
"""

from __future__ import annotations

import math

from repro.analysis.ablation_experiments import e15_spanner_probe
from repro.analysis.tables import render_table


def test_e15_spanner_probe(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e15_spanner_probe(n=128, trials=4, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e15_spanner_probe",
        render_table(rows, title="E15: open problem — worst distance-stretch of N by family and θ"),
    )
    # Connectivity always holds (stretch finite)…
    for r in rows:
        assert math.isfinite(r["worst_distance_stretch"]), r
    # …and no family exhibits runaway distance-stretch at these sizes.
    assert max(r["worst_distance_stretch"] for r in rows) < 10.0