"""E7 — Theorem 3.3: (T, γ, I)-balancing without a MAC layer.

Paper claim: with each topology edge activating independently with
probability 1/(2·I_e) and interfering simultaneous transmissions all
failing, the (T, γ, I)-balancing algorithm is
``((1−ε)/(8I), ·, ·)``-competitive w.r.t. an optimal algorithm on the
same topology.  The bench runs sustained streams on ΘALG topologies
over uniform random nodes and checks the delivered fraction clears the
(1−ε)/(8I) floor; the MAC success rate column confirms Lemma 3.2's
"most attempts go through" behaviour.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import e7_tgi_throughput
from repro.analysis.tables import render_table


def test_e7_tgi_throughput(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e7_tgi_throughput(n=80, duration=3000, n_streams=4, trials=3, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e7_tgi_throughput",
        render_table(rows, title="E7: Theorem 3.3 — (T, γ, I)-balancing throughput vs the 1/(8I) floor"),
    )
    assert sum(r["above_floor"] for r in rows) >= 2  # whp-style: most trials
    for r in rows:
        assert r["mac_success_rate"] >= 0.5, r  # Lemma 3.2 empirically
