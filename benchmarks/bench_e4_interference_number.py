"""E4 — Lemma 2.10: the interference number of N is O(log n) whp.

Paper claim: for n nodes placed independently and uniformly at random
in the unit square, the interference number of ΘALG's output N is
O(log n) with high probability — in contrast to the transmission graph
G*, whose interference number grows polynomially in n.

The bench sweeps n over three guard-zone parameters Δ, fits
``I ≈ a·ln n + b``, and checks (i) the ratio I/ln n stays bounded while
(ii) the G* interference number clearly outgrows it.
"""

from __future__ import annotations


from repro.analysis.tables import fit_log_slope, render_table
from repro.analysis.topology_experiments import e4_interference_scaling


def test_e4_interference_number(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e4_interference_scaling(
            ns=(64, 128, 256, 512, 1024),
            deltas=(0.25, 0.5, 1.0),
            trials=3,
            rng=0,
        ),
        iterations=1,
        rounds=1,
    )
    table = render_table(rows, title="E4: Lemma 2.10 — interference number of N vs n (uniform random)")
    # Append the log fit per delta.
    fits = []
    for delta in (0.25, 0.5, 1.0):
        sub = [r for r in rows if r["delta"] == delta]
        a, b = fit_log_slope([r["n"] for r in sub], [r["I_N_mean"] for r in sub])
        fits.append({"delta": delta, "fit_slope_a": round(a, 2), "fit_intercept_b": round(b, 2)})
    table += "\n\n" + render_table(fits, title="E4 fit: I_N ≈ a·ln(n) + b")
    record_table("e4_interference_number", table)

    for delta in (0.25, 0.5, 1.0):
        sub = sorted((r for r in rows if r["delta"] == delta), key=lambda r: r["n"])
        # I/ln n bounded: largest-n value within 2.5x of smallest-n value.
        ratios = [r["I_over_ln_n"] for r in sub]
        assert max(ratios) <= 2.5 * max(min(ratios), 1.0), sub
        # N beats G* at the largest n.
        big = sub[-1]
        assert big["I_N_mean"] < big["I_Gstar_mean"], big
