"""E14 — ablation: ΘALG's locality vs the global constructions (§2.1).

The paper's pitch for ΘALG's phase 2 is not quality — the global
postprocessing of Wattenhofer et al. and the greedy spanner produce
comparable topologies — but *locality*: phase 2 is one extra local
round, while the alternatives need a network-wide edge ranking
(communication time proportional to the diameter).  The table shows the
quality gap is small, isolating locality as the contribution.
"""

from __future__ import annotations

from repro.analysis.ablation_experiments import e14_local_vs_global
from repro.analysis.tables import render_table


def test_e14_local_vs_global(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e14_local_vs_global(ns=(64, 128, 256), rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e14_local_vs_global",
        render_table(rows, title="E14: local ΘALG vs global sparsification — quality parity"),
    )
    for r in rows:
        assert r["disconnected"] == 0, r
        assert r["energy_stretch"] < 4.0, r
    # ΘALG within 2× of the best global stretch at every n.
    by_n: dict[int, dict[str, float]] = {}
    for r in rows:
        by_n.setdefault(r["n"], {})[r["algorithm"]] = r["energy_stretch"]
    for n, per_alg in by_n.items():
        theta = per_alg["ThetaALG (local, 3 rounds)"]
        best = min(per_alg.values())
        assert theta <= 2.0 * best + 0.5, (n, per_alg)
