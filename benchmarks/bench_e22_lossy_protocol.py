"""E22 — failure injection: the ΘALG protocol over a lossy medium.

The paper assumes message delivery; real links drop frames.  This bench
sweeps the per-delivery loss probability and the retransmission budget
and reports what survives: edge recall vs the ideal topology,
connectivity, and the transmission overhead retransmissions cost.
Expected shape: a small retry budget buys back the exact construction
at moderate loss (per-message failure decays geometrically), while the
single-shot protocol degrades with p.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.geometry.pointsets import uniform_points
from repro.graphs.transmission import max_range_for_connectivity
from repro.localsim.lossy import lossy_protocol_run


def _rows():
    pts = uniform_points(100, rng=5)
    d = max_range_for_connectivity(pts, slack=1.4)
    rows = []
    for loss in (0.0, 0.2, 0.5):
        for retries in (0, 4):
            _, rep = lossy_protocol_run(
                pts, math.pi / 9, d, loss_prob=loss, retries=retries, rng=9
            )
            r = {"loss_prob": loss, "retries": retries}
            r.update(
                {
                    "transmissions": rep.transmissions,
                    "edge_recall": round(rep.edge_recall, 3),
                    "missing": rep.missing_edges,
                    "spurious": rep.spurious_edges,
                    "connected": rep.connected,
                }
            )
            rows.append(r)
    return rows


def test_e22_lossy_protocol(benchmark, record_table):
    rows = benchmark.pedantic(_rows, iterations=1, rounds=1)
    record_table("e22_lossy_protocol", render_table(rows, title="E22: ΘALG protocol under message loss — recall vs retransmission budget"))
    by = {(r["loss_prob"], r["retries"]): r for r in rows}
    assert by[(0.0, 0)]["edge_recall"] == 1.0
    assert by[(0.2, 4)]["edge_recall"] >= 0.99
    # Single-shot protocol degrades monotonically with loss.
    assert by[(0.5, 0)]["edge_recall"] <= by[(0.2, 0)]["edge_recall"] <= 1.0
    # Retries cost transmissions.
    assert by[(0.5, 4)]["transmissions"] > by[(0.0, 0)]["transmissions"]