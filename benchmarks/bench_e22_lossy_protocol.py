"""E22 — failure injection: the ΘALG protocol over a lossy medium.

The paper assumes message delivery; real links drop frames.  This bench
sweeps the per-delivery loss probability and the retransmission budget
and reports what survives: edge recall vs the ideal topology,
connectivity, and the transmission overhead retransmissions cost.
Expected shape: a small retry budget buys back the exact construction
at moderate loss (per-message failure decays geometrically), while the
single-shot protocol degrades with p.

Rows come from the claim registry (the same parameters ``repro verify``
gates on); the assertions mirror ``repro.harness.checks.check_e22``.
"""

from __future__ import annotations

from repro.analysis.tables import render_table


def test_e22_lossy_protocol(benchmark, record_table, claim_rows):
    rows = benchmark.pedantic(lambda: claim_rows("e22"), iterations=1, rounds=1)
    record_table(
        "e22_lossy_protocol",
        render_table(rows, title="E22: ΘALG protocol under message loss — recall vs retransmission budget"),
    )
    by = {(r["loss_prob"], r["retries"]): r for r in rows}
    assert by[(0.0, 0)]["edge_recall"] == 1.0
    assert by[(0.2, 4)]["edge_recall"] >= 0.99
    # Single-shot protocol degrades monotonically with loss.
    assert by[(0.5, 0)]["edge_recall"] <= by[(0.2, 0)]["edge_recall"] <= 1.0
    # Retries cost transmissions.
    assert by[(0.5, 4)]["transmissions"] > by[(0.0, 0)]["transmissions"]
