"""E9 — Theorem 3.8 / Lemmas 3.6–3.7: the honeycomb algorithm.

Paper claim (fixed transmission strength 1, absolute guard distance
1+Δ, hexagons of side 3+2Δ): each hexagon's maximum-benefit contestant
transmits with p_t ≤ 1/6 and then succeeds with probability ≥ 1/2
(Lemma 3.7), making the honeycomb algorithm
``((1−ε)/(24·c_b), ·, 1+2/ε)``-competitive (Theorem 3.8).

The bench runs under- and over-loaded stream workloads per Δ: the
underloaded rows should deliver almost everything after the drain; all
rows must clear the Lemma 3.7 success floor.
"""

from __future__ import annotations

from repro.analysis.routing_experiments import e9_honeycomb
from repro.analysis.tables import render_table


def test_e9_honeycomb(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: e9_honeycomb(n=300, side=20.0, deltas=(0.25, 0.5, 1.0), duration=800, rng=0),
        iterations=1,
        rounds=1,
    )
    record_table(
        "e9_honeycomb",
        render_table(rows, title="E9: Theorem 3.8 — honeycomb algorithm at fixed transmission strength"),
    )
    for r in rows:
        assert r["above_floor"], r
    for r in rows:
        if r["regime"] == "underload":
            assert r["delivery_fraction"] >= 0.75, r
        else:
            assert r["delivered"] > 0, r
