"""The (T, γ)-balancing routing algorithm (§3.2).

Every node ``v`` keeps one buffer ``Q_{v,d}`` per destination ``d``;
``h_{v,d}`` is its *height* (packet count), capped at ``H``; destination
buffers are always empty (packets reaching them are absorbed).

Per time step, for every usable directed edge ``e = (v, w)`` with cost
``c(e)``:

1. find the destination ``d`` maximizing ``h_{v,d} − h_{w,d} − c(e)·γ``;
2. if that value exceeds the threshold ``T``, move one packet of
   destination ``d`` from ``Q_{v,d}`` to ``Q_{w,d}``.

Then absorb arrivals at their destinations and accept new injections,
deleting any injected packet whose buffer is already at height ``H``
(simple source admission control).

Theorem 3.1: with ``T ≥ B + 2(δ−1)`` and ``γ ≥ (T+B+δ)·L̄/C̄`` the
algorithm is ``(1−ε, 1 + 2(1+(T+δ)/B)·L̄/ε, 1 + 2/ε)``-competitive —
it delivers a (1−ε) fraction of what *any* schedule with buffer size B
and average cost C̄ can deliver, using buffers a factor ≈ O(L̄/ε)
larger and average cost a factor ≤ 1+2/ε larger.

Implementation notes
--------------------
* Decisions for all edges of a step use the heights *at the beginning
  of the step* (as in the paper's synchronous model); when several
  edges try to drain the same buffer, sends are additionally capped by
  the packets actually available, processed in edge order — this only
  removes sends the idealized model could not have performed either.
* The γ-term prices energy into the potential drop: a packet only
  crosses an expensive edge if the height differential pays for it.
* ``γ = 0`` recovers the cost-oblivious balancing of Awerbuch et al.,
  used as an ablation in experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics, trace
from repro.sim.packets import Transmission
from repro.sim.stats import RoutingStats
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["BalancingConfig", "BalancingRouter"]


@dataclass(frozen=True)
class BalancingConfig:
    """Parameters of the (T, γ)-balancing algorithm.

    Attributes
    ----------
    threshold:
        T — minimum potential drop required to move a packet.
    gamma:
        γ — price per unit of edge cost, in units of buffer height.
    max_height:
        H — buffer capacity per (node, destination) pair.
    """

    threshold: float
    gamma: float
    max_height: int

    def __post_init__(self) -> None:
        check_nonnegative("threshold", self.threshold)
        check_nonnegative("gamma", self.gamma)
        check_positive("max_height", self.max_height)


class BalancingRouter:
    """State and step logic of the (T, γ)-balancing algorithm.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    destinations:
        Node ids that appear as packet destinations.  Buffers are only
        materialized for these, so memory is ``n_nodes × len(destinations)``.
    config:
        The (T, γ, H) parameters.

    Notes
    -----
    The router is topology-agnostic: each call to :meth:`decide`
    receives the currently usable directed edges and their costs, which
    is exactly the interface the adversarial model of §3.1 prescribes
    (topology and costs may change arbitrarily between steps).
    """

    def __init__(
        self,
        n_nodes: int,
        destinations: "np.ndarray | list[int] | None",
        config: BalancingConfig,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        if destinations is None:
            destinations = np.arange(n_nodes)
        self.destinations = np.asarray(sorted(set(int(d) for d in destinations)), dtype=np.intp)
        if len(self.destinations) == 0:
            raise ValueError("at least one destination is required")
        if (self.destinations < 0).any() or (self.destinations >= n_nodes).any():
            raise ValueError("destination id out of range")
        self._dest_col = {int(d): k for k, d in enumerate(self.destinations)}
        self.config = config
        #: heights h[v, k] of buffer Q_{v, destinations[k]}
        self.heights = np.zeros((self.n_nodes, len(self.destinations)), dtype=np.int64)
        self.stats = RoutingStats()
        self._dest_rows = self.destinations  # alias for readability

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def height(self, node: int, dest: int) -> int:
        """Current height of ``Q_{node, dest}``."""
        return int(self.heights[node, self._dest_col[int(dest)]])

    def total_packets(self) -> int:
        """Packets currently buffered anywhere in the network."""
        return int(self.heights.sum())

    def max_height(self) -> int:
        """Largest buffer height currently present."""
        return int(self.heights.max()) if self.heights.size else 0

    # ------------------------------------------------------------------
    # Step phase 1: transmission decisions
    # ------------------------------------------------------------------
    def decide(
        self,
        directed_edges: np.ndarray,
        costs: np.ndarray,
    ) -> list[Transmission]:
        """Choose at most one packet per directed edge to move.

        Parameters
        ----------
        directed_edges:
            ``(k, 2)`` array of usable directed edges ``(v, w)``; both
            orientations of an undirected edge may appear (the model
            allows one packet per direction).
        costs:
            ``(k,)`` edge costs ``c(e)`` (energy for one transmission).

        Returns
        -------
        The chosen transmissions.  Heights are *not* modified — call
        :meth:`apply` with a success mask to commit the moves.
        """
        edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        if len(edges) != len(costs):
            raise ValueError("directed_edges and costs must have equal length")
        if len(edges) == 0:
            return []
        cfg = self.config
        h0 = self.heights  # beginning-of-step heights for decisions
        ncols = h0.shape[1]

        # Vectorized candidate selection: for all edges at once compute
        # the best destination column and its potential drop.
        diff = h0[edges[:, 0], :] - h0[edges[:, 1], :] - cfg.gamma * costs[:, None]
        best_col = np.argmax(diff, axis=1)
        best_val = diff[np.arange(len(edges)), best_col]
        candidates = np.nonzero(best_val > cfg.threshold)[0]
        if len(candidates) == 0:
            return []
        src = edges[candidates, 0]
        chosen_col = best_col[candidates]

        # A candidate's best column always has a packet at step start
        # (drop > threshold ≥ 0 forces h0[v, col] ≥ 1), so the chosen
        # columns stand as long as no buffer is over-demanded: each pick
        # then still finds its first-argmax column available.  One
        # grouped count per touched buffer detects the exception.
        buf = src * np.intp(ncols) + chosen_col
        uniq, cnt = np.unique(buf, return_counts=True)
        supply = h0[uniq // ncols, uniq % ncols]
        over = cnt > supply
        if over.any():
            # Rare path: some buffer has more takers than packets.  Redo
            # only the candidates of the affected sources with the exact
            # sequential semantics (edge order, per-buffer claims);
            # other sources are unaffected because availability only
            # couples candidates sharing a source.
            bad_sources = np.unique(uniq[over] // ncols)
            redo = np.nonzero(np.isin(src, bad_sources))[0]
            keep = np.ones(len(candidates), dtype=bool)
            avail: dict[int, np.ndarray] = {}
            for i in redo.tolist():
                k = int(candidates[i])
                v, w = int(edges[k, 0]), int(edges[k, 1])
                arow = avail.get(v)
                if arow is None:
                    arow = h0[v, :].copy()
                    avail[v] = arow
                row = h0[v, :] - h0[w, :] - cfg.gamma * costs[k]
                usable = arow > 0
                if not usable.any():
                    keep[i] = False
                    continue
                masked = np.where(usable, row, -np.inf)
                col = int(np.argmax(masked))
                if masked[col] <= cfg.threshold:
                    keep[i] = False
                    continue
                arow[col] -= 1
                chosen_col[i] = col
            candidates = candidates[keep]
            chosen_col = chosen_col[keep]

        dests = self.destinations[chosen_col]
        return [
            Transmission(src=v, dst=w, dest=d, cost=c)
            for (v, w), d, c in zip(
                edges[candidates].tolist(),
                dests.tolist(),
                costs[candidates].tolist(),
            )
        ]

    # ------------------------------------------------------------------
    # Step phase 2: commit moves, absorb, inject
    # ------------------------------------------------------------------
    def apply(
        self,
        transmissions: list[Transmission],
        success: "np.ndarray | None" = None,
    ) -> int:
        """Commit transmissions; returns the number of packets absorbed.

        Parameters
        ----------
        success:
            Optional boolean mask (e.g. from the interference model);
            failed attempts consume energy but do not move the packet
            (retransmission semantics of §3.3).
        """
        if success is None:
            success = np.ones(len(transmissions), dtype=bool)
        success = np.asarray(success, dtype=bool).reshape(-1)
        if len(success) != len(transmissions):
            raise ValueError("success mask length mismatch")
        k = len(transmissions)
        if k == 0:
            return 0
        src = np.fromiter((tx.src for tx in transmissions), dtype=np.intp, count=k)
        dst = np.fromiter((tx.dst for tx in transmissions), dtype=np.intp, count=k)
        dest = np.fromiter((tx.dest for tx in transmissions), dtype=np.intp, count=k)
        cost = np.fromiter((tx.cost for tx in transmissions), dtype=np.float64, count=k)
        col = np.searchsorted(self.destinations, dest)
        col[col == len(self.destinations)] = 0
        bad = self.destinations[col] != dest
        if bad.any():
            raise KeyError(f"{int(dest[np.nonzero(bad)[0][0]])} is not a registered destination")

        self.stats.record_attempts(cost, success)
        src_ok, dst_ok, col_ok = src[success], dst[success], col[success]
        # Invariant: no buffer sends more packets than it held at the
        # start of the step (decide() guarantees this by construction).
        buf, cnt = np.unique(src_ok * np.intp(self.heights.shape[1]) + col_ok, return_counts=True)
        b_row, b_col = buf // self.heights.shape[1], buf % self.heights.shape[1]
        short = cnt > self.heights[b_row, b_col]
        if short.any():
            v = int(b_row[np.nonzero(short)[0][0]])
            d = int(self.destinations[b_col[np.nonzero(short)[0][0]]])
            raise RuntimeError(
                f"balancing invariant violated: sending from empty buffer Q_({v},{d})"
            )
        np.subtract.at(self.heights, (src_ok, col_ok), 1)
        absorbed = dst_ok == dest[success]
        np.add.at(self.heights, (dst_ok[~absorbed], col_ok[~absorbed]), 1)
        delivered = int(np.count_nonzero(absorbed))
        if delivered:
            self.stats.record_delivery(delivered)
        return delivered

    def inject(self, node: int, dest: int, count: int = 1) -> int:
        """Offer ``count`` packets at ``node`` for ``dest``; returns accepted.

        Injections that would push the buffer above ``H`` are deleted
        (§3.2's admission control).  Injecting at the destination itself
        is rejected at the API level (the model never does this).
        """
        if node == dest:
            raise ValueError("cannot inject a packet at its own destination")
        col = self._dest_col.get(int(dest))
        if col is None:
            raise KeyError(f"{dest} is not a registered destination")
        space = self.config.max_height - int(self.heights[node, col])
        accepted = max(0, min(int(count), space))
        self.heights[node, col] += accepted
        self.stats.record_injection(int(count), accepted)
        return accepted

    def end_step(self, delivered_this_step: int) -> None:
        """Close the step for statistics purposes."""
        self.stats.end_step(self.max_height(), delivered_this_step)

    # ------------------------------------------------------------------
    def run_step(
        self,
        directed_edges: np.ndarray,
        costs: np.ndarray,
        injections: "list[tuple[int, int, int]] | None" = None,
        success_fn=None,
    ) -> int:
        """Convenience: one full step (decide → apply → inject).

        Parameters
        ----------
        injections:
            List of ``(node, dest, count)`` tuples offered this step.
        success_fn:
            Optional callable mapping the chosen transmissions to a
            boolean success mask (interference resolution).

        Returns
        -------
        Packets delivered this step.
        """
        reg = metrics.active()
        if reg is not None:
            fail0, drop0 = self.stats.interference_failures, self.stats.dropped
        with trace.span("balancing.decide"):
            txs = self.decide(directed_edges, costs)
        mask = None if success_fn is None else success_fn(txs)
        with trace.span("balancing.apply", attempts=len(txs)):
            delivered = self.apply(txs, mask)
        for node, dest, count in injections or []:
            self.inject(node, dest, count)
        self.end_step(delivered)
        if reg is not None:
            st = self.stats
            reg.counter("balancing.steps").inc()
            reg.counter("balancing.attempts").inc(len(txs))
            reg.counter("balancing.delivered").inc(delivered)
            reg.counter("balancing.interference_failures").inc(st.interference_failures - fail0)
            reg.counter("balancing.dropped").inc(st.dropped - drop0)
            reg.gauge("balancing.total_buffer").set(self.total_packets())
        return delivered
