"""The constructive scheduler of Theorem 2.8.

Theorem 2.8 states: if an arbitrary transmission schedule on G*
delivers a packet set W in t steps, then W is deliverable on the sparse
topology N in O(t·I + n²) steps.  The proof is constructive — replace
each G* hop by its θ-path (Lemma 2.9 bounds the per-step reuse of any N
edge by 6) and re-time the resulting sub-hops so that simultaneous
transmissions neither collide on an edge-direction nor interfere.

:func:`transform_schedules` implements that construction end to end:

1. every hop ``((u, v), t)`` of every input schedule expands into the
   θ-path ``u → … → v`` in N;
2. sub-hops are timed by a list scheduler that preserves per-packet
   ordering and, per time step, admits a transmission only if (a) its
   directed edge-direction is free, and (b) it does not interfere (per
   the guard-zone model) with any transmission already placed in that
   step;
3. the output is a set of :class:`~repro.sim.schedules.Schedule`
   objects on N, machine-validated: path-connected, strictly
   increasing times, conflict-free, and — checked explicitly by
   :func:`verify_interference_free` — pairwise non-interfering within
   every step.

The measured makespan inflation vs the input schedule is the quantity
Theorem 2.8 bounds by O(I); bench E5b reports it.
"""

from __future__ import annotations

import numpy as np

from repro.core.theta import ThetaTopology
from repro.core.theta_paths import theta_path
from repro.interference.model import InterferenceModel
from repro.sim.schedules import Schedule, schedules_conflict_free, validate_schedule

__all__ = ["transform_schedules", "verify_interference_free"]


def transform_schedules(
    topo: ThetaTopology,
    schedules: "list[Schedule]",
    *,
    delta: float = 0.5,
    max_time: int | None = None,
) -> list[Schedule]:
    """Re-route and re-time G* schedules onto the topology N.

    Parameters
    ----------
    topo:
        ΘALG output whose graph the new schedules use.
    schedules:
        Validated schedules whose hops are G* edges (any edges within
        ``topo.max_range``).
    delta:
        Guard-zone parameter for the interference-feasibility of each
        output step.
    max_time:
        Safety horizon; scheduling past it raises ``RuntimeError``
        (default: generous O(t·I + n²) style bound).

    Returns
    -------
    One schedule per input packet, delivered over N, jointly
    conflict-free and interference-free.
    """
    model = InterferenceModel(delta)
    pts = topo.points
    n = len(pts)
    if max_time is None:
        horizon = max((s.finish_time for s in schedules), default=0)
        max_time = 16 * (horizon + 1) * (_interference_guess(topo, delta) + 1) + 4 * n * n

    # Expand every packet's hop sequence into N sub-hops.
    cache: dict[tuple[int, int], list[int]] = {}
    expanded: list[list[tuple[int, int]]] = []
    for s in schedules:
        validate_schedule(s)
        subhops: list[tuple[int, int]] = []
        for (u, v), _t in s.hops:
            path = theta_path(topo, int(u), int(v), _cache=cache)
            subhops.extend(zip(path[:-1], path[1:]))
        expanded.append(subhops)

    # List scheduling: per time step, a set of placed transmissions;
    # occupancy by directed edge, plus interference check against the
    # step's already-placed set.
    placed_at: dict[int, list[tuple[int, int]]] = {}
    used_dir: set[tuple[int, int, int]] = set()  # (u, v, t)

    out: list[Schedule] = []
    # Round-robin over packets hop by hop keeps per-step contention fair
    # and mirrors the proof's pipelining; each packet's next sub-hop is
    # placed at the earliest feasible time after its previous one.
    progress = [0] * len(expanded)
    hops_out: list[list[tuple[tuple[int, int], int]]] = [[] for _ in expanded]
    last_time = [s.inject_time for s in schedules]
    remaining = sum(len(e) for e in expanded)
    while remaining:
        advanced = False
        for k, subhops in enumerate(expanded):
            i = progress[k]
            if i >= len(subhops):
                continue
            u, v = subhops[i]
            t = last_time[k] + 1
            while True:
                if t > max_time:
                    raise RuntimeError(
                        f"schedule transform exceeded the time horizon {max_time}"
                    )
                if (u, v, t) not in used_dir and _compatible(
                    model, pts, (u, v), placed_at.get(t, [])
                ):
                    break
                t += 1
            used_dir.add((u, v, t))
            placed_at.setdefault(t, []).append((u, v))
            hops_out[k].append(((u, v), t))
            last_time[k] = t
            progress[k] += 1
            remaining -= 1
            advanced = True
        if not advanced:  # pragma: no cover - defensive
            raise RuntimeError("schedule transform made no progress")

    for s, hops in zip(schedules, hops_out):
        out.append(Schedule(inject_time=s.inject_time, hops=tuple(hops)))
    for s in out:
        validate_schedule(s)
    if not schedules_conflict_free(out):  # pragma: no cover - construction guarantees
        raise AssertionError("transformed schedules conflict")
    return out


def _compatible(
    model: InterferenceModel,
    pts: np.ndarray,
    new_edge: tuple[int, int],
    placed: "list[tuple[int, int]]",
) -> bool:
    """Whether ``new_edge`` can join the step without interference.

    Both directions of one undirected pair share the bidirectional
    exchange, so they are mutually compatible (the conflict-free check
    still keeps the directions distinct)."""
    a = (min(new_edge), max(new_edge))
    for e in placed:
        b = (min(e), max(e))
        if a == b:
            continue
        if model.pair_interferes(pts, new_edge, e):
            return False
    return True


def _interference_guess(topo: ThetaTopology, delta: float) -> int:
    """Cheap upper estimate of the interference number for the horizon.

    Cached: the calling experiments recompute I for the same topology
    and Δ when reporting, so the CSR sets are shared via the substrate
    cache instead of rebuilt.
    """
    from repro.harness.cache import cached_interference_sets

    return max(1, cached_interference_sets(topo.graph, delta).max_degree())


def verify_interference_free(
    topo: ThetaTopology,
    schedules: "list[Schedule]",
    delta: float,
) -> None:
    """Raise ``AssertionError`` if any step of the schedule set contains
    two mutually interfering transmissions (distinct undirected pairs)."""
    model = InterferenceModel(delta)
    by_time: dict[int, list[tuple[int, int]]] = {}
    for s in schedules:
        for (u, v), t in s.hops:
            by_time.setdefault(t, []).append((u, v))
    for t, edges in by_time.items():
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                a = (min(edges[i]), max(edges[i]))
                b = (min(edges[j]), max(edges[j]))
                if a == b:
                    continue
                if model.pair_interferes(topo.points, edges[i], edges[j]):
                    raise AssertionError(
                        f"interference at step {t}: {edges[i]} vs {edges[j]}"
                    )
