"""The randomized symmetry-breaking MAC of §3.3 ((T, γ, I)-balancing).

When no MAC protocol is given, the paper makes medium access local and
randomized: every edge ``e`` of the topology independently *activates*
with probability ``1/(2·I_e)``, where ``I_e`` upper-bounds the size of
the interference set of every edge that ``e`` interferes with.  Active
edges are handed to the (T, γ)-balancing algorithm; if two interfering
active edges both transmit, **neither** succeeds (the packets stay put
and the energy is spent).

Lemma 3.2: an active edge interferes with another active edge with
probability at most 1/2, so in expectation at least half the attempted
transmissions go through — the source of the Θ(1/I) factor in
Theorem 3.3.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import GeometricGraph
from repro.interference.conflict import InterferenceSets, interference_sets
from repro.interference.model import InterferenceModel
from repro.obs import metrics, trace
from repro.sim.packets import Transmission
from repro.utils.rng import as_rng

__all__ = ["estimate_edge_interference", "RandomActivationMAC"]


def estimate_edge_interference(
    graph: "GeometricGraph | None",
    delta: float,
    *,
    mode: str = "own",
    sets: "InterferenceSets | None" = None,
) -> np.ndarray:
    """Per-edge activation bounds ``I_e`` (clamped below at 1).

    §3.3 asks each node to know, per incident edge e, an upper bound on
    the interference number of any edge e interferes with.  Two modes:

    * ``"own"`` (default) — ``I_e = |I(e)|``.  The paper notes that in
      the ideal 2-D Euclidean plane a bound on the edge's *own*
      interference number suffices; it activates low-interference edges
      far more often.
    * ``"neighborhood"`` — ``I_e = max(|I(e)|, max_{e' ∈ I(e)} |I(e')|)``,
      the conservative bound needed in spaces with obstacles.

    ``sets`` lets callers that already hold the interference sets (e.g.
    :class:`RandomActivationMAC`, or the incrementally maintained
    :class:`repro.dynamic.interference.DynamicInterference`) skip
    recomputing them; with ``sets`` given, ``graph`` may be ``None``.
    """
    if sets is None:
        if graph is None:
            raise ValueError("need either a graph or precomputed sets")
        sets = interference_sets(graph, delta)
    sizes = sets.degrees.astype(np.float64)
    if mode == "own":
        return np.maximum(sizes, 1.0)
    if mode != "neighborhood":
        raise ValueError(f"mode must be 'own' or 'neighborhood', got {mode!r}")
    return np.maximum(np.maximum(sizes, sets.neighborhood_max(sizes)), 1.0)


class RandomActivationMAC:
    """Edge activation with probability ``1/(2·I_e)`` + interference check.

    Parameters
    ----------
    graph:
        The topology whose edges contend for the medium.
    delta:
        Guard-zone parameter Δ of the interference model.
    rng:
        Seedable randomness source.
    interference_bounds:
        Optional precomputed ``I_e`` array; defaults to
        :func:`estimate_edge_interference`.

    Usage per step: :meth:`active_edges` → hand to the router's
    ``decide`` → :meth:`success_mask` on the chosen transmissions →
    router ``apply``.
    """

    def __init__(
        self,
        graph: GeometricGraph,
        delta: float,
        *,
        rng=None,
        interference_bounds: np.ndarray | None = None,
        bound_mode: str = "own",
        sets: "InterferenceSets | None" = None,
    ) -> None:
        self.graph = graph
        self.delta = float(delta)
        self.rng = as_rng(rng)
        # ``sets`` lets a caller holding a (possibly incrementally
        # maintained) conflict structure seed the MAC without a rebuild.
        self._sets: "InterferenceSets | None" = sets
        if interference_bounds is None:
            if self._sets is None:
                # Computed once and cached: interference_number reuses it.
                self._sets = interference_sets(graph, delta)
            interference_bounds = estimate_edge_interference(
                graph, delta, mode=bound_mode, sets=self._sets
            )
        bounds = np.asarray(interference_bounds, dtype=np.float64).reshape(-1)
        if len(bounds) != graph.n_edges:
            raise ValueError("interference_bounds length must equal the edge count")
        if (bounds < 1).any():
            raise ValueError("interference bounds must be >= 1")
        self.interference_bounds = bounds
        self.activation_probs = 1.0 / (2.0 * bounds)
        self._model = InterferenceModel(delta)

    @property
    def interference_number(self) -> int:
        """``I`` — the maximum interference-set size over all edges.

        The sets are computed at most once per instance (the constructor
        already builds them when it derives the activation bounds) and
        cached, rather than re-run on every property access.
        """
        if self._sets is None:
            self._sets = interference_sets(self.graph, self.delta)
        return self._sets.max_degree()

    def active_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Sample this step's active edges.

        Returns
        -------
        ``(directed_edges, costs)``: both orientations of every active
        undirected edge, with per-direction costs (one transmission per
        direction is allowed by the model).
        """
        m = self.graph.n_edges
        if m == 0:
            return np.empty((0, 2), dtype=np.intp), np.empty(0)
        with trace.span("mac.activate", edges=m) as sp:
            mask = self.rng.random(m) < self.activation_probs
            e = self.graph.edges[mask]
            c = self.graph.edge_costs[mask]
            directed = np.vstack([e, e[:, ::-1]]) if len(e) else np.empty((0, 2), dtype=np.intp)
            costs = np.concatenate([c, c]) if len(c) else np.empty(0)
            sp.set(activated=len(e))
        reg = metrics.active()
        if reg is not None:
            reg.counter("mac.activation_rounds").inc()
            reg.counter("mac.activated_edges").inc(len(e))
        return directed, costs

    def success_mask(self, transmissions: list[Transmission]) -> np.ndarray:
        """Resolve interference among the attempted transmissions.

        Both directions of one undirected edge belong to the same
        bidirectional exchange and never kill each other; distinct edges
        interfere per the guard-zone model.
        """
        k = len(transmissions)
        if k == 0:
            return np.ones(0, dtype=bool)
        with trace.span("mac.resolve", attempts=k) as sp:
            # Collapse to undirected edges for the pairwise check.
            und = np.asarray(
                [(min(t.src, t.dst), max(t.src, t.dst)) for t in transmissions], dtype=np.intp
            )
            uniq, inverse = np.unique(und, axis=0, return_inverse=True)
            mat = self._model.interference_matrix(self.graph.points, uniq)
            if mat.size:
                edge_ok = ~mat.any(axis=1)
            else:
                edge_ok = np.ones(len(uniq), dtype=bool)
            ok = edge_ok[inverse]
            sp.set(succeeded=int(np.count_nonzero(ok)))
        reg = metrics.active()
        if reg is not None:
            reg.counter("mac.resolved_attempts").inc(k)
            reg.counter("mac.collision_failures").inc(k - int(np.count_nonzero(ok)))
        return ok
