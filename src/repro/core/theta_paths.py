"""θ-path replacement (proof machinery of Theorem 2.8 / Lemma 2.9).

Theorem 2.8 shows that any schedule of non-interfering transmissions on
G* can be simulated on the sparse topology N with only O(I) slowdown.
The key construction replaces each G* edge ``(u, v)`` by a path in N,
computed recursively:

* if ``(u, v) ∈ N`` — the path is the edge itself;
* else if ``v`` is u's phase-1 (Yao) choice in ``S(u, v)`` — the edge
  was pruned by v's phase 2, so v admitted a strictly closer in-neighbor
  ``w`` in ``S(v, u)``; recurse on ``(u, w)`` and append edge
  ``(w, v) ∈ N``;
* else — let ``w`` be u's Yao choice in ``S(u, v)``; recurse on
  ``(u, w)`` and on ``(w, v)``.

For θ ≤ π/3 both recursions strictly decrease the Euclidean length of
the edge being replaced (the replaced pair always spans an angle ≤ θ at
a common witness with the shorter side no longer than the original), so
the recursion terminates; we additionally guard with an explicit
decreasing-length assertion so any violation surfaces as an error
rather than an infinite loop.

Lemma 2.9 states that within one time step (one set T of pairwise
non-interfering G* edges) every N edge appears in at most 6 of the
replacement paths; :func:`path_congestion` measures this.
"""

from __future__ import annotations

import numpy as np

from repro.core.theta import ThetaTopology

__all__ = ["theta_path", "replace_schedule_edges", "path_congestion"]


def theta_path(
    topo: ThetaTopology,
    u: int,
    v: int,
    *,
    _cache: dict[tuple[int, int], list[int]] | None = None,
) -> list[int]:
    """Node sequence of the θ-path replacing G* edge ``(u, v)``.

    Parameters
    ----------
    topo:
        Output of :func:`repro.core.theta.theta_algorithm`.
    u, v:
        Endpoints of an edge of G* (distance ≤ D).  The function does
        not verify interference properties, only the range.

    Returns
    -------
    List of node indices starting at ``u`` and ending at ``v``; every
    consecutive pair is an edge of ``topo.graph``.

    Raises
    ------
    ValueError
        If ``(u, v)`` is not a G* edge, or the recursion fails to make
        progress (which would contradict the θ ≤ π/3 analysis).
    """
    pts = topo.points
    duv = float(np.hypot(*(pts[u] - pts[v])))
    if duv > topo.max_range + 1e-9:
        raise ValueError(f"({u}, {v}) is not an edge of G*: |uv|={duv:.4g} > D={topo.max_range:.4g}")
    cache: dict[tuple[int, int], list[int]] = {} if _cache is None else _cache
    return _theta_path_rec(topo, int(u), int(v), duv, cache)


def _theta_path_rec(
    topo: ThetaTopology,
    u: int,
    v: int,
    duv: float,
    cache: dict[tuple[int, int], list[int]],
) -> list[int]:
    if u == v:
        return [u]
    key = (u, v)
    hit = cache.get(key)
    if hit is not None:
        return hit

    pts = topo.points
    graph = topo.graph
    if graph.has_edge(u, v):
        path = [u, v]
        cache[key] = path
        return path

    s_uv = topo.sector(u, v)
    yao_choice = topo.nearest_in_sector(u, s_uv)

    if yao_choice == v:
        # u -> v was a Yao edge pruned by v's phase 2: v admitted a
        # strictly closer w in the cone of v containing u.
        s_vu = topo.sector(v, u)
        w = topo.admitted_in_sector(v, s_vu)
        if w is None:
            raise ValueError(
                f"inconsistent topology: Yao edge ({u}, {v}) pruned but no "
                f"admitted in-neighbor at v={v} sector {s_vu}"
            )
        duw = float(np.hypot(*(pts[u] - pts[w])))
        if duw >= duv - 1e-12:
            raise ValueError(
                f"θ-path recursion failed to decrease length at ({u}, {v}): "
                f"|uw|={duw:.6g} >= |uv|={duv:.6g} (w={w}); is θ ≤ π/3?"
            )
        path = _theta_path_rec(topo, u, w, duw, cache) + [v]
    else:
        # v is not u's Yao choice in S(u, v): hop through that choice.
        w = yao_choice
        if w is None:
            raise ValueError(
                f"inconsistent topology: cone S({u},{v}) nonempty (contains {v}) "
                f"but no Yao choice recorded"
            )
        dwv = float(np.hypot(*(pts[w] - pts[v])))
        duw = float(np.hypot(*(pts[u] - pts[w])))
        if dwv >= duv - 1e-12:
            raise ValueError(
                f"θ-path recursion failed to decrease length at ({u}, {v}): "
                f"|wv|={dwv:.6g} >= |uv|={duv:.6g} (w={w}); is θ ≤ π/3?"
            )
        left = _theta_path_rec(topo, u, w, duw, cache)
        right = _theta_path_rec(topo, w, v, dwv, cache)
        path = left[:-1] + right

    cache[key] = path
    return path


def replace_schedule_edges(
    topo: ThetaTopology,
    edges: np.ndarray,
) -> list[list[int]]:
    """Replace each G* edge of one schedule step by its θ-path in N.

    Parameters
    ----------
    edges:
        ``(k, 2)`` array of G* edges active in the same time step
        (assumed pairwise non-interfering by the caller).

    Returns
    -------
    One node-path per input edge, each a valid path in ``topo.graph``.
    """
    cache: dict[tuple[int, int], list[int]] = {}
    return [theta_path(topo, int(a), int(b), _cache=cache) for a, b in np.asarray(edges)]


def path_congestion(topo: ThetaTopology, paths: list[list[int]]) -> dict[tuple[int, int], int]:
    """How many replacement paths use each N edge (Lemma 2.9's quantity).

    Returns a map from canonical N edge to its multiplicity across
    ``paths``.  Lemma 2.9 bounds the maximum value by 6 when the input
    edges are pairwise non-interfering.
    """
    counts: dict[tuple[int, int], int] = {}
    for path in paths:
        for a, b in zip(path[:-1], path[1:]):
            key = (a, b) if a < b else (b, a)
            counts[key] = counts.get(key, 0) + 1
    # Sanity: every counted pair must actually be an N edge.
    for a, b in counts:
        if not topo.graph.has_edge(a, b):
            raise ValueError(f"path uses non-edge ({a}, {b}) of N")
    return counts
