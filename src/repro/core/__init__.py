"""The paper's primary contributions.

* :mod:`repro.core.theta` — ΘALG, the two-phase local topology-control
  algorithm (§2.1): Yao phase + per-sector in-degree pruning, producing
  the constant-degree topology N with O(1) energy-stretch;
* :mod:`repro.core.theta_paths` — the θ-path replacement of Theorem
  2.8/Lemma 2.9 mapping any G* edge to a path in N;
* :mod:`repro.core.balancing` — the (T, γ)-balancing routing algorithm
  (§3.2) with edge costs;
* :mod:`repro.core.interference_mac` — the (T, γ, I)-balancing variant
  (§3.3): randomized edge activation with probability 1/(2·I_e);
* :mod:`repro.core.honeycomb` — the honeycomb algorithm for fixed
  transmission strength (§3.4);
* :mod:`repro.core.competitive` — (t, s, c)-competitiveness bookkeeping
  (§3.1) and parameter rules from Theorems 3.1/3.3.
"""

from repro.core.theta import ThetaTopology, theta_algorithm
from repro.core.theta_paths import theta_path, replace_schedule_edges, path_congestion
from repro.core.schedule_transform import transform_schedules, verify_interference_free
from repro.core.balancing import BalancingRouter, BalancingConfig
from repro.core.anycast import AnycastBalancingRouter
from repro.core.interference_mac import RandomActivationMAC, estimate_edge_interference
from repro.core.honeycomb import HoneycombRouter, HoneycombConfig
from repro.core.competitive import (
    CompetitiveReport,
    theorem31_parameters,
    theorem33_parameters,
)

__all__ = [
    "ThetaTopology",
    "theta_algorithm",
    "theta_path",
    "replace_schedule_edges",
    "path_congestion",
    "transform_schedules",
    "verify_interference_free",
    "BalancingRouter",
    "BalancingConfig",
    "AnycastBalancingRouter",
    "RandomActivationMAC",
    "estimate_edge_interference",
    "HoneycombRouter",
    "HoneycombConfig",
    "CompetitiveReport",
    "theorem31_parameters",
    "theorem33_parameters",
]
