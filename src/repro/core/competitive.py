"""(t, s, c)-competitiveness bookkeeping (§3.1) and parameter rules.

An online algorithm A is (t, s, c)-competitive when, for every input
sequence σ and every buffer size B and average cost C achievable by an
optimal schedule,

    A_{s·B, c·C}(σ) ≥ t · OPT_{B,C}(σ) − r

for some additive slack r independent of σ.  The experiments estimate
the three ratios directly from runs against *witnessed* adversaries
(whose certified schedule lower-bounds OPT):

* throughput ratio  t̂ = delivered(A) / delivered(witness),
* space ratio       ŝ = max buffer height(A) / B(witness),
* cost ratio        ĉ = avg cost(A) / avg cost(witness).

:func:`theorem31_parameters` / :func:`theorem33_parameters` compute the
(T, γ) settings the theorems prescribe from the witness's B, L̄, C̄.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import RoutingStats

__all__ = [
    "CompetitiveReport",
    "theorem31_parameters",
    "theorem33_parameters",
]


@dataclass(frozen=True)
class CompetitiveReport:
    """Measured competitive ratios of one run against a witness.

    Attributes mirror the (t, s, c) triple of §3.1, plus the raw
    quantities they were computed from.
    """

    throughput_ratio: float
    space_ratio: float
    cost_ratio: float
    delivered_online: int
    delivered_witness: int
    avg_cost_online: float
    avg_cost_witness: float
    max_height_online: int
    witness_buffer: int

    @classmethod
    def from_stats(
        cls,
        online: RoutingStats,
        *,
        witness_delivered: int,
        witness_avg_cost: float,
        witness_buffer: int,
    ) -> "CompetitiveReport":
        """Build a report from the online run's stats and witness facts."""
        t = online.delivered / witness_delivered if witness_delivered else 1.0
        s = online.max_buffer_height / witness_buffer if witness_buffer else float("inf")
        if witness_avg_cost > 0:
            c = online.average_cost / witness_avg_cost
        else:
            c = 1.0 if online.average_cost == 0 else float("inf")
        return cls(
            throughput_ratio=t,
            space_ratio=s,
            cost_ratio=c,
            delivered_online=online.delivered,
            delivered_witness=witness_delivered,
            avg_cost_online=online.average_cost,
            avg_cost_witness=witness_avg_cost,
            max_height_online=online.max_buffer_height,
            witness_buffer=witness_buffer,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "throughput_ratio": self.throughput_ratio,
            "space_ratio": self.space_ratio,
            "cost_ratio": self.cost_ratio,
            "delivered_online": float(self.delivered_online),
            "delivered_witness": float(self.delivered_witness),
            "avg_cost_online": self.avg_cost_online,
            "avg_cost_witness": self.avg_cost_witness,
            "max_height_online": float(self.max_height_online),
            "witness_buffer": float(self.witness_buffer),
        }


def theorem31_parameters(
    *,
    opt_buffer: int,
    avg_path_length: float,
    avg_cost: float,
    epsilon: float,
    delta_frequencies: int = 1,
) -> dict[str, float]:
    """Parameter settings prescribed by Theorem 3.1.

    Given the optimal schedule's buffer size B, average path length L̄,
    and allowed average cost C̄, and a target slack ε, returns::

        T      = B + 2(δ − 1)
        γ      = (T + B + δ) · L̄ / C̄
        H      = s·B  with  s = 1 + 2(1 + (T+δ)/B)·L̄/ε
        cost_factor = 1 + 2/ε   (the guaranteed c of the theorem)

    Parameters
    ----------
    delta_frequencies:
        δ — the maximum number of edges incident to one node usable
        concurrently (number of frequencies).
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if opt_buffer < 1:
        raise ValueError("opt_buffer must be >= 1")
    if avg_path_length < 1:
        raise ValueError("avg_path_length must be >= 1")
    if avg_cost <= 0:
        raise ValueError("avg_cost must be > 0")
    if delta_frequencies < 1:
        raise ValueError("delta_frequencies must be >= 1")
    B = float(opt_buffer)
    d = float(delta_frequencies)
    T = B + 2.0 * (d - 1.0)
    gamma = (T + B + d) * avg_path_length / avg_cost
    space_factor = 1.0 + 2.0 * (1.0 + (T + d) / B) * avg_path_length / epsilon
    return {
        "threshold": T,
        "gamma": gamma,
        "max_height": float(int(space_factor * B) + 1),
        "space_factor": space_factor,
        "cost_factor": 1.0 + 2.0 / epsilon,
        "target_fraction": 1.0 - epsilon,
    }


def theorem33_parameters(
    *,
    opt_buffer: int,
    avg_path_length: float,
    avg_cost: float,
    epsilon: float,
    interference_bound: int,
) -> dict[str, float]:
    """Parameter settings prescribed by Theorem 3.3 ((T, γ, I)-balancing).

    Here δ = 1 (single frequency) and the theorem requires ``T ≥ 2B+1``
    and ``γ ≥ (T+B)·L̄/C̄``; the guaranteed throughput fraction becomes
    ``(1−ε)/(8·I)`` where I bounds every edge's interference set size.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if interference_bound < 1:
        raise ValueError("interference_bound must be >= 1")
    B = float(opt_buffer)
    T = 2.0 * B + 1.0
    gamma = (T + B) * avg_path_length / avg_cost
    space_factor = 1.0 + 2.0 * (1.0 + T / B) * avg_path_length / epsilon
    return {
        "threshold": T,
        "gamma": gamma,
        "max_height": float(int(space_factor * B) + 1),
        "space_factor": space_factor,
        "cost_factor": 1.0 + 2.0 / epsilon,
        "target_fraction": (1.0 - epsilon) / (8.0 * interference_bound),
    }
