"""The honeycomb algorithm for fixed transmission strength (§3.4).

Setting: every node transmits at the same fixed power, reaching every
node within distance 1; a transmission from s to t succeeds iff (i)
``|st| ≤ 1`` and (ii) every node of every *other* simultaneous
sender-receiver pair is farther than ``1+Δ`` from both s and t
(pairs satisfying (ii) are *independent* — note the guard distance is
absolute here, unlike the relative guard zones of §2.4).

The plane is tiled by hexagons of side ``3+2Δ``; each sender-receiver
pair is assigned to the hexagon containing the sender.  Per step:

1. the *benefit* of a pair (s, t) is the maximum over destinations d of
   ``h_{s,d} − h_{t,d}``;
2. within each hexagon the maximum-benefit pair, if its benefit exceeds
   the threshold T, becomes the hexagon's *contestant*;
3. each contestant transmits independently with probability
   ``p_t ≤ 1/6``; by Lemma 3.7 each transmitting contestant then
   succeeds with probability ≥ 1/2;
4. successful contestants move one packet chosen by the (T, γ,
   3)-balancing rule (costs are uniform at fixed power, so the rule
   reduces to the plain height argmax).

Theorem 3.8: the combination is
``((1−ε)/(24·c_b), 1+(1+T/B)L̄/ε, 1+2/ε)``-competitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.geometry.hexgrid import HexGrid
from repro.geometry.primitives import as_points
from repro.sim.packets import Transmission
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_nonnegative

__all__ = ["HoneycombConfig", "HoneycombRouter"]


@dataclass(frozen=True)
class HoneycombConfig:
    """Parameters of the honeycomb algorithm.

    Attributes
    ----------
    delta:
        Guard distance parameter Δ (absolute, §3.4 semantics).
    threshold:
        T — minimum benefit for a pair to become a contestant.
    gamma:
        γ of the underlying balancing rule (costs are uniform, so this
        only shifts the threshold; kept for parameter fidelity).
    max_height:
        H — buffer capacity.
    p_transmit:
        p_t — per-contestant transmission probability, must be ≤ 1/6
        for Lemma 3.7's success guarantee.
    unit_cost:
        Energy charged per fixed-power transmission (default 1).
    """

    delta: float = 0.5
    threshold: float = 1.0
    gamma: float = 0.0
    max_height: int = 64
    p_transmit: float = 1.0 / 6.0
    unit_cost: float = 1.0

    def __post_init__(self) -> None:
        check_nonnegative("delta", self.delta)
        check_nonnegative("threshold", self.threshold)
        check_nonnegative("gamma", self.gamma)
        check_in_range("p_transmit", self.p_transmit, 0.0, 1.0 / 6.0, inclusive=(False, True))


class HoneycombRouter:
    """Contestant selection + balancing at fixed transmission strength.

    Parameters
    ----------
    points:
        Node positions; the usable pairs are all pairs at distance ≤ 1.
    destinations:
        Destination node ids (``None`` = all nodes).
    config:
        Algorithm parameters.
    rng:
        Seedable randomness for the p_t coin flips.
    """

    def __init__(
        self,
        points: np.ndarray,
        destinations=None,
        config: HoneycombConfig = HoneycombConfig(),
        *,
        rng=None,
    ) -> None:
        self.points = as_points(points)
        self.config = config
        self.rng = as_rng(rng)
        self.hexgrid = HexGrid.for_guard_zone(config.delta)
        n = len(self.points)
        self.router = BalancingRouter(
            n,
            destinations,
            BalancingConfig(
                threshold=config.threshold,
                gamma=config.gamma,
                max_height=config.max_height,
            ),
        )
        # All sender-receiver pairs: unit-disk edges, both orientations.
        tree = cKDTree(self.points)
        und = tree.query_pairs(1.0, output_type="ndarray")
        if und.size == 0:
            self.directed_pairs = np.empty((0, 2), dtype=np.intp)
        else:
            und = und.astype(np.intp)
            self.directed_pairs = np.vstack([und, und[:, ::-1]])
        # Hexagon (axial coords) of each pair's *sender*.
        if len(self.directed_pairs):
            cells = self.hexgrid.cell_of(self.points[self.directed_pairs[:, 0]])
            self._pair_cells = cells
        else:
            self._pair_cells = np.empty((0, 2), dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The underlying router's :class:`~repro.sim.stats.RoutingStats`."""
        return self.router.stats

    def benefits(self) -> np.ndarray:
        """Benefit of every directed pair: ``max_d (h_s,d − h_t,d)``."""
        if len(self.directed_pairs) == 0:
            return np.empty(0)
        h = self.router.heights
        diff = h[self.directed_pairs[:, 0], :] - h[self.directed_pairs[:, 1], :]
        return diff.max(axis=1).astype(np.float64)

    def select_contestants(self) -> np.ndarray:
        """Indices (into ``directed_pairs``) of this step's contestants.

        One pair per occupied hexagon: the maximum-benefit pair whose
        benefit exceeds T (ties broken by pair index).
        """
        if len(self.directed_pairs) == 0:
            return np.empty(0, dtype=np.intp)
        ben = self.benefits()
        eligible = np.nonzero(ben > self.config.threshold)[0]
        best: dict[tuple[int, int], int] = {}
        for k in eligible:
            cell = (int(self._pair_cells[k, 0]), int(self._pair_cells[k, 1]))
            cur = best.get(cell)
            if cur is None or ben[k] > ben[cur]:
                best[cell] = int(k)
        return np.asarray(sorted(best.values()), dtype=np.intp)

    def independent_success_mask(self, pairs: np.ndarray) -> np.ndarray:
        """§3.4 success: pair i succeeds iff every node of every other
        transmitting pair is farther than ``1+Δ`` from both its endpoints."""
        k = len(pairs)
        if k == 0:
            return np.ones(0, dtype=bool)
        s = self.points[pairs[:, 0]]
        t = self.points[pairs[:, 1]]
        guard = 1.0 + self.config.delta
        ok = np.ones(k, dtype=bool)
        # Pairwise min distance between {s_i, t_i} and {s_j, t_j}.
        for i in range(k):
            for j in range(k):
                if i == j:
                    continue
                dmin = min(
                    float(np.hypot(*(s[i] - s[j]))),
                    float(np.hypot(*(s[i] - t[j]))),
                    float(np.hypot(*(t[i] - s[j]))),
                    float(np.hypot(*(t[i] - t[j]))),
                )
                if dmin <= guard:
                    ok[i] = False
                    break
        return ok

    # ------------------------------------------------------------------
    def step(self, injections: "list[tuple[int, int, int]] | None" = None) -> int:
        """Run one synchronous step; returns packets delivered.

        contestant selection → p_t coin flips → balancing decision on
        the transmitting pairs → interference resolution → commit →
        injections.
        """
        contestants = self.select_contestants()
        if len(contestants):
            coins = self.rng.random(len(contestants)) < self.config.p_transmit
            chosen = contestants[coins]
        else:
            chosen = contestants
        txs: list[Transmission] = []
        if len(chosen):
            edges = self.directed_pairs[chosen]
            costs = np.full(len(edges), self.config.unit_cost)
            txs = self.router.decide(edges, costs)
        if txs:
            tx_pairs = np.asarray([(t.src, t.dst) for t in txs], dtype=np.intp)
            mask = self.independent_success_mask(tx_pairs)
        else:
            mask = np.ones(0, dtype=bool)
        delivered = self.router.apply(txs, mask)
        for node, dest, count in injections or []:
            self.router.inject(node, dest, count)
        self.router.end_step(delivered)
        return delivered
