"""ΘALG — the two-phase local topology-control algorithm (§2.1).

Phase 1 (Yao step)
    Each node ``u`` partitions directions into cones of angle ≤ θ and
    computes ``N(u)``: the nearest node in each cone, among nodes within
    transmission range D.  The union of the directed choices is the Yao
    graph N₁ = (V, E₁) — a spanner, but with worst-case Ω(n) in-degree.

Phase 2 (in-degree pruning)
    Each node ``x`` admits, *per cone of x*, only the shortest incoming
    Yao edge: among all ``w`` with ``x ∈ N(w)`` lying in a given cone of
    ``x``, only the nearest ``w`` keeps its edge.  An undirected edge
    ``{u, v}`` belongs to the output N iff at least one of its two
    directed Yao choices survives the receiver's pruning.

Lemma 2.1: N is connected (when G* is) and every node has degree at
most ``2·(2π/θ) = 4π/θ`` — at most one surviving outgoing choice and
one admitted incoming edge per cone.  Theorem 2.2: N has O(1)
energy-stretch for *any* node distribution.

The implementation mirrors the message-level description in §2.1: the
per-node computations only use positions of nodes within range
(Position messages), the Yao choices of neighbors (Neighborhood
messages), and pairwise confirmations (Connection messages).  The
:mod:`repro.localsim` package runs the actual 3-round protocol and
asserts it reproduces this centralized construction edge-for-edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.graphs.base import GeometricGraph
from repro.utils.arrays import run_starts
from repro.utils.validation import check_positive

__all__ = ["ThetaTopology", "theta_algorithm"]


@dataclass(frozen=True)
class ThetaTopology:
    """The full output of ΘALG, including phase-1 structure.

    Besides the final topology :attr:`graph` (the paper's N), this
    records the directed phase-1 choices and phase-2 admissions, which
    the θ-path replacement of Theorem 2.8 needs.

    Attributes
    ----------
    points:
        Node positions.
    theta, offset:
        Cone angle and anchor of the sector partition.
    max_range:
        Transmission range D.
    kappa:
        Path-loss exponent of the edge costs.
    yao_nearest:
        ``(u, sector) → v``: u's nearest in-range node per cone
        (phase 1; ``N(u)`` is the set of values for fixed u).
    admitted:
        ``(x, sector) → w``: the single incoming Yao edge node x admits
        in each of its cones (phase 2).
    graph:
        The final undirected topology N.
    yao_graph:
        The undirected phase-1 graph N₁ (for ablation E2b).
    """

    points: np.ndarray
    theta: float
    max_range: float
    kappa: float
    offset: float
    yao_nearest: dict[tuple[int, int], int]
    admitted: dict[tuple[int, int], int]
    graph: GeometricGraph
    yao_graph: GeometricGraph

    @cached_property
    def partition(self) -> SectorPartition:
        """The sector partition shared by all nodes."""
        return SectorPartition(self.theta, self.offset)

    def sector(self, u: int, v: int) -> int:
        """``S(u, v)``: index of u's cone containing node v."""
        du = self.points[v] - self.points[u]
        ang = np.mod(np.arctan2(du[1], du[0]), TWO_PI)
        return int(self.partition.index_of_angle(ang))

    def nearest_in_sector(self, u: int, sector: int) -> int | None:
        """u's phase-1 choice in ``sector`` (None if the cone is empty)."""
        return self.yao_nearest.get((u, sector))

    def admitted_in_sector(self, x: int, sector: int) -> int | None:
        """The in-neighbor x admitted in ``sector`` (None if none)."""
        return self.admitted.get((x, sector))

    def in_neighbor_set(self, u: int) -> set[int]:
        """``N(u)`` of the paper: nodes u points to after phase 1."""
        return {v for (uu, _), v in self.yao_nearest.items() if uu == u}

    def edge_set(self) -> set[tuple[int, int]]:
        """The topology N as canonical ``(lo, hi)`` pairs.

        The comparison form used by the incremental maintainer's
        equivalence backstop (:mod:`repro.dynamic.incremental`) and the
        kernel-equivalence tests.
        """
        return {(int(a), int(b)) if a < b else (int(b), int(a)) for a, b in self.graph.edges}


def theta_algorithm(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    kappa: float = 2.0,
    offset: float = 0.0,
) -> ThetaTopology:
    """Run ΘALG and return the resulting :class:`ThetaTopology`.

    Parameters
    ----------
    points:
        ``(n, 2)`` node positions (pairwise-distinct).
    theta:
        Cone angle, must lie in ``(0, π/3]`` (Lemma 2.1's hypothesis).
    max_range:
        Maximum transmission range D.
    kappa:
        Path-loss exponent κ of the energy model.
    offset:
        Anchor direction of cone 0 (ablation knob; the paper uses 0).

    Notes
    -----
    Distance ties are broken by node index, realizing the paper's
    unique-distances assumption deterministically.
    """
    from repro.graphs.yao import yao_out_edges

    pts = as_points(points)
    check_positive("max_range", max_range)
    part = SectorPartition(theta, offset)

    directed = yao_out_edges(pts, theta, max_range, offset=offset)

    # Phase-1 bookkeeping: (u, sector-of-u-containing-v) -> v, built in
    # one shot from the directed choices (one sector per (u, v) row).
    yao_nearest: dict[tuple[int, int], int] = {}
    kept_edges: np.ndarray = np.empty((0, 2), dtype=np.intp)
    if len(directed):
        src, dst = directed[:, 0], directed[:, 1]
        d = pts[dst] - pts[src]
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec = np.atleast_1d(part.index_of_angle(ang))
        yao_nearest = dict(
            zip(zip(src.tolist(), sec.tolist()), dst.tolist())
        )

    # Phase 2: for each receiver x, group incoming Yao edges w -> x by
    # the cone of x containing w; admit only the nearest w per cone.
    # Lexsort by (receiver, receiver-sector, distance, source-id); the
    # first row of each (receiver, sector) run is the admitted edge.
    admitted: dict[tuple[int, int], int] = {}
    if len(directed):
        src, dst = directed[:, 0], directed[:, 1]
        d = pts[src] - pts[dst]  # direction x -> w as seen from receiver x=dst
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec_in = np.atleast_1d(part.index_of_angle(ang))
        dist = np.hypot(d[:, 0], d[:, 1])
        order = np.lexsort((src, dist, sec_in, dst))
        sel = order[run_starts(dst[order], sec_in[order])]
        admitted = dict(
            zip(zip(dst[sel].tolist(), sec_in[sel].tolist()), src[sel].tolist())
        )
        kept_edges = np.column_stack([src[sel], dst[sel]])
    graph = GeometricGraph(pts, kept_edges, kappa=kappa, name=f"ThetaALG(θ={theta:.4g})")
    n1 = GeometricGraph(pts, directed, kappa=kappa, name=f"Yao(θ={theta:.4g})")

    return ThetaTopology(
        points=graph.points,
        theta=float(theta),
        max_range=float(max_range),
        kappa=float(kappa),
        offset=float(offset),
        yao_nearest=yao_nearest,
        admitted=admitted,
        graph=graph,
        yao_graph=n1,
    )
