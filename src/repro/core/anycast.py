"""Anycast balancing (extension; §1.2 lineage).

The paper generalizes Awerbuch-Brinkmann-Scheideler's *anycast*
balancing results to edge costs: "[10] extended these results to
arbitrary anycasting situations and showed that simple balancing
strategies achieve a throughput that can be brought arbitrarily close
to a best possible throughput.  Our work generalizes the results of
[10] to incorporate edge costs."  This module closes the loop by
implementing the anycast variant *with* the cost-aware rule, so the
library covers both directions of that generalization.

Model: a packet is addressed to a destination *group* g ⊆ V and is
absorbed upon reaching any member.  Buffers are kept per (node, group):
``h_{v,g}`` — with ``h_{m,g} = 0`` pinned for every member m of g
(members absorb instantly, the anycast analogue of the destination
buffer).  The step rule is unchanged: move a packet across (v, w) for
the group maximizing ``h_{v,g} − h_{w,g} − γ·c(e)`` when that exceeds
T.  The gradient now naturally points toward the *nearest* member.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancing import BalancingConfig
from repro.sim.packets import Transmission
from repro.sim.stats import RoutingStats

__all__ = ["AnycastBalancingRouter"]


class AnycastBalancingRouter:
    """(T, γ)-balancing with destination *groups*.

    Parameters
    ----------
    n_nodes:
        Network size.
    groups:
        List of destination groups (iterables of node ids).  Group k is
        addressed by its index.
    config:
        The usual (T, γ, H) parameters.
    """

    def __init__(
        self,
        n_nodes: int,
        groups: "list[list[int] | set[int] | tuple[int, ...]]",
        config: BalancingConfig,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not groups:
            raise ValueError("at least one destination group is required")
        self.n_nodes = int(n_nodes)
        self.groups: list[frozenset[int]] = []
        for g in groups:
            members = frozenset(int(m) for m in g)
            if not members:
                raise ValueError("destination groups must be non-empty")
            if any(m < 0 or m >= n_nodes for m in members):
                raise ValueError("group member out of range")
            self.groups.append(members)
        self.config = config
        self.heights = np.zeros((self.n_nodes, len(self.groups)), dtype=np.int64)
        #: boolean membership matrix: member[v, k] ⇔ v ∈ groups[k]
        self.member = np.zeros((self.n_nodes, len(self.groups)), dtype=bool)
        for k, g in enumerate(self.groups):
            for m in g:
                self.member[m, k] = True
        self.stats = RoutingStats()

    # ------------------------------------------------------------------
    def height(self, node: int, group: int) -> int:
        return int(self.heights[node, group])

    def total_packets(self) -> int:
        return int(self.heights.sum())

    def max_height(self) -> int:
        return int(self.heights.max()) if self.heights.size else 0

    # ------------------------------------------------------------------
    def inject(self, node: int, group: int, count: int = 1) -> int:
        """Offer ``count`` packets for group ``group`` at ``node``."""
        if not 0 <= group < len(self.groups):
            raise KeyError(f"unknown group index {group}")
        if self.member[node, group]:
            raise ValueError("cannot inject at a member of the destination group")
        space = self.config.max_height - int(self.heights[node, group])
        accepted = max(0, min(int(count), space))
        self.heights[node, group] += accepted
        self.stats.record_injection(int(count), accepted)
        return accepted

    def decide(self, directed_edges: np.ndarray, costs: np.ndarray) -> list[Transmission]:
        """Per usable directed edge, pick the best group (if above T).

        Returned :class:`Transmission` records carry the *group index*
        in their ``dest`` field.
        """
        edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        if len(edges) != len(costs):
            raise ValueError("directed_edges and costs must have equal length")
        if len(edges) == 0:
            return []
        cfg = self.config
        h0 = self.heights
        avail = h0.copy()
        out: list[Transmission] = []
        diff = h0[edges[:, 0], :] - h0[edges[:, 1], :] - cfg.gamma * costs[:, None]
        best_val = diff.max(axis=1)
        for k in np.nonzero(best_val > cfg.threshold)[0]:
            v, w = int(edges[k, 0]), int(edges[k, 1])
            row = h0[v, :] - h0[w, :] - cfg.gamma * costs[k]
            usable = avail[v, :] > 0
            if not usable.any():
                continue
            masked = np.where(usable, row, -np.inf)
            g = int(np.argmax(masked))
            if masked[g] <= cfg.threshold:
                continue
            avail[v, g] -= 1
            out.append(Transmission(src=v, dst=w, dest=g, cost=float(costs[k])))
        return out

    def apply(self, transmissions: list[Transmission], success=None) -> int:
        """Commit moves; a packet reaching any group member is absorbed."""
        if success is None:
            success = np.ones(len(transmissions), dtype=bool)
        success = np.asarray(success, dtype=bool).reshape(-1)
        if len(success) != len(transmissions):
            raise ValueError("success mask length mismatch")
        delivered = 0
        for tx, ok in zip(transmissions, success):
            self.stats.record_attempt(tx.cost, bool(ok))
            if not ok:
                continue
            g = tx.dest
            if self.heights[tx.src, g] <= 0:
                raise RuntimeError("anycast invariant violated: empty buffer send")
            self.heights[tx.src, g] -= 1
            if self.member[tx.dst, g]:
                delivered += 1
                self.stats.record_delivery()
            else:
                self.heights[tx.dst, g] += 1
        return delivered

    def run_step(self, directed_edges, costs, injections=None, success_fn=None) -> int:
        """One synchronous step (mirrors :class:`BalancingRouter`)."""
        txs = self.decide(directed_edges, costs)
        mask = None if success_fn is None else success_fn(txs)
        delivered = self.apply(txs, mask)
        for node, group, count in injections or []:
            self.inject(node, group, count)
        self.stats.end_step(self.max_height(), delivered)
        return delivered
