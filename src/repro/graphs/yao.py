"""The Yao graph (θ-graph) — phase 1 of ΘALG.

Every node partitions directions into cones of angle θ and connects to
its nearest neighbor (within transmission range) in each cone.  The
paper calls the resulting undirected graph N₁; it is a spanner with
O(1) energy-stretch but its *in*-degree can be Ω(n) (see
:func:`repro.geometry.pointsets.star_points`).

:func:`yao_out_edges` returns the *directed* choices ``u → v`` (v is
u's nearest in the cone of u containing v) — ΘALG's phase 2 consumes
exactly this structure, so the two phases share one kernel.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.utils.validation import check_positive

__all__ = ["yao_out_edges", "yao_graph"]


def yao_out_edges(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    offset: float = 0.0,
) -> np.ndarray:
    """Directed Yao edges ``u → v``: v nearest to u in each cone of u.

    Ties in distance are broken by node index (lower index wins), which
    realizes the paper's "unique pairwise distances" assumption for
    degenerate inputs such as exact lattices.

    Returns
    -------
    ``(m, 2)`` intp array of directed edges (source, target).
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    part = SectorPartition(theta, offset)
    n = len(pts)
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    index = GridIndex(pts, cell=max_range)
    out: list[tuple[int, int]] = []
    for u in range(n):
        cand = index.query_radius(pts[u], max_range, exclude=u)
        if len(cand) == 0:
            continue
        d = pts[cand] - pts[u]
        dist = np.hypot(d[:, 0], d[:, 1])
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec = part.index_of_angle(ang)
        # Nearest candidate per sector: lexsort by (sector, dist, node id)
        # and keep the first row of each sector run.  Including the node
        # id in the key makes tie-breaking deterministic.
        order = np.lexsort((cand, dist, sec))
        sec_sorted = sec[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = sec_sorted[1:] != sec_sorted[:-1]
        for k in order[first]:
            out.append((u, int(cand[k])))
    if not out:
        return np.empty((0, 2), dtype=np.intp)
    return np.asarray(out, dtype=np.intp)


def yao_graph(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    kappa: float = 2.0,
    offset: float = 0.0,
    name: str = "Yao",
) -> GeometricGraph:
    """The undirected Yao graph N₁ (union of both edge directions)."""
    directed = yao_out_edges(points, theta, max_range, offset=offset)
    return GeometricGraph(points, directed, kappa=kappa, name=name)
