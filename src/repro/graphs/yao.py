"""The Yao graph (θ-graph) — phase 1 of ΘALG.

Every node partitions directions into cones of angle θ and connects to
its nearest neighbor (within transmission range) in each cone.  The
paper calls the resulting undirected graph N₁; it is a spanner with
O(1) energy-stretch but its *in*-degree can be Ω(n) (see
:func:`repro.geometry.pointsets.star_points`).

:func:`yao_out_edges` returns the *directed* choices ``u → v`` (v is
u's nearest in the cone of u containing v) — ΘALG's phase 2 consumes
exactly this structure, so the two phases share one kernel.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.utils.arrays import run_starts
from repro.utils.validation import check_positive

__all__ = ["yao_out_edges", "yao_graph"]


def yao_out_edges(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    offset: float = 0.0,
) -> np.ndarray:
    """Directed Yao edges ``u → v``: v nearest to u in each cone of u.

    Ties in distance are broken by node index (lower index wins), which
    realizes the paper's "unique pairwise distances" assumption for
    degenerate inputs such as exact lattices.

    All in-range candidate pairs come from one bulk
    :meth:`GridIndex.all_pairs_within` call; one global lexsort by
    (source, sector, distance, target id) then picks the nearest
    candidate per (source, sector) run — no per-node Python loop.

    Returns
    -------
    ``(m, 2)`` intp array of directed edges (source, target), sorted by
    (source, sector).
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    part = SectorPartition(theta, offset)
    n = len(pts)
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    pairs = GridIndex(pts, cell=max_range).all_pairs_within(max_range)
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.intp)
    # Mirror to directed candidates: every in-range pair seen from both ends.
    src = np.concatenate([pairs[:, 0], pairs[:, 1]])
    dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
    d = pts[dst] - pts[src]
    dist = np.hypot(d[:, 0], d[:, 1])
    ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
    sec = np.atleast_1d(part.index_of_angle(ang))
    order = np.lexsort((dst, dist, sec, src))
    first = run_starts(src[order], sec[order])
    sel = order[first]
    return np.column_stack([src[sel], dst[sel]])


def yao_graph(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    kappa: float = 2.0,
    offset: float = 0.0,
    name: str = "Yao",
) -> GeometricGraph:
    """The undirected Yao graph N₁ (union of both edge directions)."""
    directed = yao_out_edges(points, theta, max_range, offset=offset)
    return GeometricGraph(points, directed, kappa=kappa, name=name)
