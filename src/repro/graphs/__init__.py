"""Geometric graphs: the transmission graph G*, the Yao graph, baselines.

* :mod:`repro.graphs.base` — the :class:`GeometricGraph` container shared
  by every topology in the library (positions + undirected edge list +
  ``|uv|^κ`` edge costs, with cached CSR adjacency);
* :mod:`repro.graphs.transmission` — G*, the maximum-range disk graph of
  §2's model;
* :mod:`repro.graphs.yao` — the Yao/θ-graph (phase 1 of ΘALG, the graph
  the paper calls N₁);
* :mod:`repro.graphs.baselines` — Gabriel, relative-neighborhood,
  restricted-Delaunay, kNN and Euclidean-MST topologies from the
  related-work comparison (§1.2);
* :mod:`repro.graphs.metrics` — degrees, connectivity, energy- and
  distance-stretch, spanner checks.
"""

from repro.graphs.base import GeometricGraph
from repro.graphs.transmission import transmission_graph, max_range_for_connectivity
from repro.graphs.yao import yao_graph, yao_out_edges
from repro.graphs.baselines import (
    gabriel_graph,
    relative_neighborhood_graph,
    restricted_delaunay_graph,
    knn_graph,
    euclidean_mst,
)
from repro.graphs.sparsify import greedy_spanner, global_yao_sparsification
from repro.graphs.metrics import (
    degrees,
    max_degree,
    is_connected,
    connected_components,
    shortest_path_costs,
    energy_stretch,
    distance_stretch,
    stretch_summary,
    StretchResult,
)

__all__ = [
    "GeometricGraph",
    "transmission_graph",
    "max_range_for_connectivity",
    "yao_graph",
    "yao_out_edges",
    "gabriel_graph",
    "relative_neighborhood_graph",
    "restricted_delaunay_graph",
    "knn_graph",
    "euclidean_mst",
    "greedy_spanner",
    "global_yao_sparsification",
    "degrees",
    "max_degree",
    "is_connected",
    "connected_components",
    "shortest_path_costs",
    "energy_stretch",
    "distance_stretch",
    "stretch_summary",
    "StretchResult",
]
