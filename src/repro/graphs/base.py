"""The :class:`GeometricGraph` container.

Every topology in the library — the transmission graph G*, the Yao graph
N₁, the ΘALG output N, and the proximity-graph baselines — is a set of
2-D node positions plus an undirected edge list.  Edge costs follow the
paper's energy model: transmitting over edge ``(u, v)`` costs
``|uv|^κ`` with path-loss exponent ``κ ≥ 2`` (§2.2).

The container is immutable after construction; derived quantities
(lengths, costs, CSR adjacency, neighbor lists) are computed lazily and
cached, which keeps construction cheap for the thousands of graphs the
experiment sweeps create.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.geometry.primitives import as_points
from repro.utils.validation import check_in_range

__all__ = ["GeometricGraph", "canonical_edges"]


def canonical_edges(edges: "np.ndarray | Iterable[tuple[int, int]]", n: int) -> np.ndarray:
    """Normalize an edge list: intp dtype, ``i < j``, sorted, deduplicated.

    Self-loops are rejected (a node never transmits to itself in the
    model); indices must lie in ``[0, n)``.
    """
    e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.intp)
    if e.size == 0:
        return np.empty((0, 2), dtype=np.intp)
    if e.ndim != 2 or e.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {e.shape}")
    if (e < 0).any() or (e >= n).any():
        raise ValueError("edge endpoint out of range")
    if (e[:, 0] == e[:, 1]).any():
        raise ValueError("self-loops are not allowed")
    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])
    e = np.column_stack([lo, hi])
    e = np.unique(e, axis=0)
    return e


class GeometricGraph:
    """An undirected geometric graph with ``|uv|^κ`` edge costs.

    Parameters
    ----------
    points:
        ``(n, 2)`` node positions.
    edges:
        ``(m, 2)`` integer edge list (any orientation/order; normalized
        internally).
    kappa:
        Path-loss exponent κ ∈ [2, 4] of the energy model.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        points: np.ndarray,
        edges: "np.ndarray | Iterable[tuple[int, int]]",
        *,
        kappa: float = 2.0,
        name: str = "",
    ) -> None:
        self._points = as_points(points).copy()
        self._points.flags.writeable = False
        self._edges = canonical_edges(edges, len(self._points))
        self._edges.flags.writeable = False
        self.kappa = check_in_range("kappa", kappa, 2.0, 4.0)
        self.name = name

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """``(n, 2)`` node positions (read-only)."""
        return self._points

    @property
    def edges(self) -> np.ndarray:
        """``(m, 2)`` canonical edge list (read-only, ``i < j``, sorted)."""
        return self._edges

    @property
    def n_nodes(self) -> int:
        return len(self._points)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<GeometricGraph{label} n={self.n_nodes} m={self.n_edges} "
            f"kappa={self.kappa:g}>"
        )

    # ------------------------------------------------------------------
    # Cached derived data
    # ------------------------------------------------------------------
    @cached_property
    def edge_lengths(self) -> np.ndarray:
        """Euclidean length of each edge, aligned with :attr:`edges`."""
        if self.n_edges == 0:
            return np.empty(0)
        d = self._points[self._edges[:, 0]] - self._points[self._edges[:, 1]]
        out = np.hypot(d[:, 0], d[:, 1])
        out.flags.writeable = False
        return out

    @cached_property
    def edge_costs(self) -> np.ndarray:
        """Energy cost ``|uv|^κ`` of each edge, aligned with :attr:`edges`."""
        out = self.edge_lengths**self.kappa
        out.flags.writeable = False
        return out

    @cached_property
    def edge_index(self) -> dict[tuple[int, int], int]:
        """Map canonical ``(i, j)`` (i<j) to position in :attr:`edges`."""
        return {(int(i), int(j)): k for k, (i, j) in enumerate(self._edges)}

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if u > v:
            u, v = v, u
        return (u, v) in self.edge_index

    def edge_id(self, u: int, v: int) -> int:
        """Index of edge ``{u, v}`` in :attr:`edges`; ``KeyError`` if absent."""
        if u > v:
            u, v = v, u
        return self.edge_index[(u, v)]

    def cost(self, u: int, v: int) -> float:
        """Energy cost of edge ``{u, v}``."""
        return float(self.edge_costs[self.edge_id(u, v)])

    def length(self, u: int, v: int) -> float:
        """Euclidean length of edge ``{u, v}``."""
        return float(self.edge_lengths[self.edge_id(u, v)])

    @cached_property
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric CSR adjacency with edge *lengths* as weights."""
        return self._weighted_adjacency(self.edge_lengths)

    @cached_property
    def cost_adjacency(self) -> sp.csr_matrix:
        """Symmetric CSR adjacency with edge *costs* ``|uv|^κ`` as weights."""
        return self._weighted_adjacency(self.edge_costs)

    def _weighted_adjacency(self, weights: np.ndarray) -> sp.csr_matrix:
        n = self.n_nodes
        if self.n_edges == 0:
            return sp.csr_matrix((n, n))
        i = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
        j = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
        w = np.concatenate([weights, weights])
        return sp.csr_matrix((w, (i, j)), shape=(n, n))

    @cached_property
    def neighbor_lists(self) -> list[np.ndarray]:
        """Per-node sorted neighbor index arrays."""
        n = self.n_nodes
        buckets: list[list[int]] = [[] for _ in range(n)]
        for i, j in self._edges:
            buckets[i].append(int(j))
            buckets[j].append(int(i))
        return [np.asarray(sorted(b), dtype=np.intp) for b in buckets]

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor indices of node ``u``."""
        return self.neighbor_lists[u]

    @cached_property
    def total_cost(self) -> float:
        """Sum of all edge costs (the topology's total 'weight')."""
        return float(self.edge_costs.sum())

    # ------------------------------------------------------------------
    # Conversions and derivations
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as :class:`networkx.Graph` with ``length``/``cost`` attrs."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(
            (int(i), {"pos": (float(x), float(y))})
            for i, (x, y) in enumerate(self._points)
        )
        g.add_edges_from(
            (int(i), int(j), {"length": float(length), "cost": float(c)})
            for (i, j), length, c in zip(self._edges, self.edge_lengths, self.edge_costs)
        )
        return g

    def subgraph_with_edges(self, edges, *, name: str = "") -> "GeometricGraph":
        """Same nodes, different edge set (used by topology-control output)."""
        return GeometricGraph(self._points, edges, kappa=self.kappa, name=name or self.name)

    def with_kappa(self, kappa: float) -> "GeometricGraph":
        """Same topology under a different path-loss exponent."""
        return GeometricGraph(self._points, self._edges, kappa=kappa, name=self.name)

    def directed_edge_array(self) -> np.ndarray:
        """``(2m, 2)`` array with both orientations of every edge.

        Routing treats each undirected edge as two directed channels
        ("at most one packet along any edge in each direction", §3.1).
        """
        if self.n_edges == 0:
            return np.empty((0, 2), dtype=np.intp)
        return np.vstack([self._edges, self._edges[:, ::-1]])
