"""Baseline proximity-graph topologies from the related-work comparison.

§1.2 of the paper positions ΘALG against a family of classical geometric
structures.  Experiment E10 ("topology zoo") reproduces that comparison
quantitatively, so we implement each baseline:

* **Gabriel graph** — edge (u, v) present iff the disk with diameter
  ``uv`` is empty.  Contains every minimum-energy path for κ ≥ 2
  (optimal energy-stretch 1) but has Ω(n) worst-case degree.
* **Relative neighborhood graph (RNG)** — edge present iff no witness w
  has ``max(|uw|, |vw|) < |uv|``.  Sparser than Gabriel; polynomial
  energy-stretch in the worst case.
* **Restricted Delaunay graph** — Delaunay triangulation intersected
  with the transmission range D; a spanner among the edges it keeps.
* **kNN graph** — connect each node to its k nearest neighbors; the
  paper's intro notes this does *not* guarantee connectivity.
* **Euclidean MST** — the sparsest connected topology; minimum total
  weight but unbounded stretch.

All constructors restrict edges to the transmission range ``max_range``
(a radio cannot use a longer edge regardless of the geometry) and return
:class:`~repro.graphs.base.GeometricGraph` instances.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree
from scipy.spatial import Delaunay, cKDTree
from scipy.spatial.distance import pdist, squareform

from repro.geometry.primitives import as_points, pairwise_sq_distances
from repro.graphs.base import GeometricGraph
from repro.utils.validation import check_positive

__all__ = [
    "gabriel_graph",
    "relative_neighborhood_graph",
    "restricted_delaunay_graph",
    "knn_graph",
    "euclidean_mst",
]


def _candidate_pairs_within(points: np.ndarray, max_range: float) -> np.ndarray:
    """All (i, j), i<j with |ij| <= max_range, via a KD-tree."""
    tree = cKDTree(points)
    pairs = tree.query_pairs(max_range, output_type="ndarray")
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.intp)
    return pairs.astype(np.intp)


def gabriel_graph(
    points: np.ndarray,
    max_range: float = np.inf,
    *,
    kappa: float = 2.0,
    name: str = "Gabriel",
) -> GeometricGraph:
    """Gabriel graph restricted to the transmission range.

    Edge (u, v) survives iff no third node lies strictly inside the disk
    whose diameter is the segment uv, i.e. iff for every w:
    ``|uw|² + |vw|² ≥ |uv|²``.
    """
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    if np.isinf(max_range):
        iu = np.triu_indices(n, k=1)
        pairs = np.column_stack(iu).astype(np.intp)
    else:
        check_positive("max_range", max_range)
        pairs = _candidate_pairs_within(pts, max_range)
    if len(pairs) == 0:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    d2 = pairwise_sq_distances(pts)
    keep = np.empty(len(pairs), dtype=bool)
    for k, (i, j) in enumerate(pairs):
        # Inside-disk test against all nodes at once.
        inside = d2[i] + d2[j] < d2[i, j] * (1.0 - 1e-12)
        inside[i] = inside[j] = False
        keep[k] = not inside.any()
    return GeometricGraph(pts, pairs[keep], kappa=kappa, name=name)


def relative_neighborhood_graph(
    points: np.ndarray,
    max_range: float = np.inf,
    *,
    kappa: float = 2.0,
    name: str = "RNG",
) -> GeometricGraph:
    """Relative neighborhood graph restricted to the transmission range.

    Edge (u, v) survives iff no witness w satisfies
    ``max(|uw|, |vw|) < |uv|`` (lune-emptiness).
    """
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    if np.isinf(max_range):
        iu = np.triu_indices(n, k=1)
        pairs = np.column_stack(iu).astype(np.intp)
    else:
        check_positive("max_range", max_range)
        pairs = _candidate_pairs_within(pts, max_range)
    if len(pairs) == 0:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    d2 = pairwise_sq_distances(pts)
    keep = np.empty(len(pairs), dtype=bool)
    for k, (i, j) in enumerate(pairs):
        blocked = np.maximum(d2[i], d2[j]) < d2[i, j] * (1.0 - 1e-12)
        blocked[i] = blocked[j] = False
        keep[k] = not blocked.any()
    return GeometricGraph(pts, pairs[keep], kappa=kappa, name=name)


def restricted_delaunay_graph(
    points: np.ndarray,
    max_range: float,
    *,
    kappa: float = 2.0,
    name: str = "RDG",
) -> GeometricGraph:
    """Delaunay triangulation with edges longer than ``max_range`` removed.

    Matches the restricted Delaunay graphs of Gao et al. cited in §1.2.
    Degenerate inputs (collinear point sets) fall back to the path graph
    along the line, which is what the triangulation degenerates to.
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    try:
        tri = Delaunay(pts)
    except Exception:
        # Collinear fallback: connect consecutive points along the line.
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        edges = np.column_stack([order[:-1], order[1:]])
        g = GeometricGraph(pts, edges, kappa=kappa, name=name)
        keep = g.edge_lengths <= max_range + 1e-12
        return GeometricGraph(pts, g.edges[keep], kappa=kappa, name=name)
    simplices = tri.simplices
    edges = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    g = GeometricGraph(pts, edges, kappa=kappa, name=name)
    keep = g.edge_lengths <= max_range + 1e-12
    return GeometricGraph(pts, g.edges[keep], kappa=kappa, name=name)


def knn_graph(
    points: np.ndarray,
    k: int,
    max_range: float = np.inf,
    *,
    kappa: float = 2.0,
    name: str = "kNN",
) -> GeometricGraph:
    """Connect each node to its k nearest neighbors (within range).

    The intro's cautionary baseline: energy-efficient locally but not
    guaranteed connected and with in-degree up to Θ(n).
    """
    pts = as_points(points)
    n = len(pts)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < 2:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    tree = cKDTree(pts)
    kk = min(k + 1, n)
    dist, idx = tree.query(pts, k=kk)
    edges = []
    for u in range(n):
        for d, v in zip(dist[u], idx[u]):
            if v == u:
                continue
            if d <= max_range:
                edges.append((u, int(v)))
    return GeometricGraph(pts, edges, kappa=kappa, name=name)


def euclidean_mst(
    points: np.ndarray,
    *,
    kappa: float = 2.0,
    name: str = "MST",
) -> GeometricGraph:
    """Euclidean minimum spanning tree (dense Prim via scipy)."""
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, [], kappa=kappa, name=name)
    dm = squareform(pdist(pts))
    mst = minimum_spanning_tree(dm).tocoo()
    edges = np.column_stack([mst.row, mst.col]).astype(np.intp)
    return GeometricGraph(pts, edges, kappa=kappa, name=name)
