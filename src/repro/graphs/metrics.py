"""Graph metrics: degrees, connectivity, energy- and distance-stretch.

The stretch measures are the paper's central quality criteria for a
topology-control output H ⊆ G*:

* **energy-stretch** (§2.2) — max over node pairs of the ratio of the
  cheapest path cost in H (edge costs ``|uv|^κ``) to the cheapest path
  cost in G*;
* **distance-stretch** (§2.3) — same with Euclidean edge *lengths*; a
  subgraph with O(1) distance-stretch of the complete graph is a
  *spanner*.

Theorem 2.2's reduction lets us evaluate energy-stretch by looking only
at the *edges* of G*: it suffices that every G* edge (u, v) has a path
in H of cost O(|uv|^κ).  ``stretch_summary`` reports both the exact
all-pairs stretch and this per-edge variant (the quantity the proof
actually bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.csgraph import connected_components as _cc
from scipy.sparse.csgraph import dijkstra

from repro.graphs.base import GeometricGraph

__all__ = [
    "degrees",
    "max_degree",
    "is_connected",
    "connected_components",
    "shortest_path_costs",
    "energy_stretch",
    "distance_stretch",
    "stretch_summary",
    "StretchResult",
]


def degrees(graph: GeometricGraph) -> np.ndarray:
    """Degree of every node."""
    out = np.zeros(graph.n_nodes, dtype=np.intp)
    if graph.n_edges:
        np.add.at(out, graph.edges[:, 0], 1)
        np.add.at(out, graph.edges[:, 1], 1)
    return out


def max_degree(graph: GeometricGraph) -> int:
    """Maximum node degree (0 for an empty graph)."""
    d = degrees(graph)
    return int(d.max()) if len(d) else 0


def connected_components(graph: GeometricGraph) -> tuple[int, np.ndarray]:
    """``(count, labels)`` of connected components."""
    if graph.n_nodes == 0:
        return 0, np.empty(0, dtype=np.int32)
    return _cc(graph.adjacency, directed=False)


def is_connected(graph: GeometricGraph) -> bool:
    """Whether the graph is connected (single-node graphs count as connected)."""
    n_comp, _ = connected_components(graph)
    return n_comp <= 1


def shortest_path_costs(
    graph: GeometricGraph,
    *,
    weight: str = "cost",
    sources: np.ndarray | None = None,
) -> np.ndarray:
    """All-pairs (or selected-source) shortest-path weights via Dijkstra.

    Parameters
    ----------
    weight:
        ``"cost"`` for energy (``|uv|^κ``) weights, ``"length"`` for
        Euclidean weights.
    sources:
        Optional array of source indices; default all nodes.

    Returns
    -------
    ``(len(sources), n)`` float array; unreachable pairs are ``inf``.
    """
    if weight == "cost":
        adj = graph.cost_adjacency
    elif weight == "length":
        adj = graph.adjacency
    else:
        raise ValueError(f"weight must be 'cost' or 'length', got {weight!r}")
    if sources is None:
        return dijkstra(adj, directed=False)
    sources = np.asarray(sources, dtype=np.intp)
    if len(sources) == 0:
        return np.empty((0, graph.n_nodes))
    return dijkstra(adj, directed=False, indices=sources)


@dataclass(frozen=True)
class StretchResult:
    """Stretch statistics of a subgraph relative to a reference graph.

    Attributes
    ----------
    max_stretch / mean_stretch:
        Over all connected node pairs of the reference graph.
    max_edge_stretch:
        Max over *edges* (u, v) of the reference of (subgraph path
        weight)/(edge weight) — the quantity Theorem 2.2 bounds.
    n_pairs:
        Number of finite pairs that entered the statistics.
    disconnected_pairs:
        Pairs reachable in the reference but not the subgraph (must be 0
        for a valid topology-control output).
    """

    max_stretch: float
    mean_stretch: float
    max_edge_stretch: float
    n_pairs: int
    disconnected_pairs: int


def _stretch(
    sub: GeometricGraph,
    ref: GeometricGraph,
    *,
    weight: str,
    max_sources: int | None = None,
    rng: np.random.Generator | None = None,
) -> StretchResult:
    if sub.n_nodes != ref.n_nodes:
        raise ValueError("subgraph and reference must share the node set")
    n = ref.n_nodes
    if n < 2:
        return StretchResult(1.0, 1.0, 1.0, 0, 0)
    if max_sources is not None and max_sources < n:
        gen = rng if rng is not None else np.random.default_rng(0)
        sources = np.sort(gen.choice(n, size=max_sources, replace=False))
    else:
        sources = np.arange(n)
    d_sub = shortest_path_costs(sub, weight=weight, sources=sources)
    d_ref = shortest_path_costs(ref, weight=weight, sources=sources)

    finite_ref = np.isfinite(d_ref) & (d_ref > 0)
    finite_sub = np.isfinite(d_sub)
    disconnected = int(np.count_nonzero(finite_ref & ~finite_sub))
    valid = finite_ref & finite_sub
    if valid.any():
        ratios = d_sub[valid] / d_ref[valid]
        max_stretch = float(ratios.max())
        mean_stretch = float(ratios.mean())
        n_pairs = int(valid.sum())
    else:
        max_stretch = mean_stretch = 1.0
        n_pairs = 0

    # Per-edge stretch over reference edges (Theorem 2.2's reduction),
    # as one gather d_sub[row_of_source, edge_target] over all edges.
    max_edge_stretch = 1.0
    if ref.n_edges:
        ew = ref.edge_costs if weight == "cost" else ref.edge_lengths
        src_pos = np.full(n, -1, dtype=np.intp)
        src_pos[sources] = np.arange(len(sources))
        u, v = ref.edges[:, 0], ref.edges[:, 1]
        row_u, row_v = src_pos[u], src_pos[v]
        use_u = row_u >= 0
        row = np.where(use_u, row_u, row_v)
        target = np.where(use_u, v, u)
        covered = row >= 0  # at least one endpoint is a Dijkstra source
        if covered.any():
            dsub = d_sub[row[covered], target[covered]]
            w = ew[covered]
            valid_edge = np.isfinite(dsub) & (w > 0)
            if valid_edge.any():
                max_edge_stretch = max(
                    max_edge_stretch, float((dsub[valid_edge] / w[valid_edge]).max())
                )
    return StretchResult(max_stretch, mean_stretch, max_edge_stretch, n_pairs, disconnected)


def energy_stretch(
    sub: GeometricGraph,
    ref: GeometricGraph,
    *,
    max_sources: int | None = None,
    rng: np.random.Generator | None = None,
) -> StretchResult:
    """Energy-stretch of ``sub`` w.r.t. ``ref`` (§2.2).

    ``max_sources`` caps the Dijkstra sources for large n (sampled
    uniformly); the per-edge stretch still covers every reference edge
    incident to a sampled source.
    """
    return _stretch(sub, ref, weight="cost", max_sources=max_sources, rng=rng)


def distance_stretch(
    sub: GeometricGraph,
    ref: GeometricGraph,
    *,
    max_sources: int | None = None,
    rng: np.random.Generator | None = None,
) -> StretchResult:
    """Distance-stretch of ``sub`` w.r.t. ``ref`` (§2.3)."""
    return _stretch(sub, ref, weight="length", max_sources=max_sources, rng=rng)


def stretch_summary(
    sub: GeometricGraph,
    ref: GeometricGraph,
    *,
    max_sources: int | None = None,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Flat dict with degree + both stretch measures (for tables)."""
    es = energy_stretch(sub, ref, max_sources=max_sources, rng=rng)
    ds = distance_stretch(sub, ref, max_sources=max_sources, rng=rng)
    return {
        "n_nodes": float(sub.n_nodes),
        "n_edges": float(sub.n_edges),
        "max_degree": float(max_degree(sub)),
        "connected": float(is_connected(sub)),
        "energy_stretch_max": es.max_stretch,
        "energy_stretch_mean": es.mean_stretch,
        "energy_edge_stretch_max": es.max_edge_stretch,
        "distance_stretch_max": ds.max_stretch,
        "distance_stretch_mean": ds.mean_stretch,
        "disconnected_pairs": float(es.disconnected_pairs),
    }
