"""The transmission graph G* (§2 model).

G* contains an edge between two nodes iff they can communicate directly,
i.e. their distance is at most the maximum transmission range D.  The
paper assumes G* is connected; :func:`max_range_for_connectivity`
computes the smallest D making that true (the longest edge of the
Euclidean MST), which experiment sweeps use to pick realistic ranges.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree
from scipy.spatial.distance import pdist, squareform

from repro.geometry.primitives import as_points
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.utils.validation import check_positive

__all__ = ["transmission_graph", "max_range_for_connectivity"]


def transmission_graph(
    points: np.ndarray,
    max_range: float,
    *,
    kappa: float = 2.0,
    name: str = "G*",
) -> GeometricGraph:
    """Build G*: all pairs within distance ``max_range`` are edges.

    Uses the uniform-grid index, so construction is near-linear for
    bounded-density point sets instead of the naive O(n²) scan.

    Parameters
    ----------
    points:
        ``(n, 2)`` node positions.
    max_range:
        Maximum transmission range D (same units as the coordinates).
    kappa:
        Path-loss exponent for the ``|uv|^κ`` edge costs.
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    index = GridIndex(pts, cell=max_range)
    edges = index.all_pairs_within(max_range)
    return GeometricGraph(pts, edges, kappa=kappa, name=name)


def max_range_for_connectivity(points: np.ndarray, *, slack: float = 1.0) -> float:
    """Smallest D for which G* is connected, times ``slack``.

    This is the bottleneck (longest) edge of the Euclidean minimum
    spanning tree.  For n ≤ a few thousand the dense MST is fast and
    simple; the experiments never exceed that scale.
    """
    pts = as_points(points)
    if len(pts) < 2:
        return 0.0
    dm = squareform(pdist(pts))
    mst = minimum_spanning_tree(dm)
    longest = float(mst.data.max()) if mst.nnz else 0.0
    return longest * float(slack)
