"""The transmission graph G* (§2 model).

G* contains an edge between two nodes iff they can communicate directly,
i.e. their distance is at most the maximum transmission range D.  The
paper assumes G* is connected; :func:`max_range_for_connectivity`
computes the smallest D making that true (the longest edge of the
Euclidean MST), which experiment sweeps use to pick realistic ranges.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components, minimum_spanning_tree
from scipy.spatial import cKDTree
from scipy.spatial.distance import pdist, squareform

from repro.geometry.primitives import as_points
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.utils.validation import check_positive

__all__ = ["transmission_graph", "max_range_for_connectivity"]

#: Below this size the dense MST is cheap and serves as the oracle the
#: sparse path is tested against.
_DENSE_CUTOFF = 1024


def transmission_graph(
    points: np.ndarray,
    max_range: float,
    *,
    kappa: float = 2.0,
    name: str = "G*",
) -> GeometricGraph:
    """Build G*: all pairs within distance ``max_range`` are edges.

    Uses the uniform-grid index, so construction is near-linear for
    bounded-density point sets instead of the naive O(n²) scan.

    Parameters
    ----------
    points:
        ``(n, 2)`` node positions.
    max_range:
        Maximum transmission range D (same units as the coordinates).
    kappa:
        Path-loss exponent for the ``|uv|^κ`` edge costs.
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    index = GridIndex(pts, cell=max_range)
    edges = index.all_pairs_within(max_range)
    return GeometricGraph(pts, edges, kappa=kappa, name=name)


def max_range_for_connectivity(
    points: np.ndarray, *, slack: float = 1.0, method: str = "auto"
) -> float:
    """Smallest D for which G* is connected, times ``slack``.

    This is the bottleneck (longest) edge of the Euclidean minimum
    spanning tree.

    Parameters
    ----------
    method:
        ``"auto"`` (default) picks ``"dense"`` below ~2k points and
        ``"sparse"`` above; the explicit values force one path.  The
        dense path materializes the full ``squareform(pdist(...))``
        matrix — O(n²) memory, simple and exact, fine for experiment
        scale.  The sparse path never builds a dense matrix: a KD-tree
        nearest-neighbor pass seeds a candidate radius (the largest
        1-NN distance, a lower bound on the answer), the disk graph at
        that radius is built sparsely, and the radius doubles until the
        disk graph is connected — which guarantees it contains the
        whole Euclidean MST, so the sparse MST's longest edge equals
        the dense answer.
    """
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return 0.0
    if method not in ("auto", "dense", "sparse"):
        raise ValueError(f"method must be 'auto', 'dense' or 'sparse', got {method!r}")
    if method == "dense" or (method == "auto" and n <= _DENSE_CUTOFF):
        dm = squareform(pdist(pts))
        mst = minimum_spanning_tree(dm)
        longest = float(mst.data.max()) if mst.nnz else 0.0
        return longest * float(slack)
    return _bottleneck_range_sparse(pts) * float(slack)


def _bottleneck_range_sparse(pts: np.ndarray) -> float:
    """Longest Euclidean-MST edge without the dense distance matrix."""
    n = len(pts)
    tree = cKDTree(pts)
    # Largest nearest-neighbor distance: any smaller radius leaves some
    # node isolated, so this lower-bounds the bottleneck.
    nn = tree.query(pts, k=2)[0][:, 1]
    r = float(nn.max())
    if r == 0.0:
        # Coincident points (degenerate input): they cost nothing to
        # connect; restart from the smallest positive NN distance.
        positive = nn[nn > 0]
        if len(positive) == 0:
            return 0.0
        r = float(positive.min())
    while True:
        pairs = tree.query_pairs(r, output_type="ndarray")
        if len(pairs):
            d = pts[pairs[:, 0]] - pts[pairs[:, 1]]
            w = np.hypot(d[:, 0], d[:, 1])
            # Zero-length edges (coincident points) must stay explicit
            # entries or the sparse graph loses them; nudge to a tiny
            # positive weight that can never become the bottleneck.
            w = np.maximum(w, 1e-300)
            g = sp.coo_matrix((w, (pairs[:, 0], pairs[:, 1])), shape=(n, n))
            n_comp, _ = connected_components(g, directed=False)
            if n_comp == 1:
                mst = minimum_spanning_tree(g.tocsr())
                longest = float(mst.data.max()) if mst.nnz else 0.0
                return 0.0 if longest <= 1e-300 else longest
        r *= 2.0
