"""Global-ranking spanner sparsification — the §1.2/§2.1 comparator.

Before ΘALG, the known route to a *bounded-degree* spanner went through
global postprocessing of the Yao graph: "processing the edges in order
of decreasing length, and eliminating edges that do not decrease the
distance between endpoints by more than a constant factor"
(Wattenhofer et al., §2.1).  The paper's point is that this requires a
network-wide edge ranking — communication time proportional to the
diameter — whereas ΘALG's phase 2 is a single local round.

This module implements that global algorithm as the comparison baseline
(ablation in bench E10/E13): it produces topologies of similar quality,
so the experiments isolate exactly what ΘALG buys — locality, not
quality.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.base import GeometricGraph

__all__ = ["greedy_spanner", "global_yao_sparsification"]


def greedy_spanner(
    graph: GeometricGraph,
    stretch_factor: float = 1.5,
    *,
    weight: str = "length",
    name: str = "",
) -> GeometricGraph:
    """The classical greedy t-spanner restricted to ``graph``'s edges.

    Processes edges in *increasing* weight order and keeps an edge only
    if the current subgraph's distance between its endpoints exceeds
    ``stretch_factor`` times the edge weight.  The result is a t-spanner
    of ``graph`` (t = stretch_factor) with sparse, well-separated edges
    — the strongest non-local quality baseline.
    """
    if stretch_factor < 1.0:
        raise ValueError(f"stretch_factor must be >= 1, got {stretch_factor}")
    n = graph.n_nodes
    w = graph.edge_lengths if weight == "length" else graph.edge_costs
    order = np.argsort(w, kind="stable")
    adj: list[dict[int, float]] = [dict() for _ in range(n)]
    kept: list[tuple[int, int]] = []

    def dist_within(src: int, dst: int, bound: float) -> float:
        """Dijkstra truncated at ``bound`` over the kept edges."""
        dist = {src: 0.0}
        heap = [(0.0, src)]
        while heap:
            d, v = heapq.heappop(heap)
            if v == dst:
                return d
            if d > dist.get(v, np.inf) or d > bound:
                continue
            for u, wu in adj[v].items():
                nd = d + wu
                if nd <= bound and nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist.get(dst, np.inf)

    for k in order:
        i, j = (int(x) for x in graph.edges[k])
        bound = stretch_factor * float(w[k])
        if dist_within(i, j, bound) > bound:
            kept.append((i, j))
            adj[i][j] = float(w[k])
            adj[j][i] = float(w[k])
    return GeometricGraph(
        graph.points,
        kept,
        kappa=graph.kappa,
        name=name or f"greedy-spanner(t={stretch_factor:g})",
    )


def global_yao_sparsification(
    graph: GeometricGraph,
    stretch_factor: float = 2.0,
    *,
    name: str = "",
) -> GeometricGraph:
    """Wattenhofer-style global postprocessing of a Yao graph.

    Processes edges in *decreasing* length order and drops an edge when
    the endpoints are already connected within ``stretch_factor`` times
    the edge length **through permanently kept edges**.  Restricting
    certificates to kept edges is what makes the t-spanner guarantee
    compositional: a naive "check against the remaining graph" lets a
    dropped edge's certificate route through edges that are themselves
    dropped later, compounding the stretch.  Needs the global edge
    ranking the paper objects to; kept as the non-local comparator for
    ΘALG's phase 2.
    """
    if stretch_factor < 1.0:
        raise ValueError(f"stretch_factor must be >= 1, got {stretch_factor}")
    n = graph.n_nodes
    lengths = graph.edge_lengths
    order = np.argsort(-lengths, kind="stable")
    adj: list[dict[int, float]] = [dict() for _ in range(n)]  # kept edges only

    def dist_kept(src: int, dst: int, bound: float) -> float:
        dist = {src: 0.0}
        heap = [(0.0, src)]
        while heap:
            d, v = heapq.heappop(heap)
            if v == dst:
                return d
            if d > dist.get(v, np.inf) or d > bound:
                continue
            for u, wu in adj[v].items():
                nd = d + wu
                if nd <= bound and nd < dist.get(u, np.inf):
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist.get(dst, np.inf)

    for k in order:
        i, j = (int(x) for x in graph.edges[k])
        w = float(lengths[k])
        if dist_kept(i, j, stretch_factor * w) > stretch_factor * w:
            adj[i][j] = w
            adj[j][i] = w
    kept = [(i, j) for i in range(n) for j in adj[i] if i < j]
    return GeometricGraph(
        graph.points,
        kept,
        kappa=graph.kappa,
        name=name or f"global-yao-sparse(t={stretch_factor:g})",
    )
