"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (point-set generators,
adversaries, the randomized MAC layers) accepts a ``rng`` argument that
may be ``None``, an integer seed, or a :class:`numpy.random.Generator`.
:func:`as_rng` normalizes those three forms; :func:`spawn_rngs` derives
independent child streams for parallel sweeps so that experiment
replications are reproducible and uncorrelated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(rng: "int | None | np.random.Generator | np.random.SeedSequence" = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as a random generator")


def spawn_rngs(rng: "int | None | np.random.Generator", n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``rng``.

    Uses :meth:`numpy.random.Generator.spawn` (itself backed by
    ``SeedSequence.spawn``) so children never collide regardless of how
    many values the parent has produced.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return list(as_rng(rng).spawn(n))
