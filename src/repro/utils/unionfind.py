"""Union-find (disjoint-set) with path compression and union by rank.

Used by connectivity checks (:func:`repro.graphs.metrics.is_connected`
takes the BFS route for CSR graphs, but the incremental construction in
the Euclidean-MST baseline and several tests want a mergeable structure).
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set forest over the integers ``0..n-1``.

    Parameters
    ----------
    n:
        Number of elements.  Elements are identified by integer index.

    Examples
    --------
    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    True
    >>> uf.connected(0, 1)
    True
    >>> uf.connected(0, 2)
    False
    >>> uf.n_components
    3
    """

    __slots__ = ("_parent", "_rank", "_n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = np.arange(n, dtype=np.intp)
        self._rank = np.zeros(n, dtype=np.int8)
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently present."""
        return self._n_components

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Second pass: compress the path.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns
        -------
        bool
            ``True`` if a merge happened, ``False`` if ``x`` and ``y``
            were already in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def component_labels(self) -> np.ndarray:
        """Return an array mapping each element to its root representative."""
        return np.array([self.find(i) for i in range(len(self._parent))], dtype=np.intp)
