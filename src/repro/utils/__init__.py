"""Small generic utilities shared across the :mod:`repro` packages.

The utilities here are deliberately dependency-light: a union-find
structure used for connectivity checks, deterministic RNG plumbing, and
argument-validation helpers.  Everything else in the library builds on
these, so they are kept free of imports from sibling packages.
"""

from repro.utils.unionfind import UnionFind
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_probability,
)

__all__ = [
    "UnionFind",
    "as_rng",
    "spawn_rngs",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
]
