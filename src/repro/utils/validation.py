"""Argument-validation helpers with consistent error messages.

These are used at public-API boundaries (constructors and top-level
functions); internal hot loops skip them per the "validate at the edges"
idiom so the vectorized kernels stay branch-free.
"""

from __future__ import annotations

import math

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    v = float(value)
    if not math.isfinite(v) or v <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return v


def check_nonnegative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    v = float(value)
    if not math.isfinite(v) or v < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Raise ``ValueError`` unless ``lo (<|<=) value (<|<=) hi``."""
    v = float(value)
    lo_ok = v >= lo if inclusive[0] else v > lo
    hi_ok = v <= hi if inclusive[1] else v < hi
    if not (math.isfinite(v) and lo_ok and hi_ok):
        lb = "[" if inclusive[0] else "("
        rb = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lb}{lo}, {hi}{rb}, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0)
