"""Ragged-array primitives shared by the vectorized kernels.

The hot-path kernels (grid index, interference sets, ΘALG grouping)
all reduce to the same two CSR-style operations: materializing the
concatenation of ``arange(start, start+count)`` runs, and locating the
boundaries of equal-key runs in a sorted key sequence.  Keeping them
here means each kernel is a short composition of audited pieces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ragged_arange", "run_starts"]


def ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each ``(s, c)`` pair.

    Equivalent to ``np.concatenate([np.arange(s, s + c) for s, c in
    zip(starts, counts)])`` without the Python loop.  ``counts`` must be
    non-negative; zero-count runs contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.intp)
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    # Offset a global arange so each run restarts at its own start.
    run_first = np.cumsum(counts) - counts  # position where each run begins
    out = np.arange(total, dtype=np.intp)
    out -= np.repeat(run_first, counts)
    out += np.repeat(starts, counts)
    return out


def run_starts(*keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each equal-key run.

    ``keys`` are equal-length arrays already sorted so that equal
    composite keys are contiguous; element ``i`` starts a run when any
    key differs from element ``i - 1``.
    """
    if not keys:
        raise ValueError("at least one key array is required")
    n = len(keys[0])
    first = np.ones(n, dtype=bool)
    if n > 1:
        change = np.zeros(n - 1, dtype=bool)
        for key in keys:
            change |= key[1:] != key[:-1]
        first[1:] = change
    return first
