"""Cross-process telemetry: resource samples, snapshot streams, OpenMetrics.

The span tracer (:mod:`repro.obs.trace`) and the metrics registry
(:mod:`repro.obs.metrics`) stop at the process boundary: a pool worker's
spans and counters live in the worker.  This module is the plumbing
that carries them across it, plus the consumers on the parent side:

* :func:`resource_sample` / :class:`ResourceSampler` — ``/proc``-based
  RSS and CPU-time sampling (no psutil), optionally including the bytes
  a :class:`~repro.parallel.shm.ShmArena` has pinned in ``/dev/shm``;
* :func:`worker_tracer` — the one fork-pool idiom: give a worker its
  own fresh tracer exactly when the parent traced at fork time, and
  mark it *foreign* so the worker knows to ship events back;
* :func:`to_openmetrics` / :func:`parse_openmetrics` — the
  OpenMetrics/Prometheus text rendering of a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, value-exact in
  both directions (floats via ``repr``, non-finite as ``NaN``/``+Inf``);
* :class:`TelemetryWriter` / :func:`read_snapshots` — the
  ``repro-telemetry/v1`` JSONL snapshot stream written next to campaign
  stores (header line + one snapshot object per line, torn-tail
  tolerant like the campaign manifest);
* :func:`render_top` / :class:`LiveView` — ``python -m repro top STORE``
  and ``python -m repro campaign run --live``, both rendering the same
  snapshot records.

Everything here is pull-based and allocation-light: samplers read two
``/proc`` files, snapshot writes are one JSON line, and none of it runs
unless a pool, a campaign, or an enabled tracer asks for it.
"""

from __future__ import annotations

import json
import math
import os
import re
import sys
import time
from pathlib import Path
from typing import Any

from repro.obs import metrics, trace

__all__ = [
    "LiveView",
    "ResourceSampler",
    "TELEMETRY_SCHEMA",
    "TelemetryWriter",
    "parse_openmetrics",
    "read_snapshots",
    "render_top",
    "resource_sample",
    "to_openmetrics",
    "worker_tracer",
]

TELEMETRY_SCHEMA = "repro-telemetry/v1"

# ---------------------------------------------------------------------------
# Resource sampling (/proc, no psutil)
# ---------------------------------------------------------------------------

try:
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
    _CLOCK_TICK = os.sysconf("SC_CLK_TCK")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_BYTES = 4096
    _CLOCK_TICK = 100


def resource_sample(pid: "int | str" = "self") -> dict:
    """One point-in-time resource sample of a process, as a flat dict.

    Keys: ``pid``, ``ts`` (unix seconds), ``rss_bytes`` (resident set),
    ``cpu_user_s`` / ``cpu_sys_s`` (cumulative CPU time).  Reads
    ``/proc/<pid>/statm`` and ``/proc/<pid>/stat``; on platforms without
    procfs the CPU times fall back to :func:`os.times` (self only) and
    ``rss_bytes`` to 0 — the sample never raises.
    """
    own = pid == "self"
    out: dict = {
        "pid": os.getpid() if own else int(pid),
        "ts": time.time(),
        "rss_bytes": 0,
        "cpu_user_s": 0.0,
        "cpu_sys_s": 0.0,
    }
    try:
        statm = Path(f"/proc/{pid}/statm").read_text().split()
        out["rss_bytes"] = int(statm[1]) * _PAGE_BYTES
        # Everything after the last ')' is fixed-position — the comm
        # field may itself contain spaces and parentheses.
        stat_tail = Path(f"/proc/{pid}/stat").read_text().rsplit(")", 1)[1].split()
        out["cpu_user_s"] = int(stat_tail[11]) / _CLOCK_TICK
        out["cpu_sys_s"] = int(stat_tail[12]) / _CLOCK_TICK
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        if own:
            t = os.times()
            out["cpu_user_s"] = float(t.user)
            out["cpu_sys_s"] = float(t.system)
    return out


class ResourceSampler:
    """Repeated :func:`resource_sample` calls for one process.

    ``arena`` may be a :class:`~repro.parallel.shm.ShmArena` (or any
    object with an ``nbytes`` attribute); its current shared-memory
    footprint is reported as ``shm_bytes`` in every sample.
    """

    __slots__ = ("pid", "arena", "_t0")

    def __init__(self, pid: "int | str" = "self", *, arena=None) -> None:
        self.pid = pid
        self.arena = arena
        self._t0 = time.time()

    def sample(self, **extra) -> dict:
        out = resource_sample(self.pid)
        out["uptime_s"] = out["ts"] - self._t0
        if self.arena is not None:
            out["shm_bytes"] = int(getattr(self.arena, "nbytes", 0))
        out.update(extra)
        return out


# ---------------------------------------------------------------------------
# Fork-pool worker tracers
# ---------------------------------------------------------------------------


def worker_tracer() -> "trace.Tracer | None":
    """The calling process's tracer, fixed up for fork-pool workers.

    Returns ``None`` when the parent was not tracing at fork time (the
    inherited module global is ``None`` — the disabled fast path stays
    untouched).  In a forked worker the inherited tracer carries the
    parent's pid and event backlog, so the first call replaces it with a
    fresh one and marks it ``foreign=True``: instrumented worker loops
    use that flag to know their events must be drained back through the
    result channel for the parent to :meth:`~repro.obs.trace.Tracer.ingest`.
    """
    tracer = trace.active()
    if tracer is None:
        return None
    if tracer.pid != os.getpid():
        tracer = trace.enable(fresh=True)
        tracer.foreign = True
        if metrics.active() is not None:
            # The forked registry still holds the parent's counts;
            # shipping a snapshot of it back would double them.
            metrics.enable(fresh=True)
    return tracer


# ---------------------------------------------------------------------------
# OpenMetrics / Prometheus text export
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_family(name: str, prefix: str) -> str:
    fam = _NAME_SANITIZE.sub("_", name)
    if fam and fam[0].isdigit():
        fam = "_" + fam
    return f"{prefix}_{fam}"


def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def to_openmetrics(snapshot: dict, *, prefix: str = "repro") -> str:
    """Render a registry snapshot as OpenMetrics text.

    Every sample carries a ``name`` label holding the instrument's exact
    registry name (family names are sanitized, so ``balancing.attempts``
    becomes the ``repro_balancing_attempts`` family); gauges add a
    ``field`` label for their ``value``/``max`` pair and histograms for
    ``min``/``max``.  :func:`parse_openmetrics` inverts the rendering
    exactly — values are ``repr``-formatted floats, non-finite spelled
    ``NaN``/``+Inf``/``-Inf`` per the exposition format.
    """
    lines: "list[str]" = []
    for name, value in snapshot.get("counters", {}).items():
        fam = _metric_family(name, prefix)
        label = f'name="{_escape_label(name)}"'
        lines.append(f"# TYPE {fam} counter")
        lines.append(f"{fam}_total{{{label}}} {_fmt_value(value)}")
    for name, g in snapshot.get("gauges", {}).items():
        fam = _metric_family(name, prefix)
        label = _escape_label(name)
        lines.append(f"# TYPE {fam} gauge")
        lines.append(f'{fam}{{name="{label}",field="value"}} {_fmt_value(g["value"])}')
        lines.append(f'{fam}{{name="{label}",field="max"}} {_fmt_value(g["max"])}')
    for name, h in snapshot.get("histograms", {}).items():
        fam = _metric_family(name, prefix)
        label = _escape_label(name)
        lines.append(f"# TYPE {fam} summary")
        lines.append(f'{fam}_count{{name="{label}"}} {_fmt_value(h["count"])}')
        lines.append(f'{fam}_sum{{name="{label}"}} {_fmt_value(h["total"])}')
        lines.append(f'{fam}{{name="{label}",field="min"}} {_fmt_value(h["min"])}')
        lines.append(f'{fam}{{name="{label}",field="max"}} {_fmt_value(h["max"])}')
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_LINE = re.compile(r"^(?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*)\{(?P<labels>[^}]*)\}\s+(?P<value>\S+)$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "NaN":
        return math.nan
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> dict:
    """Invert :func:`to_openmetrics` back to a snapshot-shaped dict.

    Exact inverse for everything the exporter writes: counter/gauge/
    histogram values round-trip bit-for-bit (tested in
    ``tests/test_obs_telemetry.py``); histogram ``mean`` is re-derived
    as ``total / count`` exactly as the registry computes it.
    """
    types: "dict[str, str]" = {}
    counters: "dict[str, float]" = {}
    gauges: "dict[str, dict]" = {}
    hists: "dict[str, dict]" = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_LINE.match(line)
        if not m:
            raise ValueError(f"unparseable OpenMetrics sample line: {line!r}")
        metric = m.group("metric")
        labels = {
            lm.group("key"): _unescape_label(lm.group("val"))
            for lm in _LABEL.finditer(m.group("labels"))
        }
        name = labels.get("name")
        if name is None:
            raise ValueError(f"sample missing the name label: {line!r}")
        value = _parse_value(m.group("value"))
        family, suffix = metric, ""
        for cand in (metric, metric.rsplit("_", 1)[0]):
            if cand in types:
                family, suffix = cand, metric[len(cand):]
                break
        kind = types.get(family)
        if kind == "counter":
            counters[name] = value
        elif kind == "gauge":
            slot = gauges.setdefault(name, {})
            slot[labels.get("field", "value")] = value
        elif kind == "summary":
            h = hists.setdefault(name, {})
            if suffix == "_count":
                h["count"] = int(value)
            elif suffix == "_sum":
                h["total"] = value
            else:
                h[labels.get("field", "value")] = value
        else:
            raise ValueError(f"sample {metric!r} has no TYPE declaration")
    for h in hists.values():
        count = h.get("count", 0)
        h["mean"] = h.get("total", 0.0) / count if count else 0.0
    return {"counters": counters, "gauges": gauges, "histograms": hists}


# ---------------------------------------------------------------------------
# repro-telemetry/v1 snapshot stream
# ---------------------------------------------------------------------------


class TelemetryWriter:
    """Append ``repro-telemetry/v1`` snapshot lines to a JSONL file.

    The first write creates the file with a header line carrying the
    schema marker; every snapshot is one JSON object on its own line,
    flushed immediately so a live reader (``repro top``) always sees a
    complete prefix.  ``interval`` throttles :meth:`write` — snapshots
    arriving faster are dropped unless forced — so a campaign finishing
    hundreds of fast cells does not bloat its store.
    """

    def __init__(self, path: "str | Path", *, interval: float = 0.5) -> None:
        self.path = Path(path)
        self.interval = float(interval)
        self._last_write = -math.inf
        self.n_written = 0

    def write(self, snapshot: dict, *, force: bool = False) -> bool:
        """Append ``snapshot`` unless inside the throttle window."""
        now = time.monotonic()
        if not force and now - self._last_write < self.interval:
            return False
        self._last_write = now
        new = not self.path.exists()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            if new:
                header = {"schema": TELEMETRY_SCHEMA, "created": time.time()}
                fh.write(json.dumps(header) + "\n")
            fh.write(json.dumps(snapshot, default=str) + "\n")
            fh.flush()
        self.n_written += 1
        return True


def read_snapshots(path: "str | Path") -> "list[dict]":
    """Snapshot records from a telemetry stream, oldest first.

    Skips the header line and tolerates a torn trailing line (a killed
    writer), mirroring the campaign manifest's read contract.  Returns
    an empty list when the file does not exist.
    """
    path = Path(path)
    if not path.is_file():
        return []
    out: "list[dict]" = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a killed writer
        if not isinstance(rec, dict) or "schema" in rec:
            continue
        out.append(rec)
    return out


# ---------------------------------------------------------------------------
# Rendering: `repro top` and `campaign run --live`
# ---------------------------------------------------------------------------


def _mb(nbytes: "int | float") -> str:
    return f"{float(nbytes) / 1e6:.1f}MB"


def _worker_rows(snapshot: dict) -> "list[dict]":
    rows = []
    elapsed = max(float(snapshot.get("elapsed_s", 0.0)), 1e-9)
    for pid, w in sorted(snapshot.get("workers", {}).items()):
        cells = int(w.get("cells", 0))
        busy = float(w.get("cell_seconds", 0.0))
        row = {
            "pid": pid,
            "cells": cells,
            "cells_per_s": round(cells / elapsed, 3),
            "mean_cell_s": round(busy / cells, 3) if cells else 0.0,
            "rss": _mb(w.get("rss_bytes", 0)),
            "cpu_s": round(
                float(w.get("cpu_user_s", 0.0)) + float(w.get("cpu_sys_s", 0.0)), 2
            ),
        }
        # Halo-subscription traffic gauges (tiled worker pools only):
        # diffs delivered to this worker vs. deliveries the filter
        # withheld, and the shared-memory footprint it maps.
        if "diffs_in" in w or "diffs_suppressed" in w:
            row["diffs_in"] = int(w.get("diffs_in", 0))
            row["diffs_suppressed"] = int(w.get("diffs_suppressed", 0))
        if "shm_bytes" in w:
            row["shm"] = _mb(w["shm_bytes"])
        rows.append(row)
    return rows


def render_snapshot(snapshot: dict, *, title: str = "") -> str:
    """One snapshot as the multi-line panel both consumers print."""
    from repro.analysis.tables import render_table

    cells = snapshot.get("cells", {})
    total = int(cells.get("total", 0))
    done = int(cells.get("done", 0))
    failed = int(cells.get("failed", 0))
    remaining = int(cells.get("remaining", max(total - done, 0)))
    rate = float(snapshot.get("rate_cells_per_s", 0.0))
    width = 28
    filled = round(width * done / total) if total else 0
    bar = "#" * filled + "-" * (width - filled)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"cells [{bar}] {done}/{total} done, {failed} failed, "
        f"{remaining} remaining ({rate:.2f} cells/s)"
    )
    parent = snapshot.get("parent") or {}
    if parent:
        line = (
            f"parent pid {parent.get('pid', '?')}: rss {_mb(parent.get('rss_bytes', 0))}, "
            f"cpu {float(parent.get('cpu_user_s', 0.0)):.1f}s user"
            f" / {float(parent.get('cpu_sys_s', 0.0)):.1f}s sys"
        )
        if "shm_bytes" in parent:
            line += f", shm {_mb(parent['shm_bytes'])}"
        lines.append(line)
    rows = _worker_rows(snapshot)
    if rows:
        lines.append(render_table(rows, title=f"workers — {len(rows)} processes"))
    return "\n".join(lines)


def render_top(store_dir: "str | Path") -> str:
    """The ``python -m repro top STORE`` view of one campaign store.

    Combines the store's pinned spec (total cell count), its manifest
    (authoritative completion), and the latest ``telemetry.jsonl``
    snapshot (throughput and resource gauges).  Works on finished and
    in-flight stores alike — the telemetry stream is append-only and
    every line is a complete JSON object.
    """
    store_dir = Path(store_dir)
    store_doc_path = store_dir / "store.json"
    if not store_doc_path.is_file():
        raise FileNotFoundError(f"no campaign store at {store_dir} (missing store.json)")
    doc = json.loads(store_doc_path.read_text())
    name = doc.get("name", "?")
    snaps = read_snapshots(store_dir / "telemetry.jsonl")
    header = f"campaign {name!r} — {store_dir}"
    if not snaps:
        return (
            f"{header}\n(no telemetry.jsonl snapshots yet — the stream appears "
            "once `campaign run` completes its first cell)"
        )
    latest = snaps[-1]
    age = time.time() - float(latest.get("ts", time.time()))
    body = render_snapshot(latest, title=header)
    return f"{body}\nlast snapshot: {age:.1f}s ago ({len(snaps)} snapshots on stream)"


class LiveView:
    """In-place live progress for ``campaign run --live``.

    On a TTY the panel redraws over itself (cursor-up + clear-line); on
    a pipe it degrades to one compact line per update so logs stay
    scannable and tests can assert on output.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_height = 0

    def update(self, snapshot: dict, *, title: str = "") -> None:
        if self._tty:
            block = render_snapshot(snapshot, title=title)
            if self._last_height:
                self.stream.write(f"\x1b[{self._last_height}F\x1b[J")
            self.stream.write(block + "\n")
            self._last_height = block.count("\n") + 1
        else:
            cells = snapshot.get("cells", {})
            self.stream.write(
                f"live: {cells.get('done', 0)}/{cells.get('total', 0)} done, "
                f"{cells.get('failed', 0)} failed, "
                f"{float(snapshot.get('rate_cells_per_s', 0.0)):.2f} cells/s, "
                f"rss {_mb((snapshot.get('parent') or {}).get('rss_bytes', 0))}\n"
            )
        self.stream.flush()

    def close(self, snapshot: "dict | None" = None, *, title: str = "") -> None:
        """Print the final full panel (both modes) and reset state."""
        if snapshot is not None:
            if self._tty and self._last_height:
                self.stream.write(f"\x1b[{self._last_height}F\x1b[J")
            self.stream.write(render_snapshot(snapshot, title=title) + "\n")
            self.stream.flush()
        self._last_height = 0


def jsonable(obj: Any) -> Any:
    """Best-effort conversion of telemetry payloads to JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    return str(obj)


def drain_events(tracer: "trace.Tracer | None", mark: int) -> "tuple[list[dict], int]":
    """Events appended to ``tracer`` after ``mark``, plus the new mark.

    Only drains tracers marked *foreign* by :func:`worker_tracer` — in
    the in-process (jobs=1) degenerate case the events are already on
    the parent's ring and shipping them back would double-count.
    """
    if tracer is None or not getattr(tracer, "foreign", False):
        return [], mark
    events = tracer.events_since(mark)
    return events, tracer.total_appended
