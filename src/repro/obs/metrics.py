"""Counters, gauges, histograms, and per-step series recording.

Two layers:

* a :class:`MetricsRegistry` of named :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` instruments, enabled per process alongside the
  tracer (instrumented code checks :func:`active` once and skips all
  bookkeeping when it returns ``None``);
* :class:`StepSeries`, the per-step recorder the simulation engine
  feeds: one cumulative snapshot of the run's
  :class:`~repro.sim.stats.RoutingStats` counters per step, plus the
  two buffer gauges, compacted into numpy arrays on demand.

``StepSeries`` stores *cumulative* values, so the reconciliation
``series.cumulative[field][-1] == final_stats[field]`` is exact (no
float re-summation), while :meth:`StepSeries.deltas` still yields the
per-step increments the paper's per-round accounting style wants
(buffer heights of §3.2, interference failures of §3.3).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StepSeries",
    "active",
    "disable",
    "enable",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (also tracks the maximum it ever held)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = -math.inf

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value


class Histogram:
    """Streaming count/sum/min/max/mean of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create instruments by name; snapshot to a flat dict."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {
                k: {"value": g.value, "max": g.max_value} for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: {"count": h.count, "total": h.total, "mean": h.mean, "min": h.min, "max": h.max}
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a foreign :meth:`snapshot` (e.g. a pool worker's) in.

        Counters and histogram count/total add; min/max widen; gauges
        adopt the foreign current value (last merge wins — workers
        report in completion order) and widen ``max_value``.  Used by
        the campaign runner to merge per-cell worker registries into
        the parent's, so one exported ``metrics.json``/OpenMetrics page
        covers the whole fan-out.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, g in snapshot.get("gauges", {}).items():
            inst = self.gauge(name)
            inst.value = float(g["value"])
            inst.max_value = max(inst.max_value, float(g["max"]))
        for name, h in snapshot.get("histograms", {}).items():
            inst = self.histogram(name)
            inst.count += int(h["count"])
            inst.total += float(h["total"])
            inst.min = min(inst.min, float(h["min"]))
            inst.max = max(inst.max, float(h["max"]))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# ----------------------------------------------------------------------
# Module-global registry (one per process, enabled with the tracer)
# ----------------------------------------------------------------------
_ACTIVE: "MetricsRegistry | None" = None


def active() -> "MetricsRegistry | None":
    """The process registry, or ``None`` when metrics are off."""
    return _ACTIVE


def enable(*, fresh: bool = False) -> MetricsRegistry:
    global _ACTIVE
    if _ACTIVE is None or fresh:
        _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


# ----------------------------------------------------------------------
# Per-step series
# ----------------------------------------------------------------------
class StepSeries:
    """Per-step cumulative snapshots of one simulation run.

    The engine calls :meth:`record_step` once per step *after* the
    router closed the step, passing the run's live ``RoutingStats`` and
    the two buffer gauges.  Counter fields are stored cumulatively —
    the final row equals the run's final stats exactly, which is what
    ``python -m repro report`` reconciles.
    """

    #: RoutingStats counters snapshotted cumulatively each step.
    COUNTER_FIELDS = (
        "injected",
        "accepted",
        "dropped",
        "delivered",
        "attempts",
        "successes",
        "interference_failures",
        "churn_drops",
    )
    #: float accumulators snapshotted cumulatively each step.
    ENERGY_FIELDS = ("energy_attempted", "energy_successful")
    #: point-in-time values per step (not cumulative).
    GAUGE_FIELDS = ("total_buffer", "max_buffer_height")
    #: dynamic-topology counters (cumulative, fed by the engine when a
    #: DynamicTopology drives the run; all-zero otherwise).
    CHURN_FIELDS = (
        "events_applied",
        "repair_nodes_touched",
        "conflict_rows_touched",
        "batch_groups",
        "halo_nodes",
    )

    def __init__(self) -> None:
        self._cols: "dict[str, list]" = {
            name: []
            for name in (
                self.COUNTER_FIELDS + self.ENERGY_FIELDS + self.GAUGE_FIELDS + self.CHURN_FIELDS
            )
        }

    def __len__(self) -> int:
        return len(self._cols["delivered"])

    def record_step(
        self,
        stats,
        *,
        total_buffer: int,
        max_buffer: int,
        events_applied: int = 0,
        repair_nodes_touched: int = 0,
        conflict_rows_touched: int = 0,
        batch_groups: int = 0,
        halo_nodes: int = 0,
    ) -> None:
        """Snapshot ``stats`` (a ``RoutingStats``) at the end of one step.

        ``events_applied`` / ``repair_nodes_touched`` /
        ``conflict_rows_touched`` / ``batch_groups`` / ``halo_nodes``
        are the *cumulative* dynamic-topology counters at the end of
        the step (0 for static runs; the last two are fed by the
        batched/tiled appliers only).
        """
        cols = self._cols
        for name in self.COUNTER_FIELDS:
            cols[name].append(int(getattr(stats, name)))
        for name in self.ENERGY_FIELDS:
            cols[name].append(float(getattr(stats, name)))
        cols["total_buffer"].append(int(total_buffer))
        cols["max_buffer_height"].append(int(max_buffer))
        cols["events_applied"].append(int(events_applied))
        cols["repair_nodes_touched"].append(int(repair_nodes_touched))
        cols["conflict_rows_touched"].append(int(conflict_rows_touched))
        cols["batch_groups"].append(int(batch_groups))
        cols["halo_nodes"].append(int(halo_nodes))

    # ------------------------------------------------------------------
    def arrays(self) -> "dict[str, np.ndarray]":
        """Compact cumulative/gauge arrays (int64 counters, float64 energy)."""
        out: "dict[str, np.ndarray]" = {}
        for name in self.COUNTER_FIELDS + self.GAUGE_FIELDS + self.CHURN_FIELDS:
            out[name] = np.asarray(self._cols[name], dtype=np.int64)
        for name in self.ENERGY_FIELDS:
            out[name] = np.asarray(self._cols[name], dtype=np.float64)
        return out

    def deltas(self) -> "dict[str, np.ndarray]":
        """Per-step increments for counters/energy; gauges pass through.

        Integer counter deltas telescope exactly: their sum equals the
        final cumulative value.
        """
        arr = self.arrays()
        out: "dict[str, np.ndarray]" = {}
        for name in self.COUNTER_FIELDS + self.ENERGY_FIELDS + self.CHURN_FIELDS:
            col = arr[name]
            out[name] = np.diff(col, prepend=col.dtype.type(0)) if len(col) else col
        for name in self.GAUGE_FIELDS:
            out[name] = arr[name]
        return out

    def delta_rows(self, start: int = 0) -> "list[dict]":
        """Per-step delta dicts for rows ``[start:]`` (streaming shape).

        Counters and energy carry the step's *increment* (so a consumer
        summing every row it ever received reconstructs the cumulative
        totals exactly — the SSE reconcile contract of
        :mod:`repro.service.stream`); gauges carry the point-in-time
        value.  ``start`` is the number of rows already streamed.
        """
        rows = []
        cols = self._cols
        for i in range(max(0, int(start)), len(self)):
            row: dict = {"step": i}
            for name in self.COUNTER_FIELDS + self.CHURN_FIELDS:
                col = cols[name]
                row[name] = int(col[i]) - (int(col[i - 1]) if i else 0)
            for name in self.ENERGY_FIELDS:
                col = cols[name]
                row[name] = float(col[i]) - (float(col[i - 1]) if i else 0.0)
            for name in self.GAUGE_FIELDS:
                row[name] = cols[name][i]
            rows.append(row)
        return rows

    def prefix_totals(self, count: int) -> dict:
        """Cumulative counter/energy totals after the first ``count`` rows.

        All-zero when ``count`` is 0.  This is the late-subscriber
        baseline of the service's SSE stream: a consumer that starts
        receiving at row ``m`` recovers the exact totals as
        ``prefix_totals(m)`` plus the sum of every delta row from ``m``.
        """
        count = int(count)
        if not 0 <= count <= len(self):
            raise ValueError(f"count must be in [0, {len(self)}], got {count}")
        i = count - 1
        row: dict = {}
        for name in self.COUNTER_FIELDS + self.CHURN_FIELDS:
            row[name] = int(self._cols[name][i]) if i >= 0 else 0
        for name in self.ENERGY_FIELDS:
            row[name] = float(self._cols[name][i]) if i >= 0 else 0.0
        return row

    def final(self, field: str):
        """Last cumulative value of ``field`` (0 when no steps recorded)."""
        col = self._cols[field]
        return col[-1] if col else 0

    def summary(self) -> dict:
        """One row per run for the report table."""
        row: dict = {"steps": len(self)}
        for name in self.COUNTER_FIELDS + self.ENERGY_FIELDS + self.CHURN_FIELDS:
            row[name] = self.final(name)
        for name in self.GAUGE_FIELDS:
            col = self._cols[name]
            row[f"peak_{name}"] = max(col) if col else 0
        return row

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (lists, not arrays)."""
        return {"steps": len(self), "series": {k: list(v) for k, v in self._cols.items()}}

    @classmethod
    def from_dict(cls, payload: dict) -> "StepSeries":
        inst = cls()
        series = payload.get("series", {})
        n = int(payload.get("steps", 0))
        for name, col in inst._cols.items():
            vals = series.get(name)
            if vals is None:
                # Column added after the payload was written (e.g. the
                # churn counters): absent means identically zero.
                vals = [0] * n
            if len(vals) != n:
                raise ValueError(f"series {name!r} has {len(vals)} rows, expected {n}")
            col.extend(vals)
        return inst

    def reconcile(self, final_stats: dict) -> "list[str]":
        """Mismatches between the last snapshot and a final-stats dict.

        Empty list == the series accounts for every counter exactly.
        """
        problems = []
        for name in self.COUNTER_FIELDS:
            if name in final_stats and int(self.final(name)) != int(final_stats[name]):
                problems.append(
                    f"{name}: series ends at {self.final(name)}, stats say {final_stats[name]}"
                )
        for name in self.ENERGY_FIELDS:
            if name in final_stats and float(self.final(name)) != float(final_stats[name]):
                problems.append(
                    f"{name}: series ends at {self.final(name)!r}, stats say {final_stats[name]!r}"
                )
        return problems


def merge_summaries(rows: "Iterable[dict]") -> dict:
    """Column-wise total of :meth:`StepSeries.summary` rows."""
    total: dict = {}
    for row in rows:
        for key, val in row.items():
            if isinstance(val, (int, float)):
                total[key] = total.get(key, 0) + val
    return total
