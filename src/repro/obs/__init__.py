"""repro.obs — structured tracing and metrics for the simulation stack.

Everything here is **off by default**: the engine, routers, MAC,
protocol runtime, and verify harness are instrumented with
:func:`repro.obs.trace.span` calls and registry counters that collapse
to a no-op singleton / ``None`` check until :func:`enable` installs a
process-wide tracer and metrics registry.

Typical use (what ``python -m repro <exp> --trace DIR`` does)::

    from repro import obs
    obs.enable()
    ...  # run experiments; spans + step series accumulate in memory
    paths = obs.export("trace-dir")   # trace.jsonl, trace.chrome.json,
                                      # series.json, metrics.json

``trace.chrome.json`` loads directly in Perfetto / ``chrome://tracing``;
``python -m repro report trace-dir`` renders the ASCII phase-time
breakdown and per-step series summary.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import metrics, telemetry, trace

__all__ = [
    "SERIES_SCHEMA",
    "disable",
    "enable",
    "export",
    "is_enabled",
    "metrics",
    "telemetry",
    "trace",
]

SERIES_SCHEMA = "repro-step-series/v1"


def enable(capacity: int = trace.DEFAULT_CAPACITY, *, fresh: bool = False) -> trace.Tracer:
    """Turn on tracing and metrics for this process; returns the tracer."""
    metrics.enable(fresh=fresh)
    return trace.enable(capacity, fresh=fresh)


def disable() -> None:
    """Turn both layers off; instrumentation reverts to no-ops."""
    trace.disable()
    metrics.disable()


def is_enabled() -> bool:
    return trace.is_enabled()


def export(directory: "str | Path", *, tracer: "trace.Tracer | None" = None) -> "dict[str, Path]":
    """Write every capture of the active (or given) tracer to ``directory``.

    Produces ``trace.jsonl``, ``trace.chrome.json``, ``series.json``,
    ``metrics.json`` and ``metrics.om`` (the OpenMetrics text rendering
    of the same snapshot); returns the paths keyed by artifact name.
    """
    tr = tracer if tracer is not None else trace.active()
    if tr is None:
        raise RuntimeError("tracing is not enabled; call repro.obs.enable() first")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    events = tr.events()
    paths = {
        "jsonl": trace.write_jsonl(events, directory / "trace.jsonl"),
        "chrome": trace.write_chrome_trace(events, directory / "trace.chrome.json"),
    }
    series_doc = {
        "schema": SERIES_SCHEMA,
        "dropped_events": tr.dropped,
        "runs": tr.series_records(),
    }
    paths["series"] = directory / "series.json"
    paths["series"].write_text(json.dumps(series_doc, default=str) + "\n")
    reg = metrics.active()
    snapshot = reg.snapshot() if reg is not None else {}
    paths["metrics"] = directory / "metrics.json"
    paths["metrics"].write_text(json.dumps(snapshot, default=str, indent=2) + "\n")
    paths["openmetrics"] = directory / "metrics.om"
    paths["openmetrics"].write_text(telemetry.to_openmetrics(snapshot))
    return paths
