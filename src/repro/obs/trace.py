"""Low-overhead span tracing with JSONL and Chrome-trace export.

The tracer records *spans* — named intervals measured with
``time.perf_counter_ns`` — into a bounded in-memory ring.  Call sites
use the module-level helper so instrumentation is a no-op singleton
when tracing is off::

    from repro.obs import trace

    with trace.span("engine.step", step=t):
        ...  # timed only when a tracer is active

Disabled cost is one module-global read, a ``None`` check, and a pair
of empty ``__enter__``/``__exit__`` calls — small enough to leave in
hot loops permanently (``benchmarks/bench_obs_overhead.py`` gates this
at <5% on the e4/e6 quick runs).

Two export formats:

* ``trace.jsonl`` — one event object per line (machine-friendly,
  nanosecond timestamps), consumed by ``python -m repro report``;
* ``trace.chrome.json`` — the Chrome trace-event format (``ph: "X"``
  complete events, microsecond timestamps), loadable in Perfetto or
  ``chrome://tracing``.  Events carry the recording process id, so
  traces merged across a pool render one track per worker.

Every process keeps at most one active tracer (module global); the
harness serializes worker events back through ``ClaimResult`` and the
parent :meth:`Tracer.ingest`\\ s them before export.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "NOOP_SPAN",
    "Tracer",
    "active",
    "chrome_trace_events",
    "disable",
    "enable",
    "is_enabled",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]

#: default ring capacity (events); quick experiment runs emit ~10^4.
DEFAULT_CAPACITY = 1 << 20


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Accept (and drop) late span attributes."""


NOOP_SPAN = _NoopSpan()


class _Span:
    """One live interval; appends its event to the tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter_ns() - self._t0
        self._tracer._append(
            {
                "name": self.name,
                "ts_ns": self._t0,
                "dur_ns": dur,
                "pid": self._tracer.pid,
                "args": self.args,
            }
        )
        return False

    def set(self, **args) -> None:
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.args.update(args)


class Tracer:
    """A bounded ring of span events plus registered step series.

    Parameters
    ----------
    capacity:
        Maximum events retained (oldest dropped first).  The drop count
        is tracked so exports can report truncation instead of lying
        silently.
    """

    #: set by :func:`repro.obs.telemetry.worker_tracer` on tracers it
    #: creates inside fork-pool workers — events on a foreign tracer
    #: must be drained back to the parent through the result channel.
    foreign = False

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.pid = os.getpid()
        self._events: "deque[dict]" = deque(maxlen=self.capacity)
        #: guards the ring + counters: sessions stepped in executor
        #: threads (repro.service) may share one tracer, so appends,
        #: drains, and series registration must not interleave torn.
        self._lock = threading.Lock()
        #: monotonic count of events ever appended (survives ring drops)
        self.total_appended = 0
        #: step-series records registered by simulation runs
        self.series: "list[dict]" = []
        self._run_counter = 0

    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
            self.total_appended += 1

    def span(self, name: str, **args) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        self._append(
            {
                "name": name,
                "ts_ns": time.perf_counter_ns(),
                "dur_ns": 0,
                "pid": self.pid,
                "args": args,
            }
        )

    def ingest(self, events: "Iterable[dict]") -> int:
        """Append foreign event dicts (e.g. from pool workers); returns count."""
        k = 0
        for ev in events:
            self._append(dict(ev))
            k += 1
        return k

    # ------------------------------------------------------------------
    def events(self) -> "list[dict]":
        """All retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def events_since(self, marker: int) -> "list[dict]":
        """Events appended after ``marker`` (= ``total_appended`` earlier).

        If the ring dropped events in between, returns what survived.
        """
        with self._lock:
            new = self.total_appended - int(marker)
            if new <= 0:
                return []
            evs = list(self._events)
        return evs[-new:] if new < len(evs) else evs

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.total_appended - len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.total_appended = 0
            self.series.clear()
            self._run_counter = 0

    # ------------------------------------------------------------------
    def next_run_label(self, hint: str = "run") -> str:
        """A unique label for one simulation run within this tracer."""
        with self._lock:
            label = f"run-{self._run_counter:03d}.{hint}"
            self._run_counter += 1
        return label

    def add_series(self, label: str, series, final_stats: "dict | None" = None) -> None:
        """Register one run's :class:`~repro.obs.metrics.StepSeries`."""
        with self._lock:
            self.series.append(
                {"name": label, "pid": self.pid, "series": series, "final_stats": final_stats}
            )

    def ingest_series(self, records: "Iterable[dict]") -> int:
        """Adopt already-flattened series records (e.g. from pool workers)."""
        k = 0
        for rec in records:
            self.series.append({"_flat": dict(rec)})
            k += 1
        return k

    def series_records(self) -> "list[dict]":
        """JSON-ready series records (``StepSeries`` flattened via to_dict)."""
        out = []
        for rec in self.series:
            if "_flat" in rec:
                out.append(rec["_flat"])
                continue
            series = rec["series"]
            payload = series.to_dict() if hasattr(series, "to_dict") else dict(series)
            out.append(
                {
                    "name": rec["name"],
                    "pid": rec["pid"],
                    "final_stats": rec["final_stats"],
                    **payload,
                }
            )
        return out


# ----------------------------------------------------------------------
# Module-global tracer (one per process)
# ----------------------------------------------------------------------
_ACTIVE: "Tracer | None" = None


def active() -> "Tracer | None":
    """The process's tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def enable(capacity: int = DEFAULT_CAPACITY, *, fresh: bool = False) -> Tracer:
    """Install (or return) the process tracer.

    ``fresh=True`` replaces any existing tracer — pool workers use it so
    a forked parent tracer (wrong pid, stale events) is discarded.
    """
    global _ACTIVE
    if _ACTIVE is None or fresh:
        _ACTIVE = Tracer(capacity)
    return _ACTIVE


def disable() -> None:
    """Remove the process tracer; subsequent spans become no-ops."""
    global _ACTIVE
    _ACTIVE = None


def span(name: str, **args):
    """A span on the active tracer, or the no-op singleton when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return _Span(tracer, name, args)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def write_jsonl(events: "Iterable[dict]", path: "str | Path") -> Path:
    """One event object per line; nanosecond timestamps preserved."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps(ev, default=str) + "\n")
    return path


def chrome_trace_events(events: "Iterable[dict]") -> "list[dict]":
    """Convert internal events to Chrome trace-event ``ph: "X"`` records.

    Timestamps become microseconds (the format's unit); the recording
    pid doubles as the tid so multi-process traces get one row per
    worker in Perfetto.  Events are ordered by ``(pid, ts)`` — merged
    multi-process captures (pool workers arrive batched, out of line
    with the parent's spans) still render each track monotonically.
    """
    out = []
    for ev in sorted(events, key=lambda e: (int(e.get("pid", 0)), e["ts_ns"])):
        pid = int(ev.get("pid", 0))
        out.append(
            {
                "name": ev["name"],
                "ph": "X",
                "ts": ev["ts_ns"] / 1000.0,
                "dur": ev["dur_ns"] / 1000.0,
                "pid": pid,
                "tid": pid,
                "args": ev.get("args") or {},
            }
        )
    return out


def write_chrome_trace(events: "Iterable[dict]", path: "str | Path") -> Path:
    """Write the Chrome trace-event JSON envelope for ``events``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc: "dict[str, Any]" = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(doc, default=str) + "\n")
    return path
