"""Render a captured trace directory as ASCII tables.

``python -m repro report DIR`` loads the artifacts written by
:func:`repro.obs.export` and prints

* a **phase-time breakdown** — one row per span name with call count,
  total/mean/max duration and the share of total traced time, across
  every process that contributed events;
* a **per-step series summary** — one row per recorded simulation run
  (steps, delivered, dropped, energy, peak buffer heights) with an
  exactness check against the run's final ``RoutingStats``, plus a
  merged TOTAL row built with :meth:`RoutingStats.merge`;
* the metrics-registry snapshot, when any counters were recorded.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.tables import render_table
from repro.obs.metrics import StepSeries
from repro.sim.stats import RoutingStats

__all__ = [
    "load_events",
    "load_series_runs",
    "phase_breakdown_rows",
    "render_report",
    "series_summary_rows",
]


def load_events(directory: "str | Path") -> "list[dict]":
    """Events from ``trace.jsonl`` (empty list when absent)."""
    path = Path(directory) / "trace.jsonl"
    if not path.is_file():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def load_series_runs(directory: "str | Path") -> "list[dict]":
    """Run records from ``series.json`` (empty list when absent)."""
    path = Path(directory) / "series.json"
    if not path.is_file():
        return []
    return json.loads(path.read_text()).get("runs", [])


def phase_breakdown_rows(events: "list[dict]") -> "list[dict]":
    """Aggregate span events by name, longest total first."""
    agg: "dict[str, dict]" = {}
    for ev in events:
        rec = agg.get(ev["name"])
        dur = int(ev.get("dur_ns", 0))
        if rec is None:
            agg[ev["name"]] = {
                "calls": 1,
                "total_ns": dur,
                "max_ns": dur,
                "pids": {ev.get("pid", 0)},
            }
        else:
            rec["calls"] += 1
            rec["total_ns"] += dur
            if dur > rec["max_ns"]:
                rec["max_ns"] = dur
            rec["pids"].add(ev.get("pid", 0))
    grand_total = sum(rec["total_ns"] for rec in agg.values()) or 1
    rows = []
    for name, rec in sorted(agg.items(), key=lambda kv: -kv[1]["total_ns"]):
        rows.append(
            {
                "span": name,
                "calls": rec["calls"],
                "total_ms": round(rec["total_ns"] / 1e6, 3),
                "mean_us": round(rec["total_ns"] / rec["calls"] / 1e3, 2),
                "max_us": round(rec["max_ns"] / 1e3, 2),
                "share": f"{100.0 * rec['total_ns'] / grand_total:.1f}%",
                "procs": len(rec["pids"]),
            }
        )
    return rows


def series_summary_rows(runs: "list[dict]") -> "tuple[list[dict], RoutingStats | None]":
    """One row per recorded run plus the merged ``RoutingStats`` total.

    Each row carries ``reconciled`` — whether the per-step cumulative
    series ends exactly at the run's final stats counters.
    """
    rows: "list[dict]" = []
    merged: "RoutingStats | None" = None
    for rec in runs:
        series = StepSeries.from_dict(rec)
        summary = series.summary()
        final = rec.get("final_stats") or {}
        row = {
            "run": rec.get("name", "?"),
            "steps": summary["steps"],
            "delivered": summary["delivered"],
            "dropped": summary["dropped"],
            "interference_failures": summary["interference_failures"],
            "energy": round(summary["energy_attempted"], 4),
            "peak_total_buffer": summary["peak_total_buffer"],
            "peak_max_height": summary["peak_max_buffer_height"],
            "reconciled": not series.reconcile(final) if final else None,
        }
        rows.append(row)
        if final:
            stats = RoutingStats.from_dict(final)
            merged = stats if merged is None else merged.merge(stats)
    return rows, merged


def render_report(directory: "str | Path") -> str:
    """The full report for one trace directory, as printable text."""
    directory = Path(directory)
    sections = []

    events = load_events(directory)
    if events:
        sections.append(
            render_table(
                phase_breakdown_rows(events),
                title=f"phase-time breakdown — {len(events)} span events",
            )
        )
    else:
        sections.append(f"(no trace.jsonl under {directory})")

    runs = load_series_runs(directory)
    if runs:
        rows, merged = series_summary_rows(runs)
        if merged is not None:
            total = merged.to_dict()
            rows.append(
                {
                    "run": "TOTAL (merged)",
                    "steps": total["steps"],
                    "delivered": total["delivered"],
                    "dropped": total["dropped"],
                    "interference_failures": total["interference_failures"],
                    "energy": round(total["energy_attempted"], 4),
                    "peak_max_height": total["max_buffer_height"],
                }
            )
        sections.append(
            render_table(rows, title=f"per-step series summary — {len(runs)} runs")
        )
    else:
        sections.append(f"(no series.json under {directory})")

    metrics_path = directory / "metrics.json"
    if metrics_path.is_file():
        snap = json.loads(metrics_path.read_text())
        counters = snap.get("counters") or {}
        if counters:
            sections.append(
                render_table(
                    [{"counter": k, "value": v} for k, v in counters.items()],
                    title="metrics counters",
                )
            )
    return "\n\n".join(sections)
