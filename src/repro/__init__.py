"""repro — reproduction of *On Local Algorithms for Topology Control and
Routing in Ad Hoc Networks* (Jia, Rajaraman, Scheideler; SPAA 2003).

Public API surface
------------------
Topology control (§2):
    :func:`theta_algorithm` (ΘALG), :class:`ThetaTopology`,
    :func:`transmission_graph`, :func:`yao_graph`, the proximity-graph
    baselines, and the stretch/degree/connectivity metrics.

Interference (§2.4):
    :class:`InterferenceModel`, :func:`interference_number`,
    :func:`greedy_interference_schedule`, θ-path schedule replacement.

Routing (§3):
    :class:`BalancingRouter` ((T, γ)-balancing),
    :class:`RandomActivationMAC` ((T, γ, I)-balancing),
    :class:`HoneycombRouter` (§3.4), witnessed adversarial scenarios,
    the simulation engine, and competitive-ratio reporting.

Quickstart
----------
>>> import numpy as np
>>> from repro import uniform_points, max_range_for_connectivity
>>> from repro import theta_algorithm, transmission_graph, energy_stretch
>>> pts = uniform_points(100, rng=0)
>>> D = max_range_for_connectivity(pts, slack=1.5)
>>> topo = theta_algorithm(pts, np.pi / 9, D)
>>> gstar = transmission_graph(pts, D)
>>> energy_stretch(topo.graph, gstar).max_stretch  # doctest: +SKIP
1.37...
"""

from repro.geometry import (
    uniform_points,
    grid_points,
    clustered_points,
    civilized_points,
    ring_points,
    line_points,
    star_points,
    GridIndex,
    HexGrid,
    SectorPartition,
)
from repro.graphs import (
    GeometricGraph,
    transmission_graph,
    max_range_for_connectivity,
    yao_graph,
    gabriel_graph,
    relative_neighborhood_graph,
    restricted_delaunay_graph,
    knn_graph,
    euclidean_mst,
    energy_stretch,
    distance_stretch,
    stretch_summary,
    degrees,
    max_degree,
    is_connected,
)
from repro.core import (
    ThetaTopology,
    theta_algorithm,
    theta_path,
    replace_schedule_edges,
    path_congestion,
    transform_schedules,
    verify_interference_free,
    BalancingRouter,
    BalancingConfig,
    AnycastBalancingRouter,
    RandomActivationMAC,
    HoneycombRouter,
    HoneycombConfig,
    CompetitiveReport,
    theorem31_parameters,
    theorem33_parameters,
)
from repro.graphs import greedy_spanner, global_yao_sparsification
from repro.interference import (
    InterferenceModel,
    PhysicalInterferenceModel,
    interference_number,
    interference_sets,
    greedy_interference_schedule,
)
from repro.localsim import LocalRuntime
from repro.dynamic import (
    EventTrace,
    LiveEventSchedule,
    NodeJoin,
    NodeLeave,
    NodeMove,
    FailStop,
    Recover,
    poisson_churn_trace,
    failstop_trace,
    mobility_trace,
    random_event_trace,
    merge_traces,
    IncrementalTheta,
    DynamicTopology,
    RepairStats,
    DynamicInterference,
    DynamicMAC,
    ConflictRepairStats,
    BatchApplyStats,
    apply_events_parallel,
    group_events,
)
from repro.sim import (
    SimulationEngine,
    SimulationResult,
    WitnessedScenario,
    permutation_scenario,
    hotspot_scenario,
    flood_scenario,
    stream_scenario,
    hotspot_stream_scenario,
    random_scenario_on_graph,
    Schedule,
    validate_schedule,
    RoutingStats,
    ShortestPathRouter,
    RandomWalkRouter,
    TrackedBalancingRouter,
    GreedyGeographicRouter,
    greedy_geographic_path,
    save_scenario,
    load_scenario,
    save_event_trace,
    load_event_trace,
    bounded_adversary_scenario,
    max_window_load,
    StaticMobility,
    RandomWalkMobility,
    RandomWaypointMobility,
    time_expanded_max_throughput,
)

# observability (off by default; see docs/observability.md)
from repro import obs

__version__ = "1.0.0"

__all__ = [
    # geometry
    "uniform_points",
    "grid_points",
    "clustered_points",
    "civilized_points",
    "ring_points",
    "line_points",
    "star_points",
    "GridIndex",
    "HexGrid",
    "SectorPartition",
    # graphs
    "GeometricGraph",
    "transmission_graph",
    "max_range_for_connectivity",
    "yao_graph",
    "gabriel_graph",
    "relative_neighborhood_graph",
    "restricted_delaunay_graph",
    "knn_graph",
    "euclidean_mst",
    "greedy_spanner",
    "global_yao_sparsification",
    "energy_stretch",
    "distance_stretch",
    "stretch_summary",
    "degrees",
    "max_degree",
    "is_connected",
    # core
    "ThetaTopology",
    "theta_algorithm",
    "theta_path",
    "replace_schedule_edges",
    "path_congestion",
    "transform_schedules",
    "verify_interference_free",
    "BalancingRouter",
    "BalancingConfig",
    "AnycastBalancingRouter",
    "RandomActivationMAC",
    "HoneycombRouter",
    "HoneycombConfig",
    "CompetitiveReport",
    "theorem31_parameters",
    "theorem33_parameters",
    # interference
    "InterferenceModel",
    "PhysicalInterferenceModel",
    "interference_number",
    "interference_sets",
    "greedy_interference_schedule",
    # localsim
    "LocalRuntime",
    # observability
    "obs",
    # dynamic networks
    "EventTrace",
    "LiveEventSchedule",
    "NodeJoin",
    "NodeLeave",
    "NodeMove",
    "FailStop",
    "Recover",
    "poisson_churn_trace",
    "failstop_trace",
    "mobility_trace",
    "random_event_trace",
    "merge_traces",
    "IncrementalTheta",
    "DynamicTopology",
    "RepairStats",
    "DynamicInterference",
    "DynamicMAC",
    "ConflictRepairStats",
    "BatchApplyStats",
    "apply_events_parallel",
    "group_events",
    # sim
    "SimulationEngine",
    "SimulationResult",
    "WitnessedScenario",
    "permutation_scenario",
    "hotspot_scenario",
    "flood_scenario",
    "stream_scenario",
    "hotspot_stream_scenario",
    "random_scenario_on_graph",
    "Schedule",
    "validate_schedule",
    "RoutingStats",
    "ShortestPathRouter",
    "RandomWalkRouter",
    "TrackedBalancingRouter",
    "GreedyGeographicRouter",
    "greedy_geographic_path",
    "save_scenario",
    "load_scenario",
    "save_event_trace",
    "load_event_trace",
    "bounded_adversary_scenario",
    "max_window_load",
    "StaticMobility",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "time_expanded_max_throughput",
    "__version__",
]
