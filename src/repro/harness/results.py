"""Versioned JSON result records for claim verification runs.

Each verified claim produces one ``<claim>.json`` under the results
directory (``benchmarks/results/`` by default, overridable through the
``REPRO_RESULTS_DIR`` environment variable so CI can redirect
artifacts).  The schema, ``repro-claim-result/v1``:

.. code-block:: json

    {
      "schema": "repro-claim-result/v1",
      "claim": "e2",
      "title": "O(1) energy-stretch of N",
      "paper_ref": "Theorem 2.2",
      "profile": "quick",
      "seed": 0,
      "params": {"ns": [48], "...": "..."},
      "rows": [{"...": "..."}],
      "n_rows": 4,
      "passed": true,
      "failures": [],
      "runtime_seconds": 1.73,
      "cache": {"hits": 2, "misses": 3, "evictions": 0}
    }

Non-finite floats (the tables use ``inf``/``nan`` for absent bounds)
are serialized as the strings ``"inf"``, ``"-inf"`` and ``"nan"`` so
the files stay strict JSON; numpy scalars are unwrapped to their
Python equivalents.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

SCHEMA = "repro-claim-result/v1"

__all__ = [
    "SCHEMA",
    "ClaimResult",
    "ResultsDirError",
    "default_results_dir",
    "jsonify",
    "resolve_results_dir",
    "write_result",
]


class ResultsDirError(OSError):
    """The results directory cannot be created or written.

    Raised with an actionable message naming the offending path and the
    ``REPRO_RESULTS_DIR`` override, so both ``verify`` and ``campaign``
    fail the same way when pointed at a read-only location.
    """


@dataclass
class ClaimResult:
    """Outcome of verifying one claim under one parameter profile."""

    claim: str
    title: str
    paper_ref: str
    profile: str
    seed: int
    params: dict
    rows: "list[dict]"
    failures: "list[str]"
    runtime_seconds: float
    cache: dict = field(default_factory=dict)
    #: observability capture for this claim (``{"events": [...],
    #: "series": [...]}``); empty unless the run was traced.  Events are
    #: plain dicts so the record survives the process pool and lands in
    #: the JSON, where merged Chrome traces are rebuilt from them.
    trace: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures

    def record(self) -> dict:
        rec = {"schema": SCHEMA, **asdict(self)}
        rec["n_rows"] = len(self.rows)
        rec["passed"] = self.passed
        return jsonify(rec)


def jsonify(obj):
    """Recursively convert a result payload to strict-JSON-safe values."""
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, (int, str)) or obj is None:
        return obj
    item = getattr(obj, "item", None)  # numpy scalars (incl. np.bool_)
    if callable(item):
        return jsonify(item())
    to_dict = getattr(obj, "to_dict", None)  # RoutingStats, StepSeries, ...
    if callable(to_dict):
        return jsonify(to_dict())
    return str(obj)


def default_results_dir() -> Path:
    """``$REPRO_RESULTS_DIR`` if set, else ``benchmarks/results`` (cwd-relative)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    return Path(env) if env else Path("benchmarks") / "results"


def resolve_results_dir(subdir: "str | None" = None, *, create: bool = True) -> Path:
    """The directory result stores live in, created and checked writable.

    Both the ``verify`` claim records and the campaign stores resolve
    their output location through this single helper, so the
    ``REPRO_RESULTS_DIR`` override behaves identically for each.  With
    ``subdir`` the path is ``<results_dir>/<subdir>`` (campaigns use
    ``campaigns/<name>``).  Raises :class:`ResultsDirError` with the
    offending path when the directory cannot be created or is not
    writable.
    """
    base = default_results_dir()
    path = base / subdir if subdir else base
    if not create:
        return path
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ResultsDirError(
            f"cannot create results directory {path}: {exc}. "
            "Set REPRO_RESULTS_DIR to a writable location."
        ) from exc
    if not os.access(path, os.W_OK):
        raise ResultsDirError(
            f"results directory {path} is not writable. "
            "Set REPRO_RESULTS_DIR to a writable location."
        )
    return path


def write_result(result: ClaimResult, results_dir: "Path | None" = None) -> Path:
    """Persist one claim result as ``<results_dir>/<claim>.json``."""
    out_dir = Path(results_dir) if results_dir is not None else resolve_results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.claim}.json"
    path.write_text(json.dumps(result.record(), indent=2, allow_nan=False) + "\n")
    return path
