"""Tolerance/bound predicates for the E1–E24 claims.

Each ``check_eN(rows, profile)`` receives the structured rows an
experiment harness returned and the parameter profile it ran under
(``"full"`` or ``"quick"``), and returns a list of human-readable
violation messages — empty means the paper's claim held.  The
predicates mirror the assertions the benchmark suite makes on the
full-scale tables, written defensively so they are also meaningful on
the scaled-down quick parameter sets (sub-checks that need a sweep —
e.g. flatness across several n — degrade to trivially-true on a
single-point sweep rather than crash).

The numeric tolerances live here as module constants so a claim can be
deliberately broken in one place (tighten ``E2_STRETCH_CEILING`` below
the measured ≈1.157 and ``repro verify`` must fail — the CI gate's
self-test).

All functions are top-level and pure so claim records stay picklable
across the runner's process pool.
"""

from __future__ import annotations

import math

# -- tolerances (kept break-able in one place) -------------------------------
E1_REQUIRE_CONNECTED = True
E2_STRETCH_CEILING = 3.0  # generous constant for θ ≤ π/6, κ ≤ 4 (Theorem 2.2)
E2_FLATNESS_RATIO = 1.5
E3_DISTANCE_STRETCH_CEILING = 4.0  # Theorem 2.7 constant for civilized inputs
E4_LOG_RATIO_SPREAD = 2.5  # I/ln n spread tolerated within one δ-slice
E5_CONGESTION_BOUND = 6  # Lemma 2.9
E6_ABSOLUTE_FLOOR = 0.45  # raw delivered/witness sanity floor
E7_MAC_SUCCESS_FLOOR = 0.5  # Lemma 3.2
E8_PRODUCT_SPREAD = 0.05  # ratio·ln n bounded away from collapse
E9_UNDERLOAD_DELIVERY = 0.75
E10_STRETCH_CEILING = 3.0
E11_MSGS_PER_NODE_SPREAD = 1.5
E13_AGREEMENT_FLOOR = 0.5
E13_OPTIMISM_CEILING = 0.1
E14_STRETCH_CEILING = 4.0
E15_PROBE_CEILING = 10.0
E16_CHURN_FLOOR = 0.4
E16_ADVANTAGE = 1.5
E17_GSTAR_DELIVERY_FLOOR = 0.9
E18_THROUGHPUT_PARITY = 0.9
E18_COST_PARITY = 1.2
E19_CIVILIZED_FLATNESS = 3.0
E20_STABILITY_RATIO = 1.5
E21_MONOTONE_SLACK = 0.03
E22_RECALL_WITH_RETRIES = 0.99
E23_TOUCH_CEILING = 90  # p95 nodes touched per event (measured ≈ 29–58)
E23_FLATNESS_RATIO = 3.0  # p95 touched may grow ≤ 3× while n grows ≥ 8×
E23_RADIUS_BOUND = 2.0  # update radius never exceeds 2D (construction)
E23_SPEEDUP_FLOOR = 5.0  # incremental vs full rebuild, full profile only
E24_ROW_CEILING = 40  # p95 conflict rows recomputed per event (measured ≈ 13–19)
E24_FLATNESS_RATIO = 3.0  # p95 rows may grow ≤ 3× while n grows ≥ 8×
E24_SPEEDUP_FLOOR = 5.0  # incremental row repair vs full rebuild, full profile only


def _finite(x) -> bool:
    return isinstance(x, (int, float)) and math.isfinite(x)


def check_e1(rows, profile):
    fails = []
    for r in rows:
        if E1_REQUIRE_CONNECTED and not r["N_connected"]:
            fails.append(f"N disconnected at {r['distribution']}/n={r['n']}/θ={r['theta_deg']}°")
        if not r["within_bound"]:
            fails.append(
                f"max degree {r['max_degree']} exceeds 4π/θ = "
                f"{r['degree_bound_4pi_over_theta']} at n={r['n']}/θ={r['theta_deg']}°"
            )
    return fails


def check_e2(rows, profile):
    fails = []
    by_n: dict[int, list[float]] = {}
    for r in rows:
        if r["disconnected_pairs"] != 0:
            fails.append(f"{r['disconnected_pairs']} disconnected pairs at n={r['n']}")
        if r["energy_stretch_max"] >= E2_STRETCH_CEILING:
            fails.append(
                f"energy stretch {r['energy_stretch_max']} ≥ ceiling {E2_STRETCH_CEILING} "
                f"at {r['distribution']}/n={r['n']}/θ={r['theta_deg']}°/κ={r['kappa']}"
            )
        by_n.setdefault(r["n"], []).append(r["energy_stretch_max"])
    maxima = [max(v) for v in by_n.values()]
    if len(maxima) > 1 and max(maxima) / min(maxima) >= E2_FLATNESS_RATIO:
        fails.append(
            f"stretch not flat in n: per-n maxima spread "
            f"{max(maxima) / min(maxima):.2f} ≥ {E2_FLATNESS_RATIO}"
        )
    return fails


def check_e3(rows, profile):
    fails = []
    for r in rows:
        if not r["connected"]:
            fails.append(f"N disconnected at n={r['n']}/λ={r['lambda_target']}")
        if r["distance_stretch_max"] >= E3_DISTANCE_STRETCH_CEILING:
            fails.append(
                f"distance stretch {r['distance_stretch_max']} ≥ "
                f"{E3_DISTANCE_STRETCH_CEILING} at n={r['n']}/λ={r['lambda_target']}"
            )
    return fails


def check_e4(rows, profile):
    fails = []
    by_delta: dict[float, list[dict]] = {}
    for r in rows:
        by_delta.setdefault(r["delta"], []).append(r)
    for delta, sub in by_delta.items():
        ratios = [r["I_over_ln_n"] for r in sub]
        if max(ratios) > E4_LOG_RATIO_SPREAD * max(min(ratios), 1.0):
            fails.append(
                f"I/ln n not bounded at δ={delta}: ratios {ratios} spread beyond "
                f"{E4_LOG_RATIO_SPREAD}×"
            )
        big = max(sub, key=lambda r: r["n"])
        if "I_Gstar_mean" in big and not big["I_N_mean"] < big["I_Gstar_mean"]:
            fails.append(
                f"interference of N ({big['I_N_mean']}) not below G* "
                f"({big['I_Gstar_mean']}) at δ={delta}, n={big['n']}"
            )
    return fails


def check_e5(rows, profile):
    fails = []
    for r in rows:
        if not r["within_bound"]:
            fails.append(
                f"edge congestion {r['max_edge_congestion']} exceeds Lemma 2.9 bound "
                f"{E5_CONGESTION_BOUND} at n={r['n']}"
            )
        if not r["paths_replaced"] > 0:
            fails.append(f"no θ-path replacements performed at n={r['n']}")
    return fails


def check_e6(rows, profile):
    fails = []
    theorem_rows = [r for r in rows if _finite(r.get("cost_bound"))]
    if not theorem_rows:
        return ["no theorem-governed rows produced"]
    for r in theorem_rows:
        slack = r["delivered"] + r["leftover"]
        if slack < r["target_fraction"] * r["witness"]:
            fails.append(
                f"throughput below (1−ε) target at {r['workload']}/ε={r['epsilon']}: "
                f"delivered+leftover {slack} < {r['target_fraction']}·{r['witness']}"
            )
        # The absolute floor is calibrated for the full horizon; at the
        # quick tier the ramp-up leftover dominates short grid runs, so
        # only the theorem-governed checks gate there.
        if profile == "full" and r["throughput_ratio"] < E6_ABSOLUTE_FLOOR:
            fails.append(
                f"throughput ratio {r['throughput_ratio']} below floor "
                f"{E6_ABSOLUTE_FLOOR} at {r['workload']}/ε={r['epsilon']}"
            )
        if r["cost_ratio"] > r["cost_bound"]:
            fails.append(
                f"cost ratio {r['cost_ratio']} exceeds 1+2/ε bound {r['cost_bound']} "
                f"at {r['workload']}/ε={r['epsilon']}"
            )
    return fails


def check_e7(rows, profile):
    fails = []
    above = sum(bool(r["above_floor"]) for r in rows)
    need = max(1, (len(rows) + 1) // 2)
    if above < need:
        fails.append(
            f"only {above}/{len(rows)} trials above the (1−ε)/(8I) floor (need ≥ {need})"
        )
    for r in rows:
        if r["mac_success_rate"] < E7_MAC_SUCCESS_FLOOR:
            fails.append(
                f"MAC success rate {r['mac_success_rate']} below Lemma 3.2 floor "
                f"{E7_MAC_SUCCESS_FLOOR} in trial {r['trial']}"
            )
    return fails


def check_e8(rows, profile):
    fails = []
    for r in rows:
        if not r["delivered"] > 0:
            fails.append(f"nothing delivered at n={r['n']}")
    prods = [r["ratio_x_ln_n"] for r in rows]
    if prods and min(prods) <= E8_PRODUCT_SPREAD * max(prods):
        fails.append(
            f"throughput·ln n collapses with n: {prods} (min ≤ {E8_PRODUCT_SPREAD}·max)"
        )
    return fails


def check_e9(rows, profile):
    fails = []
    for r in rows:
        if not r["above_floor"]:
            fails.append(
                f"contestant success {r['contestant_success_rate']} below Lemma 3.7 "
                f"floor at Δ={r['delta']}/{r['regime']}"
            )
        if r["regime"] == "underload" and r["delivery_fraction"] < E9_UNDERLOAD_DELIVERY:
            fails.append(
                f"underload delivery {r['delivery_fraction']} < {E9_UNDERLOAD_DELIVERY} "
                f"at Δ={r['delta']}"
            )
        if r["regime"] == "overload" and not r["delivered"] > 0:
            fails.append(f"overload delivered nothing at Δ={r['delta']}")
    return fails


def check_e10(rows, profile):
    fails = []
    by_dist: dict[str, dict[str, dict]] = {}
    for r in rows:
        by_dist.setdefault(r["distribution"], {})[r["topology"]] = r
    for dist, by_name in by_dist.items():
        theta, gstar, mst = by_name["ThetaALG(N)"], by_name["Gstar"], by_name["MST"]
        if not theta["connected"]:
            fails.append(f"ΘALG disconnected on {dist}")
        if not (_finite(theta["energy_stretch"]) and theta["energy_stretch"] < E10_STRETCH_CEILING):
            fails.append(
                f"ΘALG energy stretch {theta['energy_stretch']} ≥ {E10_STRETCH_CEILING} on {dist}"
            )
        if not (theta["max_degree"] < gstar["max_degree"] or gstar["max_degree"] <= 8):
            fails.append(
                f"ΘALG degree {theta['max_degree']} not below G* {gstar['max_degree']} on {dist}"
            )
        if _finite(mst["energy_stretch"]) and mst["energy_stretch"] < theta["energy_stretch"] - 1e-9:
            fails.append(f"MST beats ΘALG on energy stretch on {dist} (unexpected)")
    return fails


def check_e11(rows, profile):
    fails = []
    for r in rows:
        if not r["matches_centralized"]:
            fails.append(f"local protocol output diverges from centralized at n={r['n']}")
        if r["rounds"] != 3:
            fails.append(f"protocol took {r['rounds']} rounds (≠ 3) at n={r['n']}")
    per_node = [r["msgs_per_node"] for r in rows]
    if len(per_node) > 1 and max(per_node) / min(per_node) >= E11_MSGS_PER_NODE_SPREAD:
        fails.append(f"messages/node not flat in n: {per_node}")
    return fails


def check_e12(rows, profile):
    fails = []
    t_min = min(r["threshold_T"] for r in rows)
    t_max = max(r["threshold_T"] for r in rows)
    h_max = max(r["height_H"] for r in rows)
    at_tmin = sorted((r for r in rows if r["threshold_T"] == t_min), key=lambda r: r["height_H"])
    deliv = [r["delivered"] for r in at_tmin]
    if deliv != sorted(deliv):
        fails.append(f"throughput not monotone in buffer height at T={t_min}: {deliv}")
    tails = {
        r["threshold_T"]: r["witness"] - r["delivered"] for r in rows if r["height_H"] == h_max
    }
    if t_max != t_min and tails[t_max] < tails[t_min]:
        fails.append(
            f"stuck-packet tail at T={t_max} ({tails[t_max]}) below T={t_min} "
            f"({tails[t_min]}) at H={h_max}"
        )
    return fails


def check_e13(rows, profile):
    fails = []
    for r in rows:
        if r["agreement"] < E13_AGREEMENT_FLOOR:
            fails.append(
                f"model agreement {r['agreement']} < {E13_AGREEMENT_FLOOR} "
                f"at Δ={r['delta']}/β={r['beta']}"
            )
    matched = [r for r in rows if r["delta"] >= 0.5 and r["beta"] <= 2.0]
    for r in matched:
        if r["protocol_optimistic"] > E13_OPTIMISM_CEILING:
            fails.append(
                f"protocol model optimistic ({r['protocol_optimistic']}) "
                f"at Δ={r['delta']}/β={r['beta']}"
            )
    beta2 = sorted((r for r in rows if r["beta"] == 2.0), key=lambda r: r["delta"])
    agreements = [r["agreement"] for r in beta2]
    if len(agreements) > 1 and agreements != sorted(agreements):
        fails.append(f"agreement not monotone in Δ at β=2: {agreements}")
    return fails


def check_e14(rows, profile):
    fails = []
    by_n: dict[int, dict[str, float]] = {}
    for r in rows:
        if r["disconnected"] != 0:
            fails.append(f"{r['algorithm']} leaves disconnected pairs at n={r['n']}")
        if r["energy_stretch"] >= E14_STRETCH_CEILING:
            fails.append(
                f"{r['algorithm']} energy stretch {r['energy_stretch']} ≥ "
                f"{E14_STRETCH_CEILING} at n={r['n']}"
            )
        by_n.setdefault(r["n"], {})[r["algorithm"]] = r["energy_stretch"]
    for n, per_alg in by_n.items():
        theta = per_alg.get("ThetaALG (local, 3 rounds)")
        if theta is not None and theta > 2.0 * min(per_alg.values()) + 0.5:
            fails.append(f"ΘALG stretch {theta} more than 2× the best global at n={n}")
    return fails


def check_e15(rows, profile):
    fails = []
    for r in rows:
        if not _finite(r["worst_distance_stretch"]):
            fails.append(f"non-finite stretch in family {r['family']}/θ={r['theta_deg']}°")
    finite = [r["worst_distance_stretch"] for r in rows if _finite(r["worst_distance_stretch"])]
    worst = max(finite, default=math.inf)
    if worst >= E15_PROBE_CEILING:
        fails.append(f"probe found distance stretch {worst} ≥ {E15_PROBE_CEILING}")
    return fails


def check_e16(rows, profile):
    fails = []
    static, fastest = rows[0], rows[-1]
    if fastest["balancing_fraction"] < E16_CHURN_FLOOR:
        fails.append(
            f"balancing delivery {fastest['balancing_fraction']} < {E16_CHURN_FLOOR} "
            f"at speed {fastest['speed']}"
        )
    if fastest["speed"] > 0 and fastest["balancing_delivered"] < E16_ADVANTAGE * max(
        fastest["frozen_sp_delivered"], 1
    ):
        fails.append(
            f"balancing ({fastest['balancing_delivered']}) not ≥ {E16_ADVANTAGE}× the "
            f"frozen-table router ({fastest['frozen_sp_delivered']}) under churn"
        )
    if static["speed"] == 0 and static["frozen_sp_fraction"] < 0.8:
        fails.append(
            f"frozen tables deliver only {static['frozen_sp_fraction']} even when static"
        )
    return fails


def check_e17(rows, profile):
    fails = []
    by_name = {r["topology"]: r for r in rows}
    gstar, theta, mst = by_name["Gstar"], by_name["ThetaALG(N)"], by_name["MST"]
    if not gstar["greedy_delivery_rate"] >= theta["greedy_delivery_rate"]:
        fails.append("greedy deliverability ordering violated: ΘALG above G*")
    if not theta["greedy_delivery_rate"] >= mst["greedy_delivery_rate"]:
        fails.append("greedy deliverability ordering violated: MST above ΘALG")
    if gstar["greedy_delivery_rate"] < E17_GSTAR_DELIVERY_FLOOR:
        fails.append(
            f"G* greedy delivery {gstar['greedy_delivery_rate']} < {E17_GSTAR_DELIVERY_FLOOR}"
        )
    return fails


def check_e18(rows, profile):
    fails = []
    for r in rows:
        if not r["anycast_delivered"] > 0:
            fails.append(f"anycast delivered nothing at group size {r['group_size']}")
    multi = [r for r in rows if r["group_size"] > 1]
    for r in multi:
        if r["anycast_delivered"] < E18_THROUGHPUT_PARITY * r["unicast_delivered"]:
            fails.append(
                f"anycast deliveries {r['anycast_delivered']} below "
                f"{E18_THROUGHPUT_PARITY}× unicast at group size {r['group_size']}"
            )
    if multi:
        biggest = max(multi, key=lambda r: r["group_size"])
        if biggest["anycast_avg_cost"] > E18_COST_PARITY * biggest["unicast_avg_cost"]:
            fails.append(
                f"anycast avg cost {biggest['anycast_avg_cost']} above "
                f"{E18_COST_PARITY}× unicast at group size {biggest['group_size']}"
            )
    return fails


def check_e19(rows, profile):
    fails = []
    for r in rows:
        if r["total_slots"] < 3:
            fails.append(f"protocol finished in {r['total_slots']} slots (< 3) at n={r['n']}")
    civ = sorted((r for r in rows if r["distribution"] == "civilized"), key=lambda r: r["n"])
    if len(civ) > 1 and civ[-1]["total_slots"] > E19_CIVILIZED_FLATNESS * max(civ[0]["total_slots"], 1):
        fails.append(
            f"civilized slot cost grows with n: {civ[0]['total_slots']} → {civ[-1]['total_slots']}"
        )
    return fails


def check_e20(rows, profile):
    fails = []
    by_rho: dict[float, list[dict]] = {}
    for r in rows:
        if r["measured_window_load"] > r["rho"] + 1e-9:
            fails.append(
                f"adversary infeasible: window load {r['measured_window_load']} > ρ={r['rho']}"
            )
        by_rho.setdefault(r["rho"], []).append(r)
    for rho, sub in by_rho.items():
        if len(sub) < 2:
            continue
        short = min(sub, key=lambda r: r["duration"])
        long = max(sub, key=lambda r: r["duration"])
        if long["max_buffer_height"] > E20_STABILITY_RATIO * max(short["max_buffer_height"], 4):
            fails.append(
                f"buffers grow with the horizon at ρ={rho}: "
                f"{short['max_buffer_height']} → {long['max_buffer_height']}"
            )
    return fails


def check_e21(rows, profile):
    fails = []
    ordered = sorted(rows, key=lambda r: r["delta_frequencies"])
    ratios = [r["throughput_ratio"] for r in ordered]
    for a, b in zip(ratios, ratios[1:]):
        if b < a - E21_MONOTONE_SLACK:
            fails.append(f"throughput decreases with δ: {ratios}")
            break
    if len(ratios) > 1 and not ratios[-1] > ratios[0]:
        fails.append(f"no throughput gain from δ={ordered[0]['delta_frequencies']} "
                     f"to δ={ordered[-1]['delta_frequencies']}: {ratios}")
    return fails


def check_e22(rows, profile):
    fails = []
    by = {(r["loss_prob"], r["retries"]): r for r in rows}
    losses = sorted({r["loss_prob"] for r in rows})
    budgets = sorted({r["retries"] for r in rows})
    lossless = by[(losses[0], budgets[0])]
    if losses[0] == 0.0 and lossless["edge_recall"] != 1.0:
        fails.append(f"lossless run missed edges: recall {lossless['edge_recall']}")
    moderate = [p for p in losses if 0.0 < p <= 0.2]
    for p in moderate:
        r = by[(p, budgets[-1])]
        if r["edge_recall"] < E22_RECALL_WITH_RETRIES:
            fails.append(
                f"retries fail to recover the topology at loss {p}: recall {r['edge_recall']}"
            )
    single_shot = [by[(p, budgets[0])]["edge_recall"] for p in losses]
    if any(b > a + 1e-9 for a, b in zip(single_shot, single_shot[1:])):
        fails.append(f"single-shot recall not monotone in loss: {single_shot}")
    if by[(losses[-1], budgets[-1])]["transmissions"] <= lossless["transmissions"]:
        fails.append("retries under loss cost no extra transmissions (implausible)")
    return fails


def check_e23(rows, profile):
    fails = []
    for r in rows:
        if r["equality_mismatches"] != 0:
            fails.append(
                f"n={r['n']}: incremental topology diverged from full rebuild "
                f"in {r['equality_mismatches']} checks"
            )
        if r["p95_touched"] > E23_TOUCH_CEILING:
            fails.append(
                f"n={r['n']}: p95 nodes touched {r['p95_touched']} > {E23_TOUCH_CEILING}"
            )
        if r["max_update_radius_over_D"] > E23_RADIUS_BOUND + 1e-9:
            fails.append(
                f"n={r['n']}: update radius {r['max_update_radius_over_D']}·D "
                f"exceeds the {E23_RADIUS_BOUND}·D locality bound"
            )
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        if last["p95_touched"] > E23_FLATNESS_RATIO * max(first["p95_touched"], 1.0):
            fails.append(
                f"touched-per-event not flat: p95 grew {first['p95_touched']} → "
                f"{last['p95_touched']} while n grew {first['n']} → {last['n']}"
            )
        fractions = [r["touched_per_n"] for r in rows]
        if any(b > a * 1.05 for a, b in zip(fractions, fractions[1:])):
            fails.append(f"touched fraction of the network not decreasing in n: {fractions}")
    if profile == "full" and rows:
        # Timing gate only at full scale (quick-tier CI stays count-based).
        if rows[-1]["rebuild_speedup"] < E23_SPEEDUP_FLOOR:
            fails.append(
                f"incremental repair only {rows[-1]['rebuild_speedup']:.1f}× faster than "
                f"full rebuild at n={rows[-1]['n']} (need ≥ {E23_SPEEDUP_FLOOR}×)"
            )
    return fails


def check_e24(rows, profile):
    fails = []
    for r in rows:
        if r["equality_mismatches"] != 0:
            fails.append(
                f"n={r['n']}: maintained conflict rows diverged from the "
                f"from-scratch kernel in {r['equality_mismatches']} checks"
            )
        if r["p95_rows"] > E24_ROW_CEILING:
            fails.append(
                f"n={r['n']}: p95 conflict rows recomputed {r['p95_rows']} > {E24_ROW_CEILING}"
            )
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        if last["p95_rows"] > E24_FLATNESS_RATIO * max(first["p95_rows"], 1.0):
            fails.append(
                f"rows-per-event not flat: p95 grew {first['p95_rows']} → "
                f"{last['p95_rows']} while n grew {first['n']} → {last['n']}"
            )
        fractions = [r["rows_per_edge"] for r in rows]
        if any(b > a * 1.05 for a, b in zip(fractions, fractions[1:])):
            fails.append(f"recomputed fraction of conflict rows not decreasing in n: {fractions}")
    if profile == "full" and rows:
        # Timing gate only at full scale (quick-tier CI stays count-based).
        if rows[-1]["rebuild_speedup"] < E24_SPEEDUP_FLOOR:
            fails.append(
                f"incremental conflict repair only {rows[-1]['rebuild_speedup']:.1f}× faster "
                f"than full rebuild at n={rows[-1]['n']} (need ≥ {E24_SPEEDUP_FLOOR}×)"
            )
    return fails


__all__ = [name for name in list(globals()) if name.startswith("check_e")]
