"""Content-keyed memoization for expensive experiment substrates.

Several experiments build the same objects from the same inputs — a
point set drawn from a seeded generator, its connectivity-critical
transmission range, the transmission graph G*, the ΘALG topology N.
E1 and E2 (quick tier), for example, draw the identical n=48 uniform
point set from seed 0 and then both compute its range and G*; E1 full
rebuilds G* once per θ even though G* does not depend on θ.

The cache keys substrates by a digest of the point coordinates plus the
construction parameters, so sharing needs no coordination between
experiments: any two call sites that would build the same object get
the same cached instance.  All cached objects are treated as immutable
by convention (the graph types never mutate after construction).

Scope: the cache is per-process.  Under ``repro verify --jobs N`` each
pool worker keeps its own cache, warmed across the claims that worker
executes; with ``--jobs 1`` (and inside the test/bench suites) it is
global.  Entries are evicted FIFO beyond ``max_entries``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "SubstrateCache",
    "GLOBAL_CACHE",
    "cache_stats",
    "cached_interference_sets",
    "cached_range",
    "cached_theta_topology",
    "cached_transmission_graph",
    "clear_cache",
    "points_digest",
]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


@dataclass
class SubstrateCache:
    """A bounded FIFO memo table keyed by hashable construction keys."""

    max_entries: int = 512
    _store: "dict[Hashable, Any]" = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def get_or_build(self, key: Hashable, builder: "Callable[[], Any]") -> Any:
        try:
            value = self._store[key]
        except KeyError:
            self.stats.misses += 1
            value = builder()
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.pop(next(iter(self._store)))
                self.stats.evictions += 1
        else:
            self.stats.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()


#: Process-wide cache instance used by the helpers below.
GLOBAL_CACHE = SubstrateCache()


def points_digest(points: np.ndarray) -> str:
    """Stable content digest of a coordinate array."""
    arr = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    h = hashlib.sha1(arr.tobytes())
    h.update(str(arr.shape).encode())
    return h.hexdigest()


def cached_range(points: np.ndarray, slack: float) -> float:
    """Memoized ``max_range_for_connectivity(points, slack=slack)``."""
    from repro.graphs.transmission import max_range_for_connectivity

    key = ("range", points_digest(points), float(slack))
    return GLOBAL_CACHE.get_or_build(
        key, lambda: max_range_for_connectivity(points, slack=slack)
    )


def cached_transmission_graph(points: np.ndarray, d: float, kappa: float = 2.0):
    """Memoized ``transmission_graph(points, d, kappa=kappa)`` (G*)."""
    from repro.graphs.transmission import transmission_graph

    key = ("gstar", points_digest(points), float(d), float(kappa))
    return GLOBAL_CACHE.get_or_build(key, lambda: transmission_graph(points, d, kappa=kappa))


def cached_theta_topology(points: np.ndarray, theta: float, d: float, kappa: float = 2.0):
    """Memoized ``theta_algorithm(points, theta, d, kappa=kappa)`` (ΘALG)."""
    from repro.core.theta import theta_algorithm

    key = ("theta", points_digest(points), float(theta), float(d), float(kappa))
    return GLOBAL_CACHE.get_or_build(key, lambda: theta_algorithm(points, theta, d, kappa=kappa))


def cached_interference_sets(graph, delta: float):
    """Memoized ``interference_sets(graph, delta)`` for a cached graph.

    Static graphs are keyed by point digest plus edge-set digest, so two
    topologies over the same nodes (e.g. G* and ΘALG's N) cache
    separately.  Graphs carrying a ``topology_version`` attribute —
    churned snapshots from
    :meth:`repro.dynamic.incremental.IncrementalTheta.snapshot_graph` —
    are keyed by identity *and* version instead: identity alone would
    serve a stale conflict structure once the topology advances (and
    re-digesting n coordinates per event would defeat the incremental
    path).  The graph object is pinned inside the cache value so a
    recycled ``id()`` can never alias a dead entry.  The returned
    :class:`~repro.interference.conflict.InterferenceSets` is read-only,
    matching the cache's immutability convention.
    """
    from repro.interference.conflict import interference_sets

    version = getattr(graph, "topology_version", None)
    if version is not None:
        key = ("isets-dyn", id(graph), int(version), float(delta))
        pinned = GLOBAL_CACHE.get_or_build(
            key, lambda: (graph, interference_sets(graph, delta))
        )
        return pinned[1]
    edges = np.ascontiguousarray(graph.edges)
    key = (
        "isets",
        points_digest(graph.points),
        hashlib.sha1(edges.tobytes() + str(edges.shape).encode()).hexdigest(),
        float(delta),
    )
    return GLOBAL_CACHE.get_or_build(key, lambda: interference_sets(graph, delta))


def clear_cache() -> None:
    """Drop every cached substrate and reset the counters."""
    GLOBAL_CACHE.clear()


def cache_stats() -> dict:
    """Current hit/miss/eviction counters (for result records and tests)."""
    return GLOBAL_CACHE.stats.as_dict()
