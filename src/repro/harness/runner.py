"""Parallel claim execution across a multiprocessing pool.

``run_claims`` evaluates a selection of registry claims under a
parameter profile, serially (``jobs=1``) or across a process pool.
Each claim runs with its own registered seed, is wall-clock timed, and
reports the substrate-cache counters it observed, so the JSON records
show how much construction work was shared.

Workers are plain pool processes that live for the whole run
(``maxtasksperchild`` is left unset), so the per-process substrate
cache (:mod:`repro.harness.cache`) stays warm across the claims each
worker executes.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro.harness import cache
from repro.harness.registry import REGISTRY, build_rows
from repro.harness.results import ClaimResult

__all__ = ["run_claims", "verify_claim"]


def verify_claim(claim_id: str, profile: str = "full") -> ClaimResult:
    """Run one claim's harness and evaluate its predicate."""
    claim = REGISTRY[claim_id]
    stats_before = cache.cache_stats()
    t0 = time.perf_counter()
    rows = build_rows(claim, profile)
    runtime = time.perf_counter() - t0
    try:
        failures = list(claim.check(rows, profile))
    except Exception as exc:  # a crashed predicate is a failed claim, not a crashed run
        failures = [f"predicate raised {type(exc).__name__}: {exc}"]
    return ClaimResult(
        claim=claim.id,
        title=claim.title,
        paper_ref=claim.paper_ref,
        profile=profile,
        seed=claim.seed,
        params=dict(claim.params(profile)),
        rows=rows,
        failures=failures,
        runtime_seconds=round(runtime, 3),
        cache={
            k: cache.cache_stats()[k] - stats_before[k] for k in stats_before
        },
    )


def _worker(task: "tuple[str, str]") -> ClaimResult:
    claim_id, profile = task
    return verify_claim(claim_id, profile)


def run_claims(
    claim_ids: "list[str]",
    *,
    profile: str = "full",
    jobs: int = 1,
) -> "list[ClaimResult]":
    """Verify ``claim_ids`` under ``profile`` with up to ``jobs`` processes.

    Results come back in the order requested regardless of completion
    order.  ``jobs <= 1`` runs serially in-process (no pool), which
    keeps monkeypatched registries and debuggers usable.
    """
    unknown = [c for c in claim_ids if c not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
    if jobs <= 1 or len(claim_ids) <= 1:
        return [verify_claim(cid, profile) for cid in claim_ids]
    tasks = [(cid, profile) for cid in claim_ids]
    # fork shares the imported modules (cheap start); fall back to spawn
    # where fork is unavailable.
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_worker, tasks, chunksize=1)
