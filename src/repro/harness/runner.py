"""Parallel claim execution across a multiprocessing pool.

``run_claims`` evaluates a selection of registry claims under a
parameter profile, serially (``jobs=1``) or across a process pool.
Each claim runs with its own registered seed, is wall-clock timed, and
reports the substrate-cache counters it observed, so the JSON records
show how much construction work was shared.

Workers are plain pool processes that live for the whole run
(``maxtasksperchild`` is left unset), so the per-process substrate
cache (:mod:`repro.harness.cache`) stays warm across the claims each
worker executes.

Tracing (``run_claims(..., collect_trace=True)``): every claim runs
under a ``claim.<id>`` span, and whatever span events and step series
the claim's simulations emitted are drained into ``ClaimResult.trace``
as plain dicts.  Workers enable a *fresh* tracer on first use (a forked
parent tracer would carry the wrong pid and stale events), so merged
Chrome traces show one track per pool process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

from repro.harness import cache
from repro.harness.registry import REGISTRY, build_rows
from repro.harness.results import ClaimResult
from repro.obs import trace

__all__ = ["pool_context", "run_claims", "verify_claim"]


def pool_context() -> mp.context.BaseContext:
    """The multiprocessing context shared by verify and campaign pools.

    fork shares the imported modules (cheap start) and is preferred
    wherever available; spawn is the fallback.  Workers created from
    this context live for the whole run (``maxtasksperchild`` unset), so
    each keeps its per-process substrate cache warm across the tasks it
    executes.
    """
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def verify_claim(claim_id: str, profile: str = "full", *, collect_trace: bool = False) -> ClaimResult:
    """Run one claim's harness and evaluate its predicate.

    With ``collect_trace`` the claim executes under an active tracer
    (enabling one if needed) and the events/series it produced travel
    back in ``ClaimResult.trace``.
    """
    claim = REGISTRY[claim_id]
    tracer = trace.active()
    if collect_trace and tracer is None:
        tracer = trace.enable()
    event_mark = tracer.total_appended if tracer is not None else 0
    series_mark = len(tracer.series) if tracer is not None else 0
    stats_before = cache.cache_stats()
    t0 = time.perf_counter()
    with trace.span(f"claim.{claim.id}", profile=profile, seed=claim.seed):
        rows = build_rows(claim, profile)
    runtime = time.perf_counter() - t0
    try:
        failures = list(claim.check(rows, profile))
    except Exception as exc:  # a crashed predicate is a failed claim, not a crashed run
        failures = [f"predicate raised {type(exc).__name__}: {exc}"]
    trace_payload: dict = {}
    if collect_trace and tracer is not None:
        trace_payload = {
            "events": tracer.events_since(event_mark),
            "series": tracer.series_records()[series_mark:],
        }
        del tracer.series[series_mark:]
    return ClaimResult(
        claim=claim.id,
        title=claim.title,
        paper_ref=claim.paper_ref,
        profile=profile,
        seed=claim.seed,
        params=dict(claim.params(profile)),
        rows=rows,
        failures=failures,
        runtime_seconds=round(runtime, 3),
        cache={
            k: cache.cache_stats()[k] - stats_before[k] for k in stats_before
        },
        trace=trace_payload,
    )


def _worker(task: "tuple[str, str, bool]") -> ClaimResult:
    claim_id, profile, collect_trace = task
    if collect_trace:
        tracer = trace.active()
        if tracer is None or tracer.pid != os.getpid():
            # Fresh tracer per worker: a tracer inherited through fork
            # would stamp events with the parent's pid.
            trace.enable(fresh=True)
    return verify_claim(claim_id, profile, collect_trace=collect_trace)


def run_claims(
    claim_ids: "list[str]",
    *,
    profile: str = "full",
    jobs: int = 1,
    collect_trace: bool = False,
) -> "list[ClaimResult]":
    """Verify ``claim_ids`` under ``profile`` with up to ``jobs`` processes.

    Results come back in the order requested regardless of completion
    order.  ``jobs <= 1`` runs serially in-process (no pool), which
    keeps monkeypatched registries and debuggers usable.
    """
    unknown = [c for c in claim_ids if c not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
    if jobs <= 1 or len(claim_ids) <= 1:
        return [verify_claim(cid, profile, collect_trace=collect_trace) for cid in claim_ids]
    tasks = [(cid, profile, collect_trace) for cid in claim_ids]
    ctx = pool_context()
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_worker, tasks, chunksize=1)
