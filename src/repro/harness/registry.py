"""The claim registry: every E1–E24 experiment as a checkable record.

A :class:`Claim` binds an experiment id to

* the paper statement it reproduces (``paper_ref``),
* the harness function that produces its structured rows (referenced
  by module/function name so records stay picklable for the process
  pool),
* ``full`` and ``quick`` parameter sets (the quick tier is what CI
  gates every push on),
* a tolerance/bound predicate from :mod:`repro.harness.checks`, and
* a per-claim RNG seed injected as the harness function's ``rng``.

``python -m repro`` builds its experiment table from this registry;
``python -m repro verify`` evaluates the predicates and fails the run
if any claim no longer holds.
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.harness import checks

__all__ = ["Claim", "REGISTRY", "build_rows", "claim_ids", "resolve_ids"]

_PROFILES = ("full", "quick")


@dataclass(frozen=True)
class Claim:
    """One machine-checkable paper claim."""

    id: str
    title: str
    paper_ref: str
    module: str
    func: str
    check: "Callable[[list[dict], str], list[str]]"
    full_params: "Mapping[str, Any]" = field(default_factory=dict)
    quick_params: "Mapping[str, Any]" = field(default_factory=dict)
    seed: int = 0

    def params(self, profile: str) -> "Mapping[str, Any]":
        if profile not in _PROFILES:
            raise ValueError(f"unknown profile {profile!r}; expected one of {_PROFILES}")
        return self.full_params if profile == "full" else self.quick_params

    def harness(self) -> "Callable[..., list[dict]]":
        return getattr(importlib.import_module(self.module), self.func)


def build_rows(claim: Claim, profile: str) -> "list[dict]":
    """Run a claim's harness under the given parameter profile."""
    return claim.harness()(**dict(claim.params(profile)), rng=claim.seed)


_TOPO = "repro.analysis.topology_experiments"
_ROUTE = "repro.analysis.routing_experiments"
_ABLATE = "repro.analysis.ablation_experiments"
_MOBILE = "repro.analysis.mobility_experiments"
_GEO = "repro.analysis.geographic_experiments"
_ANY = "repro.analysis.anycast_experiments"
_DYN = "repro.analysis.dynamic_experiments"


def _claims() -> "list[Claim]":
    pi = math.pi
    return [
        Claim(
            "e1", "connectivity and degree bound of N", "Lemma 2.1",
            _TOPO, "e1_degree_connectivity", checks.check_e1,
            quick_params={"ns": (48,), "thetas": (pi / 6,), "distributions": ("uniform", "ring")},
        ),
        Claim(
            "e2", "O(1) energy-stretch of N", "Theorem 2.2",
            _TOPO, "e2_energy_stretch", checks.check_e2,
            quick_params={
                "ns": (48,), "thetas": (pi / 9,), "kappas": (2.0,),
                "distributions": ("uniform",),
            },
        ),
        Claim(
            "e3", "distance-stretch on civilized graphs", "Theorem 2.7",
            _TOPO, "e3_distance_stretch_civilized", checks.check_e3,
            quick_params={"ns": (48,), "lams": (0.5,), "thetas": (pi / 9,)},
        ),
        Claim(
            "e4", "interference number O(log n)", "Lemma 2.10",
            _TOPO, "e4_interference_scaling", checks.check_e4,
            quick_params={"ns": (48, 96), "deltas": (0.5,), "trials": 1},
        ),
        Claim(
            "e5", "θ-path congestion ≤ 6", "Lemma 2.9",
            _TOPO, "e5_schedule_replacement", checks.check_e5,
            quick_params={"ns": (48,), "steps": 5},
        ),
        Claim(
            "e6", "(T, γ)-balancing competitiveness", "Theorem 3.1",
            _ROUTE, "e6_balancing_competitive", checks.check_e6,
            quick_params={"epsilons": (0.25,), "duration": 200},
        ),
        Claim(
            "e7", "(T, γ, I)-balancing vs the 1/(8I) floor", "Theorem 3.3",
            _ROUTE, "e7_tgi_throughput", checks.check_e7,
            quick_params={"trials": 1, "duration": 1500, "n": 50},
        ),
        Claim(
            "e8", "O(1/log n) competitiveness on random nodes", "Corollary 3.5",
            _ROUTE, "e8_random_competitive", checks.check_e8,
            quick_params={"ns": (48, 96), "duration": 1500},
        ),
        Claim(
            "e9", "honeycomb algorithm at fixed power", "Theorem 3.8",
            _ROUTE, "e9_honeycomb", checks.check_e9,
            quick_params={"deltas": (0.5,), "duration": 300},
        ),
        Claim(
            "e10", "topology zoo comparison", "§1.2",
            _TOPO, "e10_topology_zoo", checks.check_e10,
            quick_params={"n": 80, "distributions": ("uniform",)},
        ),
        Claim(
            "e11", "3-round local protocol", "§2.1",
            _TOPO, "e11_local_protocol", checks.check_e11,
            quick_params={"ns": (48,)},
        ),
        Claim(
            "e12", "buffer/threshold trade-off", "§3.2",
            _ROUTE, "e12_buffer_tradeoff", checks.check_e12,
            quick_params={"thresholds": (1, 16), "heights": (8, 128), "duration": 150},
        ),
        Claim(
            "e13", "protocol vs SINR interference models", "§2.4 remark",
            _ABLATE, "e13_interference_models", checks.check_e13,
            quick_params={"n": 64, "deltas": (0.5,), "betas": (2.0,), "sets_per_config": 40},
        ),
        Claim(
            "e14", "local ΘALG vs global sparsification", "§2.1 remark",
            _ABLATE, "e14_local_vs_global", checks.check_e14,
            quick_params={"ns": (64,)},
        ),
        Claim(
            "e15", "worst distance-stretch probe", "§2 open problem",
            _ABLATE, "e15_spanner_probe", checks.check_e15,
            quick_params={"n": 64, "thetas": (pi / 9,), "trials": 2},
        ),
        Claim(
            "e16", "routing under mobility churn", "§1 motivation",
            _MOBILE, "e16_mobility_churn", checks.check_e16,
            quick_params={"n": 30, "speeds": (0.0, 0.01), "steps": 200},
        ),
        Claim(
            "e17", "greedy geographic routing vs sparsity", "§1.2 context",
            _GEO, "e17_geographic_routing", checks.check_e17,
            quick_params={"n": 80, "n_pairs": 80},
        ),
        Claim(
            "e18", "anycast balancing vs fixed-member unicast", "extension",
            _ANY, "e18_anycast", checks.check_e18,
            quick_params={"n": 50, "group_sizes": (1, 4), "duration": 200},
        ),
        Claim(
            "e19", "slot cost of the 3 rounds under interference", "§2.1 closing remark",
            _TOPO, "e19_protocol_slots", checks.check_e19,
            quick_params={"ns": (48,)},
        ),
        Claim(
            "e20", "stability under (w, ρ)-bounded adversaries", "§1.2 AQT lineage",
            _ROUTE, "e20_aqt_stability", checks.check_e20,
            full_params={"durations": (200, 400)},
            quick_params={"durations": (150,)},
        ),
        Claim(
            "e21", "throughput vs per-node concurrency (δ)", "Theorem 3.1's δ parameter",
            _ROUTE, "e21_frequency_sweep", checks.check_e21,
            quick_params={"deltas": (1, 2), "duration": 200},
        ),
        Claim(
            "e22", "the protocol under message loss", "failure injection",
            _TOPO, "e22_lossy_protocol", checks.check_e22,
            full_params={"n": 100},
            quick_params={"n": 40},
        ),
        Claim(
            "e23", "locality of update under churn", "§1/§2.1 locality argument",
            _DYN, "e23_locality_of_update", checks.check_e23,
            quick_params={"ns": (120, 240), "events_per_n": 120},
            seed=23,
        ),
        Claim(
            "e24", "locality of interference repair", "§2.4 guard zones + locality argument",
            _DYN, "e24_interference_repair_locality", checks.check_e24,
            quick_params={"ns": (120, 240), "events_per_n": 80, "check_every": 1},
            seed=24,
        ),
    ]


#: experiment id → Claim, in E1..E24 order.
REGISTRY: "dict[str, Claim]" = {c.id: c for c in _claims()}


def claim_ids() -> "list[str]":
    return list(REGISTRY)


def resolve_ids(spec: "str | None") -> "list[str]":
    """Parse an ``--only``-style spec (``"e4,e7"``) into claim ids.

    ``None``, ``""`` and ``"all"`` mean every claim.  Raises
    ``KeyError`` listing the malformed/unknown ids otherwise.
    """
    if not spec or spec.strip().lower() == "all":
        return claim_ids()
    ids = [part.strip().lower() for part in spec.split(",") if part.strip()]
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
    return ids
