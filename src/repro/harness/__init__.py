"""Claim-verification harness: registry, parallel runner, JSON results.

The harness turns the E1–E23 experiment suite into a machine-checkable
gate: every experiment is declared as a :class:`~repro.harness.registry.Claim`
with a paper reference, full and ``--quick`` parameter sets, and a
tolerance/bound predicate; :mod:`repro.harness.runner` executes selected
claims across a process pool; :mod:`repro.harness.results` persists one
versioned JSON record per claim for CI to consume.

``python -m repro verify [--quick] [--jobs N] [--only e4,e7]`` is the
command-line entry point; it exits nonzero if any claim predicate fails.
"""

from repro.harness.registry import REGISTRY, Claim, build_rows
from repro.harness.results import ClaimResult, default_results_dir, write_result
from repro.harness.runner import run_claims

__all__ = [
    "REGISTRY",
    "Claim",
    "ClaimResult",
    "build_rows",
    "default_results_dir",
    "run_claims",
    "write_result",
]
