"""Per-node protocol logic of the three-round ΘALG.

Each :class:`LocalNode` only ever uses information it physically
received: positions from round-1 broadcasts, Yao choice sets from
round-2 messages, confirmations from round-3 messages.  No global
state is consulted — that is the point of the exercise.
"""

from __future__ import annotations

import math

from repro.geometry.primitives import TWO_PI
from repro.geometry.sectors import SectorPartition
from repro.localsim.messages import ConnectionMessage, NeighborhoodMessage, PositionMessage

__all__ = ["LocalNode"]


class LocalNode:
    """One wireless node running the ΘALG protocol.

    Parameters
    ----------
    node_id:
        Identifier carried in messages.
    position:
        Own GPS position.
    theta, offset:
        Sector partition parameters (protocol constants shared by all
        nodes).
    max_range:
        Maximum transmission range D.
    """

    def __init__(
        self,
        node_id: int,
        position: tuple[float, float],
        theta: float,
        max_range: float,
        *,
        offset: float = 0.0,
    ) -> None:
        self.node_id = int(node_id)
        self.position = (float(position[0]), float(position[1]))
        self.partition = SectorPartition(theta, offset)
        self.max_range = float(max_range)
        # Protocol state, filled in round by round.
        self.known_positions: dict[int, tuple[float, float]] = {}
        self.yao_choices: dict[int, int] = {}  # sector -> chosen node
        self.claimants: list[int] = []  # nodes v with self ∈ N(v)
        self.admitted: dict[int, int] = {}  # sector -> admitted claimant
        self.edges: set[tuple[int, int]] = set()  # established N edges

    # ------------------------------------------------------------------
    def _distance(self, other: int) -> float:
        ox, oy = self.known_positions[other]
        return math.hypot(ox - self.position[0], oy - self.position[1])

    def _sector(self, other: int) -> int:
        ox, oy = self.known_positions[other]
        ang = math.atan2(oy - self.position[1], ox - self.position[0]) % TWO_PI
        return int(self.partition.index_of_angle(ang))

    def _nearest_per_sector(self, candidates: "list[int]") -> dict[int, int]:
        """Nearest candidate in each sector, ties broken by node id."""
        best: dict[int, tuple[float, int]] = {}
        for v in sorted(candidates):
            key = (self._distance(v), v)
            s = self._sector(v)
            if s not in best or key < best[s]:
                best[s] = key
        return {s: v for s, (_, v) in best.items()}

    # ------------------------------------------------------------------
    # Round 1
    # ------------------------------------------------------------------
    def round1_broadcast(self) -> PositionMessage:
        """Emit the Position broadcast."""
        return PositionMessage(self.node_id, self.position[0], self.position[1])

    def round1_receive(self, msg: PositionMessage) -> None:
        """Record a neighbor's position (medium guarantees it is in range)."""
        if msg.sender != self.node_id:
            self.known_positions[msg.sender] = (msg.x, msg.y)

    # ------------------------------------------------------------------
    # Round 2
    # ------------------------------------------------------------------
    def round2_messages(self) -> list[NeighborhoodMessage]:
        """Compute N(self) and unicast it to each member."""
        in_range = [v for v in self.known_positions if self._distance(v) <= self.max_range + 1e-12]
        self.yao_choices = self._nearest_per_sector(in_range)
        members = tuple(sorted(set(self.yao_choices.values())))
        return [
            NeighborhoodMessage(self.node_id, v, members)
            for v in members
        ]

    def round2_receive(self, msg: NeighborhoodMessage) -> None:
        """Note a claimant: a node whose Yao choice set contains us.

        A claimant whose Position broadcast we never received (possible
        only on a lossy medium — a claimant is always within range) is
        ignored: without its position we can neither place it in a
        sector nor compare distances.
        """
        if msg.receiver != self.node_id:
            return  # unicast for somebody else; discard
        if self.node_id in msg.neighborhood and msg.sender in self.known_positions:
            self.claimants.append(msg.sender)

    # ------------------------------------------------------------------
    # Round 3
    # ------------------------------------------------------------------
    def round3_messages(self) -> list[ConnectionMessage]:
        """Admit the nearest claimant per sector; send Connection messages."""
        self.admitted = self._nearest_per_sector(self.claimants)
        out = []
        for w in sorted(set(self.admitted.values())):
            self.edges.add(_canon(self.node_id, w))
            out.append(ConnectionMessage(self.node_id, w))
        return out

    def round3_receive(self, msg: ConnectionMessage) -> None:
        """Record the edge the sender established with us."""
        if msg.receiver == self.node_id:
            self.edges.add(_canon(msg.sender, self.node_id))


def _canon(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)
