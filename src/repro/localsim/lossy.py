"""Failure injection: the ΘALG protocol over a lossy medium.

The paper's three-round description assumes messages arrive.  Real
wireless links drop frames, so a deployable version retransmits.  This
module runs the protocol over a Bernoulli-loss medium (each message
delivery independently lost with probability p) with per-message
retransmission (up to ``retries`` attempts; round 1's broadcast is
modelled per-receiver, re-broadcast until every in-range receiver got
one copy or attempts run out).

The interesting questions, exercised by the tests and measurable via
:func:`lossy_protocol_run`:

* p = 0 reproduces the ideal construction exactly;
* with retries ≥ a few, moderate loss rates still yield the exact ideal
  topology (each message needs ~1/(1−p) attempts);
* without retries, losses degrade the output two ways, both counted by
  the report: *missing* edges (a Neighborhood/Connection message never
  arrived) and *spurious* edges (a lost Position message made a node
  pick a farther — still in-range — neighbor than the ideal run would).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.theta import theta_algorithm
from repro.geometry.primitives import as_points
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.localsim.node import LocalNode
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_positive

__all__ = ["LossyProtocolReport", "lossy_protocol_run"]


@dataclass(frozen=True)
class LossyProtocolReport:
    """Outcome of one lossy protocol run vs the ideal construction."""

    n_nodes: int
    loss_prob: float
    retries: int
    transmissions: int
    ideal_edges: int
    built_edges: int
    missing_edges: int
    spurious_edges: int
    connected: bool

    @property
    def edge_recall(self) -> float:
        """Fraction of ideal N edges the lossy run established."""
        if self.ideal_edges == 0:
            return 1.0
        return (self.ideal_edges - self.missing_edges) / self.ideal_edges

    def as_dict(self) -> dict[str, float]:
        return {
            "n_nodes": float(self.n_nodes),
            "loss_prob": self.loss_prob,
            "retries": float(self.retries),
            "transmissions": float(self.transmissions),
            "ideal_edges": float(self.ideal_edges),
            "built_edges": float(self.built_edges),
            "missing_edges": float(self.missing_edges),
            "spurious_edges": float(self.spurious_edges),
            "edge_recall": self.edge_recall,
            "connected": float(self.connected),
        }


def lossy_protocol_run(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    loss_prob: float = 0.2,
    retries: int = 3,
    rng=None,
    offset: float = 0.0,
    kappa: float = 2.0,
) -> tuple[GeometricGraph, LossyProtocolReport]:
    """Run the 3-round protocol over a Bernoulli-loss medium.

    Parameters
    ----------
    loss_prob:
        Per-delivery loss probability p ∈ [0, 1).
    retries:
        Additional attempts per message (0 = single shot).  Broadcasts
        retransmit until every in-range receiver has a copy or the
        attempt budget is spent; unicasts retransmit unacknowledged
        (i.e. lost) copies.

    Returns
    -------
    ``(graph, report)`` — the constructed topology and the comparison
    against the lossless ideal.
    """
    pts = as_points(points)
    check_positive("max_range", max_range)
    check_in_range("loss_prob", loss_prob, 0.0, 1.0, inclusive=(True, False))
    if retries < 0:
        raise ValueError("retries must be >= 0")
    gen = as_rng(rng)
    nodes = [
        LocalNode(i, tuple(p), theta, max_range, offset=offset) for i, p in enumerate(pts)
    ]
    index = GridIndex(pts, cell=max_range)
    attempts_budget = retries + 1
    transmissions = 0

    def in_range(u: int) -> np.ndarray:
        return index.query_radius(pts[u], max_range, exclude=u)

    # Round 1: broadcasts with per-receiver Bernoulli loss, repeated
    # until all receivers are covered or the budget runs out.
    for node in nodes:
        receivers = in_range(node.node_id)
        pending = set(int(r) for r in receivers)
        msg = node.round1_broadcast()
        for _ in range(attempts_budget):
            if not pending:
                break
            transmissions += 1
            delivered = {r for r in pending if gen.random() >= loss_prob}
            for r in delivered:
                nodes[r].round1_receive(msg)
            pending -= delivered

    # Round 2: unicasts with retransmission of lost copies.
    for node in nodes:
        for msg in node.round2_messages():
            for _ in range(attempts_budget):
                transmissions += 1
                if gen.random() >= loss_prob:
                    nodes[msg.receiver].round2_receive(msg)
                    break

    # Round 3: same retransmission logic.
    for node in nodes:
        for msg in node.round3_messages():
            for _ in range(attempts_budget):
                transmissions += 1
                if gen.random() >= loss_prob:
                    nodes[msg.receiver].round3_receive(msg)
                    break

    edges = sorted(set().union(*(n.edges for n in nodes)) if nodes else set())
    built = GeometricGraph(pts, edges, kappa=kappa, name=f"ThetaALG-lossy(p={loss_prob:g})")

    ideal = theta_algorithm(pts, theta, max_range, kappa=kappa, offset=offset).graph
    ideal_set = {tuple(e) for e in ideal.edges}
    built_set = {tuple(e) for e in built.edges}
    from repro.graphs.metrics import is_connected

    report = LossyProtocolReport(
        n_nodes=len(pts),
        loss_prob=float(loss_prob),
        retries=int(retries),
        transmissions=transmissions,
        ideal_edges=len(ideal_set),
        built_edges=len(built_set),
        missing_edges=len(ideal_set - built_set),
        spurious_edges=len(built_set - ideal_set),
        connected=is_connected(built),
    )
    return built, report
