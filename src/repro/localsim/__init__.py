"""Round-based local message-passing simulation of ΘALG (§2.1).

§2.1 notes that ΘALG needs only three rounds of local communication:

1. every node broadcasts a *Position* message at maximum power;
2. every node u computes N(u) from the received positions and sends a
   *Neighborhood* message (containing N(u)) to each member of N(u);
3. every node u sends a *Connection* message to the nearest node, per
   sector, among the nodes v with u ∈ N(v); each Connection message
   establishes one edge of the final topology N.

This package runs that protocol message-for-message on a simulated
broadcast medium (delivery = within transmission range) and exposes the
message/round counts — the local-overhead numbers of experiment E11.
The resulting edge set is asserted (in tests) to equal the centralized
:func:`repro.core.theta.theta_algorithm` output exactly.
"""

from repro.localsim.messages import PositionMessage, NeighborhoodMessage, ConnectionMessage
from repro.localsim.node import LocalNode
from repro.localsim.runtime import LocalRuntime, ProtocolTrace
from repro.localsim.timed import TimedProtocolReport, timed_protocol_cost
from repro.localsim.lossy import LossyProtocolReport, lossy_protocol_run

__all__ = [
    "PositionMessage",
    "NeighborhoodMessage",
    "ConnectionMessage",
    "LocalNode",
    "LocalRuntime",
    "ProtocolTrace",
    "TimedProtocolReport",
    "timed_protocol_cost",
    "LossyProtocolReport",
    "lossy_protocol_run",
]
