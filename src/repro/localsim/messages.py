"""Message types of the three-round ΘALG protocol."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PositionMessage", "NeighborhoodMessage", "ConnectionMessage"]


@dataclass(frozen=True)
class PositionMessage:
    """Round 1: broadcast of the sender's GPS position at maximum power."""

    sender: int
    x: float
    y: float


@dataclass(frozen=True)
class NeighborhoodMessage:
    """Round 2: the sender's Yao choice set N(sender), unicast to each member.

    ``receiver`` identifies the unicast target (the broadcast medium
    delivers only to it; other nodes in range discard).
    """

    sender: int
    receiver: int
    neighborhood: tuple[int, ...]


@dataclass(frozen=True)
class ConnectionMessage:
    """Round 3: the sender admits the receiver; establishes one N edge."""

    sender: int
    receiver: int
