"""Slot-accurate cost of the ΘALG protocol under interference (§2.1).

§2.1 closes with: "the three rounds of message exchanges may take a
variable amount of time due to the interference and confliction."  This
module quantifies that: it schedules each round's transmissions under
the guard-zone model and counts the time slots actually needed.

Model per round:

* **Round 1 (Position)** — every node broadcasts at maximum power D.
  Two broadcasts conflict when some intended receiver of one lies
  inside the other's guard disk of radius (1+Δ)·D; since every node
  within D is an intended receiver, broadcasters closer than (2+Δ)·D
  conflict.  The round needs a proper coloring of that conflict graph:
  slot count = colors used (greedy, ≤ max conflict degree + 1).
* **Rounds 2–3 (Neighborhood/Connection)** — unicasts at
  distance-adjusted power.  Each message (u → v) occupies the guard
  disks of radius (1+Δ)·|uv| around u and v; messages are scheduled
  greedily into slots with pairwise non-interference per
  :class:`repro.interference.model.InterferenceModel`.

The result is the protocol's wall-clock (slot) cost as a function of
local density — constant for civilized inputs, Θ(n) at the center of a
star, which is exactly the "variable amount of time" the paper flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.primitives import as_points
from repro.geometry.spatialindex import GridIndex
from repro.interference.model import InterferenceModel
from repro.localsim.runtime import LocalRuntime

__all__ = ["TimedProtocolReport", "timed_protocol_cost", "pack_unicast_slots"]


@dataclass(frozen=True)
class TimedProtocolReport:
    """Slot counts for each protocol round."""

    n_nodes: int
    position_slots: int
    neighborhood_slots: int
    connection_slots: int
    position_messages: int
    neighborhood_messages: int
    connection_messages: int

    @property
    def total_slots(self) -> int:
        return self.position_slots + self.neighborhood_slots + self.connection_slots

    def as_dict(self) -> dict[str, float]:
        return {
            "n_nodes": float(self.n_nodes),
            "position_slots": float(self.position_slots),
            "neighborhood_slots": float(self.neighborhood_slots),
            "connection_slots": float(self.connection_slots),
            "total_slots": float(self.total_slots),
            "position_messages": float(self.position_messages),
            "neighborhood_messages": float(self.neighborhood_messages),
            "connection_messages": float(self.connection_messages),
        }


def _greedy_broadcast_slots(points: np.ndarray, reach: float) -> int:
    """Color the broadcast conflict graph (nodes closer than ``reach``
    conflict) greedily in degree order; return the number of colors."""
    pts = as_points(points)
    n = len(pts)
    if n == 0:
        return 0
    index = GridIndex(pts, cell=max(reach, 1e-9))
    indptr, hits = index.query_radius_many(pts, reach)
    neighbors = [hits[indptr[u] : indptr[u + 1]] for u in range(n)]
    neighbors = [nb[nb != u] for u, nb in enumerate(neighbors)]
    order = sorted(range(n), key=lambda u: -len(neighbors[u]))
    color = np.full(n, -1, dtype=np.int64)
    for u in order:
        used = {int(color[v]) for v in neighbors[u] if color[v] >= 0}
        c = 0
        while c in used:
            c += 1
        color[u] = c
    return int(color.max()) + 1


def _greedy_unicast_slots(
    points: np.ndarray,
    messages: "list[tuple[int, int]]",
    delta: float,
) -> int:
    """Pack directed unicasts into non-interfering slots (first-fit).

    Messages between the same unordered pair share a bidirectional
    exchange footprint, so the pairwise interference test works on the
    unordered pair; both directions still need distinct slots (one
    packet per direction per slot).
    """
    if not messages:
        return 0
    model = InterferenceModel(delta)
    pts = as_points(points)
    slots: list[list[tuple[int, int]]] = []
    # Longer messages first: they are the hardest to place.
    order = sorted(
        range(len(messages)),
        key=lambda k: -float(
            np.hypot(*(pts[messages[k][0]] - pts[messages[k][1]]))
        ),
    )
    for k in order:
        u, v = messages[k]
        placed = False
        for slot in slots:
            ok = True
            for (a, b) in slot:
                if (a, b) == (u, v) or (b, a) == (u, v):
                    ok = False  # same channel, needs its own slot
                    break
                if model.pair_interferes(pts, (u, v), (a, b)):
                    ok = False
                    break
            if ok:
                slot.append((u, v))
                placed = True
                break
        if not placed:
            slots.append([(u, v)])
    return len(slots)


def pack_unicast_slots(
    points: np.ndarray,
    messages: "list[tuple[int, int]]",
    delta: float,
) -> int:
    """Public name for the unicast slot packer (also used by the
    Theorem 2.8 end-to-end simulation, E5b)."""
    return _greedy_unicast_slots(points, messages, delta)


def timed_protocol_cost(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    delta: float = 0.5,
    offset: float = 0.0,
) -> TimedProtocolReport:
    """Run the 3-round protocol and count interference-feasible slots."""
    runtime = LocalRuntime(points, theta, max_range, offset=offset)
    # Re-drive the rounds, capturing the unicast message lists.
    pts = runtime.points
    n = len(pts)
    for node in runtime.nodes:
        msg = node.round1_broadcast()
        for rid in runtime._in_range(node.node_id):
            runtime.nodes[rid].round1_receive(msg)
    neighborhood_msgs: list[tuple[int, int]] = []
    for node in runtime.nodes:
        for msg in node.round2_messages():
            neighborhood_msgs.append((msg.sender, msg.receiver))
            runtime.nodes[msg.receiver].round2_receive(msg)
    connection_msgs: list[tuple[int, int]] = []
    for node in runtime.nodes:
        for msg in node.round3_messages():
            connection_msgs.append((msg.sender, msg.receiver))
            runtime.nodes[msg.receiver].round3_receive(msg)

    position_slots = _greedy_broadcast_slots(pts, (2.0 + delta) * max_range)
    neighborhood_slots = _greedy_unicast_slots(pts, neighborhood_msgs, delta)
    connection_slots = _greedy_unicast_slots(pts, connection_msgs, delta)
    return TimedProtocolReport(
        n_nodes=n,
        position_slots=position_slots,
        neighborhood_slots=neighborhood_slots,
        connection_slots=connection_slots,
        position_messages=n,
        neighborhood_messages=len(neighborhood_msgs),
        connection_messages=len(connection_msgs),
    )
