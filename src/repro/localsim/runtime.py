"""The broadcast medium and round scheduler for the ΘALG protocol.

The runtime models an idealized interference-free broadcast medium (the
paper notes the three rounds "may take a variable amount of time due to
the interference and confliction" — the round *structure* is what's
being demonstrated, so the medium delivers reliably):

* a broadcast is delivered to every node within ``max_range`` of the
  sender;
* a unicast (Neighborhood/Connection message) is delivered to its
  target if the target is within range — the protocol only ever
  unicasts to in-range nodes, which the runtime asserts.

:class:`ProtocolTrace` records per-round message counts and total
"radio bytes" (a simple size model: Position = 2 floats, Neighborhood =
len(N(u)) ids, Connection = 1 id) for experiment E11.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.primitives import as_points
from repro.geometry.spatialindex import GridIndex
from repro.graphs.base import GeometricGraph
from repro.localsim.node import LocalNode
from repro.obs import metrics, trace
from repro.utils.validation import check_positive

__all__ = ["LocalRuntime", "ProtocolTrace"]


@dataclass
class ProtocolTrace:
    """Per-round accounting of the protocol run."""

    n_nodes: int = 0
    rounds: int = 3
    position_messages: int = 0
    neighborhood_messages: int = 0
    connection_messages: int = 0
    #: crude payload model: ids/floats transmitted per message type
    payload_units: int = 0
    max_messages_per_node: int = 0
    #: wall-clock seconds per protocol round, filled by the runtime
    round_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return self.position_messages + self.neighborhood_messages + self.connection_messages

    def as_dict(self) -> dict[str, float]:
        out = {
            "n_nodes": float(self.n_nodes),
            "rounds": float(self.rounds),
            "position_messages": float(self.position_messages),
            "neighborhood_messages": float(self.neighborhood_messages),
            "connection_messages": float(self.connection_messages),
            "total_messages": float(self.total_messages),
            "payload_units": float(self.payload_units),
            "max_messages_per_node": float(self.max_messages_per_node),
        }
        for name, secs in self.round_seconds.items():
            out[f"{name}_seconds"] = float(secs)
        return out


class LocalRuntime:
    """Instantiate one :class:`LocalNode` per point and run the 3 rounds.

    Parameters mirror :func:`repro.core.theta.theta_algorithm` so the
    two constructions can be compared edge-for-edge.
    """

    def __init__(
        self,
        points: np.ndarray,
        theta: float,
        max_range: float,
        *,
        offset: float = 0.0,
        kappa: float = 2.0,
    ) -> None:
        self.points = as_points(points)
        check_positive("max_range", max_range)
        self.theta = float(theta)
        self.max_range = float(max_range)
        self.kappa = float(kappa)
        self.nodes = [
            LocalNode(i, tuple(p), theta, max_range, offset=offset)
            for i, p in enumerate(self.points)
        ]
        self._index = GridIndex(self.points, cell=max_range)
        self.trace = ProtocolTrace(n_nodes=len(self.nodes))

    # ------------------------------------------------------------------
    def _in_range(self, sender: int) -> np.ndarray:
        return self._index.query_radius(self.points[sender], self.max_range, exclude=sender)

    def run(self) -> GeometricGraph:
        """Execute rounds 1–3; return the constructed topology N."""
        per_node = np.zeros(len(self.nodes), dtype=np.int64)

        # Round 1: position broadcasts.
        t0 = time.perf_counter()
        with trace.span("protocol.round1", n_nodes=len(self.nodes)) as sp:
            for node in self.nodes:
                msg = node.round1_broadcast()
                self.trace.position_messages += 1
                self.trace.payload_units += 2
                per_node[node.node_id] += 1
                for rid in self._in_range(node.node_id):
                    self.nodes[rid].round1_receive(msg)
            sp.set(messages=self.trace.position_messages)
        self.trace.round_seconds["round1"] = time.perf_counter() - t0

        # Round 2: neighborhood unicasts.
        t0 = time.perf_counter()
        with trace.span("protocol.round2", n_nodes=len(self.nodes)) as sp:
            for node in self.nodes:
                for msg in node.round2_messages():
                    dist = np.hypot(
                        *(self.points[msg.receiver] - self.points[msg.sender])
                    )
                    if dist > self.max_range + 1e-9:
                        raise AssertionError(
                            f"protocol bug: node {msg.sender} unicast out of range to {msg.receiver}"
                        )
                    self.trace.neighborhood_messages += 1
                    self.trace.payload_units += len(msg.neighborhood)
                    per_node[msg.sender] += 1
                    self.nodes[msg.receiver].round2_receive(msg)
            sp.set(messages=self.trace.neighborhood_messages)
        self.trace.round_seconds["round2"] = time.perf_counter() - t0

        # Round 3: connection unicasts.
        t0 = time.perf_counter()
        with trace.span("protocol.round3", n_nodes=len(self.nodes)) as sp:
            for node in self.nodes:
                for msg in node.round3_messages():
                    self.trace.connection_messages += 1
                    self.trace.payload_units += 1
                    per_node[msg.sender] += 1
                    self.nodes[msg.receiver].round3_receive(msg)
            sp.set(messages=self.trace.connection_messages)
        self.trace.round_seconds["round3"] = time.perf_counter() - t0

        self.trace.max_messages_per_node = int(per_node.max()) if len(per_node) else 0
        reg = metrics.active()
        if reg is not None:
            reg.counter("protocol.runs").inc()
            reg.counter("protocol.messages").inc(self.trace.total_messages)
            reg.counter("protocol.payload_units").inc(self.trace.payload_units)

        edges = sorted(set().union(*(n.edges for n in self.nodes)) if self.nodes else set())
        return GeometricGraph(
            self.points, edges, kappa=self.kappa, name=f"ThetaALG-local(θ={self.theta:.4g})"
        )
