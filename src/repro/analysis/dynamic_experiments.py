"""E23/E24 — locality of update under churn (§1, §2.1 locality argument).

The paper's central design argument is that ΘALG is *local*: each node
decides its neighborhood from information within transmission range
only.  The dynamic consequence — the reason locality matters for ad hoc
networks at all — is that a topology change (join, leave, move, crash)
requires repairing only a bounded region around the event, while any
global construction (MST, global sparsification, or simply rebuilding
from scratch) pays for the whole network every time.

This experiment drives :class:`repro.dynamic.incremental.IncrementalTheta`
with seeded mixed event traces at increasing n and measures:

* ``mean_touched`` / ``p95_touched`` — nodes whose ΘALG state was
  recomputed per event.  Under constant-density scaling (D tied to the
  connectivity bottleneck) this stays roughly flat in n, while the
  touched *fraction* of the network vanishes;
* ``update_radius_over_D`` — repair never reaches past 2D by
  construction; measured radii confirm it;
* ``ms_per_event`` vs ``full_rebuild_ms`` — incremental repair against
  a from-scratch :func:`~repro.core.theta.theta_algorithm` per event;
* ``equality_mismatches`` — the correctness backstop: after every
  ``check_every``-th event the maintained topology is compared
  edge-for-edge against the from-scratch rebuild on the live node set.

E24 extends the same argument one layer up, to the §2.4 interference
machinery: a churn event should also repair only the conflict *rows*
whose guard zones intersect the dirty region
(:class:`repro.dynamic.interference.DynamicInterference`), instead of
rebuilding the whole CSR ``interference_sets`` — with a bit-identical
result, checked row-for-row against the from-scratch kernel.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.theta import theta_algorithm
from repro.dynamic.events import random_event_trace
from repro.dynamic.incremental import IncrementalTheta
from repro.dynamic.interference import DynamicInterference
from repro.geometry.pointsets import uniform_points
from repro.harness.cache import cached_range
from repro.interference.conflict import interference_sets
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["e23_locality_of_update", "e24_interference_repair_locality"]


def e23_locality_of_update(
    *,
    ns=(250, 500, 1000, 2000),
    events_per_n=300,
    theta=math.pi / 9,
    slack=1.5,
    check_every=1,
    rebuild_reps=3,
    rng=None,
) -> list[dict]:
    """Per-event repair cost vs. network size under mixed churn.

    Parameters
    ----------
    ns:
        Network sizes; one row per size.
    events_per_n:
        Events in each random trace (moves 40%, join/leave/fail/recover
        15% each).
    check_every:
        Run the edge-for-edge equivalence backstop after every k-th
        event (1 = after every event).
    rebuild_reps:
        Repetitions when timing the from-scratch rebuild baseline.
    """
    gen = as_rng(rng)
    rows: list[dict] = []
    for n, child in zip(ns, spawn_rngs(gen, len(ns))):
        pts = uniform_points(n, rng=child)
        d0 = cached_range(pts, slack)
        inc = IncrementalTheta(pts, theta, d0)
        trace = random_event_trace(pts, events_per_n, move_sigma=d0 / 2.0, rng=child)

        touched: list[int] = []
        radii: list[float] = []
        flipped: list[int] = []
        wall: list[float] = []
        mismatches = 0
        for k, ev in enumerate(trace.events()):
            stats = inc.apply(ev)
            touched.append(stats.nodes_touched)
            radii.append(stats.update_radius)
            flipped.append(stats.edges_flipped)
            wall.append(stats.wall_time)
            if (k + 1) % check_every == 0 and inc.check_full_equivalence():
                mismatches += 1

        live = inc.live_points()
        t_rebuild = []
        for _ in range(rebuild_reps):
            t0 = time.perf_counter()
            theta_algorithm(live, theta, d0)
            t_rebuild.append(time.perf_counter() - t0)
        full_ms = float(np.mean(t_rebuild)) * 1e3
        event_ms = float(np.mean(wall)) * 1e3

        touched_arr = np.asarray(touched, dtype=np.float64)
        rows.append(
            {
                "n": int(n),
                "live_n": int(inc.n_alive),
                "events": len(touched),
                "mean_touched": float(touched_arr.mean()),
                "p95_touched": float(np.percentile(touched_arr, 95)),
                "max_touched": int(touched_arr.max()),
                "touched_per_n": float(touched_arr.mean() / n),
                "mean_update_radius_over_D": float(np.mean(radii) / d0),
                "max_update_radius_over_D": float(np.max(radii) / d0),
                "edges_flipped_per_event": float(np.mean(flipped)),
                "ms_per_event": event_ms,
                "full_rebuild_ms": full_ms,
                "rebuild_speedup": full_ms / event_ms if event_ms > 0 else float("inf"),
                "equality_mismatches": int(mismatches),
            }
        )
    return rows


def e24_interference_repair_locality(
    *,
    ns=(250, 500, 1000, 2000),
    events_per_n=200,
    theta=math.pi / 9,
    delta=0.5,
    slack=1.5,
    check_every=5,
    rebuild_reps=3,
    rng=None,
) -> list[dict]:
    """Per-event conflict-row repair cost vs. network size under churn.

    Drives an :class:`~repro.dynamic.incremental.IncrementalTheta` with
    a mixed event trace while a
    :class:`~repro.dynamic.interference.DynamicInterference` maintains
    the §2.4 interference sets, and measures per event:

    * ``mean_rows`` / ``p95_rows`` — conflict rows recomputed from
      geometry (added edges + rows of a mover's persisting edges).
      Locality says this tracks the *event's* edge flips, not m;
    * ``rows_per_edge`` — recomputed fraction of all rows (vanishes
      with n under constant-density scaling);
    * ``ms_per_event`` vs ``full_rebuild_ms`` — incremental row repair
      against a from-scratch :func:`interference_sets` per event;
    * ``equality_mismatches`` — every ``check_every``-th event the
      maintained rows are compared row-for-row against the from-scratch
      kernel on the live topology (0 = bit-identical).

    Parameters mirror :func:`e23_locality_of_update`; ``delta`` is the
    guard-zone parameter Δ.
    """
    gen = as_rng(rng)
    rows: list[dict] = []
    for n, child in zip(ns, spawn_rngs(gen, len(ns))):
        pts = uniform_points(n, rng=child)
        d0 = cached_range(pts, slack)
        inc = IncrementalTheta(pts, theta, d0)
        di = DynamicInterference(inc, delta)
        trace = random_event_trace(pts, events_per_n, move_sigma=d0 / 2.0, rng=child)

        rows_touched: list[int] = []
        entries: list[int] = []
        wall: list[float] = []
        mismatches = 0
        for k, ev in enumerate(trace.events()):
            stats = inc.apply(ev)
            cs = di.update_event(stats)
            rows_touched.append(cs.rows_recomputed)
            entries.append(cs.entries_changed)
            wall.append(stats.wall_time + cs.wall_time)
            if (k + 1) % check_every == 0 and di.check_full_equivalence():
                mismatches += 1

        graph = inc.snapshot_graph()
        t_rebuild = []
        for _ in range(rebuild_reps):
            t0 = time.perf_counter()
            interference_sets(graph, delta)
            t_rebuild.append(time.perf_counter() - t0)
        full_ms = float(np.mean(t_rebuild)) * 1e3
        event_ms = float(np.mean(wall)) * 1e3

        rows_arr = np.asarray(rows_touched, dtype=np.float64)
        m = max(di.n_edges, 1)
        rows.append(
            {
                "n": int(n),
                "live_n": int(inc.n_alive),
                "edges": int(di.n_edges),
                "events": len(rows_arr),
                "mean_rows": float(rows_arr.mean()),
                "p95_rows": float(np.percentile(rows_arr, 95)),
                "max_rows": int(rows_arr.max()),
                "rows_per_edge": float(rows_arr.mean() / m),
                "entries_changed_per_event": float(np.mean(entries)),
                "ms_per_event": event_ms,
                "full_rebuild_ms": full_ms,
                "rebuild_speedup": full_ms / event_ms if event_ms > 0 else float("inf"),
                "equality_mismatches": int(mismatches),
            }
        )
    return rows
