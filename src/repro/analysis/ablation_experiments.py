"""Ablation and extension experiments (E13–E15).

E13 — protocol vs physical interference (§2.4 remark).  The paper's
guard-zone model is "a simplified version of the physical model"; this
ablation quantifies the simplification: for random simultaneous
transmission sets on ΘALG topologies, how often do the two models
agree, and in which direction do they disagree as Δ and β vary?

E14 — locality vs global postprocessing (§2.1 remark).  ΘALG's phase 2
is one local round; the prior constructions need a global edge ranking.
This ablation shows the two deliver comparable degree/stretch, isolating
locality as ΘALG's contribution.

E15 — the paper's open problem.  "For a general distribution of nodes,
however, we have not been able to resolve whether N is a spanner" —
this probe searches adversarial configurations (all registry
distributions plus the star and bridge families across θ) for large
*distance*-stretch, reporting the worst configuration found.  A bounded
worst case is evidence (not proof) for spannerhood; an unbounded trend
would be a counterexample family.
"""

from __future__ import annotations

import math

from repro.geometry.pointsets import (
    DISTRIBUTIONS,
    star_points,
    two_cluster_bridge_points,
    uniform_points,
)
from repro.graphs.metrics import distance_stretch, energy_stretch, max_degree
from repro.graphs.sparsify import global_yao_sparsification, greedy_spanner
from repro.graphs.yao import yao_graph
from repro.harness.cache import cached_range, cached_theta_topology, cached_transmission_graph
from repro.interference.model import InterferenceModel
from repro.interference.physical import PhysicalInterferenceModel
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "e13_interference_models",
    "e14_local_vs_global",
    "e15_spanner_probe",
]


def e13_interference_models(
    *,
    n=128,
    theta=math.pi / 9,
    deltas=(0.25, 0.5, 1.0),
    betas=(1.0, 2.0, 4.0),
    sets_per_config=200,
    set_size=8,
    rng=None,
) -> list[dict]:
    """E13 — agreement between the guard-zone and SINR success decisions.

    For random k-subsets of a ΘALG topology's edges transmitting
    simultaneously, classify each transmission by (protocol-success,
    SINR-success) and report the confusion fractions.  The protocol
    model should be *conservative*: its failures mostly contain the
    SINR failures, with the disagreement shrinking as Δ grows.
    """
    gen = as_rng(rng)
    pts = uniform_points(n, rng=gen)
    d = cached_range(pts, 1.5)
    topo = cached_theta_topology(pts, theta, d)
    g = topo.graph
    rows = []
    for delta in deltas:
        protocol = InterferenceModel(delta)
        for beta in betas:
            physical = PhysicalInterferenceModel(beta=beta, kappa=g.kappa)
            agree = 0
            proto_only_fail = 0  # protocol kills, SINR fine (conservatism)
            sinr_only_fail = 0  # SINR kills, protocol fine (optimism)
            total = 0
            for _ in range(sets_per_config):
                k = min(set_size, g.n_edges)
                sel = gen.choice(g.n_edges, size=k, replace=False)
                edges = g.edges[sel]
                p_ok = protocol.successful_mask(pts, edges)
                s_ok = physical.successful_mask(pts, edges)
                total += k
                agree += int((p_ok == s_ok).sum())
                proto_only_fail += int((~p_ok & s_ok).sum())
                sinr_only_fail += int((p_ok & ~s_ok).sum())
            rows.append(
                {
                    "delta": delta,
                    "beta": beta,
                    "agreement": round(agree / total, 3),
                    "protocol_conservative": round(proto_only_fail / total, 3),
                    "protocol_optimistic": round(sinr_only_fail / total, 3),
                    "transmissions": total,
                }
            )
    return rows


def e14_local_vs_global(
    *,
    ns=(64, 128, 256),
    theta=math.pi / 9,
    rng=None,
    max_sources=96,
) -> list[dict]:
    """E14 — ΘALG (1 extra local round) vs global Yao postprocessing vs
    the greedy spanner (full global knowledge), on quality and the
    communication structure each needs."""
    gen = as_rng(rng)
    rows = []
    for n, child in zip(ns, spawn_rngs(gen, len(ns))):
        pts = uniform_points(n, rng=child)
        d = cached_range(pts, 1.5)
        gstar = cached_transmission_graph(pts, d)
        yao = yao_graph(pts, theta, d)
        candidates = {
            "ThetaALG (local, 3 rounds)": cached_theta_topology(pts, theta, d).graph,
            "global Yao sparsify (diameter rounds)": global_yao_sparsification(yao, 2.0),
            "greedy spanner (global ranking)": greedy_spanner(gstar, 1.5),
        }
        for name, g in candidates.items():
            es = energy_stretch(g, gstar, max_sources=max_sources, rng=child)
            rows.append(
                {
                    "n": n,
                    "algorithm": name,
                    "edges": g.n_edges,
                    "max_degree": max_degree(g),
                    "energy_stretch": round(es.max_stretch, 3),
                    "disconnected": es.disconnected_pairs,
                }
            )
    return rows


def e15_spanner_probe(
    *,
    n=128,
    thetas=(math.pi / 6, math.pi / 9, math.pi / 12),
    trials=5,
    rng=None,
    max_sources=96,
) -> list[dict]:
    """E15 — probing the open problem: is N a spanner in general?

    Measures the worst distance-stretch of N over every adversarial
    family in the registry plus the star/bridge constructions, per θ.
    The paper proves O(1) *energy*-stretch but leaves distance-stretch
    open for non-civilized inputs.
    """
    gen = as_rng(rng)
    families: dict[str, list] = {name: [] for name in DISTRIBUTIONS}
    families["star"] = []
    families["bridge"] = []
    rows = []
    for theta in thetas:
        worst = {}
        for fam in families:
            worst[fam] = 0.0
            for child in spawn_rngs(gen, trials):
                if fam == "star":
                    pts = star_points(n, rng=child)
                elif fam == "bridge":
                    pts = two_cluster_bridge_points(n, rng=child)
                else:
                    pts = DISTRIBUTIONS[fam](n, rng=child)
                d = cached_range(pts, 1.5)
                gstar = cached_transmission_graph(pts, d)
                topo = cached_theta_topology(pts, theta, d)
                ds = distance_stretch(topo.graph, gstar, max_sources=max_sources, rng=child)
                if ds.disconnected_pairs:
                    worst[fam] = float("inf")
                else:
                    worst[fam] = max(worst[fam], ds.max_stretch)
        for fam, w in worst.items():
            rows.append(
                {
                    "theta_deg": round(math.degrees(theta), 1),
                    "family": fam,
                    "worst_distance_stretch": round(w, 3),
                    "trials": trials,
                }
            )
    return rows
