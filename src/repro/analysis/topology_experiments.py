"""Harnesses for the topology-side experiments (E1–E5, E10, E11, E19, E22).

Each function returns a list of structured row dicts ready for
:func:`repro.analysis.tables.render_table` and for the claim predicates
in :mod:`repro.harness.checks`; the benchmarks under ``benchmarks/``
and the ``repro verify`` claim registry both consume them.  Substrate
construction (connectivity range, G*, ΘALG) goes through the shared
memoization cache in :mod:`repro.harness.cache`, so experiments that
sweep over a parameter G* does not depend on — or that draw the same
seeded point set — build each object once per process.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.theta_paths import path_congestion, replace_schedule_edges
from repro.geometry.pointsets import DISTRIBUTIONS, civilized_points, precision_lambda, uniform_points
from repro.graphs.baselines import (
    euclidean_mst,
    gabriel_graph,
    knn_graph,
    relative_neighborhood_graph,
    restricted_delaunay_graph,
)
from repro.graphs.metrics import (
    distance_stretch,
    energy_stretch,
    is_connected,
    max_degree,
)
from repro.graphs.yao import yao_graph
from repro.harness.cache import (
    cached_interference_sets,
    cached_range,
    cached_theta_topology,
    cached_transmission_graph,
)
from repro.interference.model import InterferenceModel
from repro.localsim.runtime import LocalRuntime
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "e1_degree_connectivity",
    "e2_energy_stretch",
    "e3_distance_stretch_civilized",
    "e4_interference_scaling",
    "e5_schedule_replacement",
    "e5b_full_simulation",
    "e5c_packet_transform",
    "e10_topology_zoo",
    "e11_local_protocol",
    "e19_protocol_slots",
    "e22_lossy_protocol",
]


def _build(points, theta, *, kappa=2.0, range_slack=1.5):
    """Common preamble: connected G* + ΘALG output on it (memoized)."""
    d = cached_range(points, range_slack)
    gstar = cached_transmission_graph(points, d, kappa)
    topo = cached_theta_topology(points, theta, d, kappa)
    return gstar, topo, d


def e1_degree_connectivity(
    *,
    ns=(64, 128, 256, 512),
    thetas=(math.pi / 6, math.pi / 9, math.pi / 12),
    distributions=("uniform", "clustered", "ring", "two_cluster"),
    rng=None,
) -> list[dict]:
    """E1 — Lemma 2.1: N is connected with max degree ≤ 4π/θ.

    Sweeps n × θ × distribution and reports the measured max degree
    against the lemma's bound and the connectivity verdict.
    """
    gen = as_rng(rng)
    rows = []
    for dist_name in distributions:
        for n in ns:
            pts = DISTRIBUTIONS[dist_name](n, rng=gen)
            for theta in thetas:
                gstar, topo, d = _build(pts, theta)
                bound = 4.0 * math.pi / topo.partition.width
                rows.append(
                    {
                        "distribution": dist_name,
                        "n": n,
                        "theta_deg": round(math.degrees(theta), 1),
                        "gstar_connected": is_connected(gstar),
                        "N_connected": is_connected(topo.graph),
                        "max_degree": max_degree(topo.graph),
                        "degree_bound_4pi_over_theta": round(bound, 1),
                        "within_bound": max_degree(topo.graph) <= bound,
                        "edges_N": topo.graph.n_edges,
                        "edges_Gstar": gstar.n_edges,
                    }
                )
    return rows


def e2_energy_stretch(
    *,
    ns=(64, 128, 256),
    thetas=(math.pi / 6, math.pi / 9, math.pi / 12),
    kappas=(2.0, 3.0, 4.0),
    distributions=("uniform", "clustered", "ring", "two_cluster"),
    include_yao=True,
    rng=None,
    max_sources=128,
) -> list[dict]:
    """E2 — Theorem 2.2: energy-stretch of N is O(1) for any distribution.

    The bound is a constant depending on θ (and κ) but *not* on n or
    the distribution — the table lets all four vary so flatness in n
    and distribution is visible.  ``include_yao`` adds the unpruned Yao
    graph N₁ as the phase-2 ablation.
    """
    gen = as_rng(rng)
    rows = []
    for dist_name in distributions:
        for n in ns:
            pts = DISTRIBUTIONS[dist_name](n, rng=gen)
            for theta in thetas:
                for kappa in kappas:
                    gstar, topo, d = _build(pts, theta, kappa=kappa)
                    es = energy_stretch(topo.graph, gstar, max_sources=max_sources, rng=gen)
                    row = {
                        "distribution": dist_name,
                        "n": n,
                        "theta_deg": round(math.degrees(theta), 1),
                        "kappa": kappa,
                        "energy_stretch_max": round(es.max_stretch, 3),
                        "energy_stretch_mean": round(es.mean_stretch, 3),
                        "edge_stretch_max": round(es.max_edge_stretch, 3),
                        "disconnected_pairs": es.disconnected_pairs,
                    }
                    if include_yao:
                        ya = yao_graph(pts, theta, d, kappa=kappa)
                        ey = energy_stretch(ya, gstar, max_sources=max_sources, rng=gen)
                        row["yao_stretch_max"] = round(ey.max_stretch, 3)
                        row["yao_max_degree"] = max_degree(ya)
                        row["N_max_degree"] = max_degree(topo.graph)
                    rows.append(row)
    return rows


def e3_distance_stretch_civilized(
    *,
    ns=(64, 128, 256),
    lams=(0.3, 0.5, 0.8),
    thetas=(math.pi / 6, math.pi / 12),
    rng=None,
    max_sources=128,
) -> list[dict]:
    """E3 — Theorem 2.7: O(1) distance-stretch on civilized (λ-precision)
    node sets; contrast with non-civilized inputs where only
    energy-stretch is guaranteed."""
    gen = as_rng(rng)
    rows = []
    for n in ns:
        for lam in lams:
            pts = civilized_points(n, lam=lam, rng=gen)
            for theta in thetas:
                gstar, topo, d = _build(pts, theta)
                ds = distance_stretch(topo.graph, gstar, max_sources=max_sources, rng=gen)
                es = energy_stretch(topo.graph, gstar, max_sources=max_sources, rng=gen)
                rows.append(
                    {
                        "n": n,
                        "lambda_target": lam,
                        "lambda_measured": round(precision_lambda(pts, d), 3),
                        "theta_deg": round(math.degrees(theta), 1),
                        "distance_stretch_max": round(ds.max_stretch, 3),
                        "distance_stretch_mean": round(ds.mean_stretch, 3),
                        "energy_stretch_max": round(es.max_stretch, 3),
                        "connected": is_connected(topo.graph),
                    }
                )
    return rows


def e4_interference_scaling(
    *,
    ns=(64, 128, 256, 512, 1024),
    deltas=(0.25, 0.5, 1.0),
    theta=math.pi / 9,
    trials=3,
    rng=None,
    include_gstar=True,
) -> list[dict]:
    """E4 — Lemma 2.10: interference number of N is O(log n) whp for
    uniform random nodes (compare against G*, which scales like Θ(n))."""
    gen = as_rng(rng)
    rows = []
    for delta in deltas:
        for n in ns:
            vals = []
            gstar_vals = []
            for child in spawn_rngs(gen, trials):
                pts = uniform_points(n, rng=child)
                gstar, topo, d = _build(pts, theta)
                vals.append(cached_interference_sets(topo.graph, delta).max_degree())
                if include_gstar:
                    gstar_vals.append(cached_interference_sets(gstar, delta).max_degree())
            row = {
                "delta": delta,
                "n": n,
                "ln_n": round(math.log(n), 2),
                "I_N_mean": round(float(np.mean(vals)), 1),
                "I_N_max": int(np.max(vals)),
                "I_over_ln_n": round(float(np.mean(vals)) / math.log(n), 2),
            }
            if include_gstar:
                row["I_Gstar_mean"] = round(float(np.mean(gstar_vals)), 1)
            rows.append(row)
    return rows


def e5_schedule_replacement(
    *,
    ns=(64, 128, 256),
    theta=math.pi / 9,
    delta=0.5,
    steps=20,
    rng=None,
) -> list[dict]:
    """E5 — Theorem 2.8 / Lemma 2.9: replace random non-interfering G*
    edge sets by θ-paths in N; report per-step N-edge congestion (the
    lemma bounds it by 6) and the implied slowdown."""
    gen = as_rng(rng)
    model = InterferenceModel(delta)
    rows = []
    for n in ns:
        pts = uniform_points(n, rng=gen)
        gstar, topo, d = _build(pts, theta)
        max_congestion = 0
        total_paths = 0
        total_hops = 0
        worst_slowdown = 0
        for _ in range(steps):
            # Greedy random maximal non-interfering edge set T on G*.
            order = gen.permutation(gstar.n_edges)
            chosen: list[int] = []
            for e in order:
                ok = True
                for f in chosen:
                    if model.pair_interferes(pts, tuple(gstar.edges[e]), tuple(gstar.edges[f])):
                        ok = False
                        break
                if ok:
                    chosen.append(int(e))
                if len(chosen) >= 32:
                    break
            if not chosen:
                continue
            paths = replace_schedule_edges(topo, gstar.edges[chosen])
            congestion = path_congestion(topo, paths)
            step_max = max(congestion.values(), default=0)
            max_congestion = max(max_congestion, step_max)
            worst_slowdown = max(worst_slowdown, max(len(p) - 1 for p in paths))
            total_paths += len(paths)
            total_hops += sum(len(p) - 1 for p in paths)
        rows.append(
            {
                "n": n,
                "steps": steps,
                "paths_replaced": total_paths,
                "mean_path_hops": round(total_hops / max(total_paths, 1), 2),
                "max_edge_congestion": max_congestion,
                "lemma29_bound": 6,
                "within_bound": max_congestion <= 6,
                "max_path_hops": worst_slowdown,
            }
        )
    return rows


def e5b_full_simulation(
    *,
    ns=(48, 96),
    theta=math.pi / 9,
    delta=0.5,
    rng=None,
) -> list[dict]:
    """E5b — Theorem 2.8 end to end: total slowdown of simulating a
    *complete* G* schedule on N.

    Builds a full TDMA schedule of G* (greedy interference coloring:
    every edge transmits once), replaces each round's edges by θ-paths
    in N, packs the resulting N-transmissions into non-interfering
    slots, and reports the slowdown ratio — Theorem 2.8 bounds it by
    O(I) (+ the n² additive term).
    """
    from repro.interference.conflict import greedy_interference_schedule
    from repro.localsim.timed import pack_unicast_slots

    gen = as_rng(rng)
    rows = []
    for n in ns:
        pts = uniform_points(n, rng=gen)
        gstar, topo, d = _build(pts, theta)
        gstar_rounds = greedy_interference_schedule(gstar, delta)
        n_slots_total = 0
        for r in gstar_rounds:
            paths = replace_schedule_edges(topo, gstar.edges[r])
            messages = [
                (a, b) for p in paths for a, b in zip(p[:-1], p[1:])
            ]
            n_slots_total += pack_unicast_slots(pts, messages, delta)
        big_i = cached_interference_sets(topo.graph, delta).max_degree()
        rows.append(
            {
                "n": n,
                "gstar_rounds": len(gstar_rounds),
                "n_slots_on_N": n_slots_total,
                "slowdown": round(n_slots_total / max(len(gstar_rounds), 1), 2),
                "interference_I": big_i,
                "slowdown_over_I": round(
                    n_slots_total / max(len(gstar_rounds), 1) / max(big_i, 1), 4
                ),
            }
        )
    return rows


def e5c_packet_transform(
    *,
    ns=(48, 96),
    n_packets=25,
    theta=math.pi / 9,
    delta=0.5,
    rng=None,
) -> list[dict]:
    """E5c — Theorem 2.8 at packet granularity: transform whole G*
    packet schedules (witnessed permutation traffic) into validated,
    interference-free N schedules and report the makespan inflation.
    """
    from repro.core.schedule_transform import (
        transform_schedules,
        verify_interference_free,
    )
    from repro.sim.adversary import permutation_scenario

    gen = as_rng(rng)
    rows = []
    for n in ns:
        pts = uniform_points(n, rng=gen)
        gstar, topo, d = _build(pts, theta)
        scen = permutation_scenario(gstar, n_packets, rng=gen)
        ins = scen.witness_schedules
        outs = transform_schedules(topo, ins, delta=delta)
        verify_interference_free(topo, outs, delta)
        t_in = max(s.finish_time for s in ins)
        t_out = max(s.finish_time for s in outs)
        big_i = cached_interference_sets(topo.graph, delta).max_degree()
        rows.append(
            {
                "n": n,
                "packets": len(ins),
                "makespan_Gstar": t_in,
                "makespan_N": t_out,
                "inflation": round(t_out / max(t_in, 1), 2),
                "interference_I": big_i,
                "inflation_over_I": round(t_out / max(t_in, 1) / max(big_i, 1), 4),
            }
        )
    return rows


def e10_topology_zoo(
    *,
    n=256,
    theta=math.pi / 9,
    delta=0.5,
    distributions=("uniform", "civilized"),
    rng=None,
    max_sources=128,
) -> list[dict]:
    """E10 — §1.2 comparison: ΘALG vs Yao, Gabriel, RNG, restricted
    Delaunay, kNN, MST on degree, stretch, and interference number."""
    gen = as_rng(rng)
    rows = []
    for dist_name in distributions:
        pts = DISTRIBUTIONS[dist_name](n, rng=gen)
        gstar, topo, d = _build(pts, theta)
        zoo = {
            "ThetaALG(N)": topo.graph,
            "Yao(N1)": topo.yao_graph,
            "Gabriel": gabriel_graph(pts, d),
            "RNG": relative_neighborhood_graph(pts, d),
            "RDG": restricted_delaunay_graph(pts, d),
            "kNN(k=6)": knn_graph(pts, 6, d),
            "MST": euclidean_mst(pts),
            "Gstar": gstar,
        }
        for name, g in zoo.items():
            es = energy_stretch(g, gstar, max_sources=max_sources, rng=gen)
            ds = distance_stretch(g, gstar, max_sources=max_sources, rng=gen)
            rows.append(
                {
                    "distribution": dist_name,
                    "topology": name,
                    "edges": g.n_edges,
                    "max_degree": max_degree(g),
                    "connected": is_connected(g),
                    "energy_stretch": round(es.max_stretch, 3)
                    if es.disconnected_pairs == 0
                    else float("inf"),
                    "distance_stretch": round(ds.max_stretch, 3)
                    if ds.disconnected_pairs == 0
                    else float("inf"),
                    "interference_number": cached_interference_sets(g, delta).max_degree(),
                }
            )
    return rows


def e11_local_protocol(
    *,
    ns=(64, 128, 256, 512),
    theta=math.pi / 9,
    rng=None,
) -> list[dict]:
    """E11 — §2.1 implementability: run the 3-round protocol, check the
    output equals the centralized construction, report message counts."""
    gen = as_rng(rng)
    rows = []
    for n in ns:
        pts = uniform_points(n, rng=gen)
        d = cached_range(pts, 1.5)
        runtime = LocalRuntime(pts, theta, d)
        local_graph = runtime.run()
        topo = cached_theta_topology(pts, theta, d)
        same = np.array_equal(local_graph.edges, topo.graph.edges)
        tr = runtime.trace
        rows.append(
            {
                "n": n,
                "rounds": tr.rounds,
                "position_msgs": tr.position_messages,
                "neighborhood_msgs": tr.neighborhood_messages,
                "connection_msgs": tr.connection_messages,
                "total_msgs": tr.total_messages,
                "msgs_per_node": round(tr.total_messages / n, 2),
                "matches_centralized": same,
            }
        )
    return rows


def e19_protocol_slots(
    *,
    ns=(64, 128, 256),
    theta=math.pi / 9,
    delta=0.5,
    lam=0.5,
    slack=1.3,
    rng=None,
) -> list[dict]:
    """E19 — §2.1 closing remark: slot cost of the 3 protocol rounds
    under interference, for uniform vs civilized (λ-precision) inputs.

    On bounded-density inputs the per-round slot cost is flat in n
    (true locality); at connectivity-critical uniform density it grows
    with the Θ(log n) local density.
    """
    from repro.localsim.timed import timed_protocol_cost

    gen = as_rng(rng)
    rows = []
    for dist_name, maker in (
        ("uniform", lambda n, r: uniform_points(n, rng=r)),
        ("civilized", lambda n, r: civilized_points(n, lam=lam, rng=r)),
    ):
        for n, child in zip(ns, spawn_rngs(gen, len(ns))):
            pts = maker(n, child)
            d = cached_range(pts, slack)
            rep = timed_protocol_cost(pts, theta, d, delta=delta)
            rows.append({"distribution": dist_name, "n": n, **rep.as_dict()})
    return rows


def e22_lossy_protocol(
    *,
    n=100,
    losses=(0.0, 0.2, 0.5),
    retry_budgets=(0, 4),
    theta=math.pi / 9,
    slack=1.4,
    points_seed=5,
    run_seed=9,
    rng=None,
) -> list[dict]:
    """E22 — failure injection: the 3-round protocol over a lossy medium.

    Sweeps the per-delivery loss probability × the retransmission
    budget and reports edge recall vs the ideal topology plus the
    transmission overhead.  ``rng`` (when given) reseeds both the point
    set and the protocol runs; the defaults reproduce the historical
    tables.
    """
    from repro.localsim.lossy import lossy_protocol_run

    if rng is not None:
        pts_rng, run_rng = spawn_rngs(as_rng(rng), 2)
    else:
        pts_rng, run_rng = points_seed, run_seed
    pts = uniform_points(n, rng=pts_rng)
    d = cached_range(pts, slack)
    rows = []
    for loss in losses:
        for retries in retry_budgets:
            _, rep = lossy_protocol_run(
                pts, theta, d, loss_prob=loss, retries=retries, rng=run_rng
            )
            rows.append({"loss_prob": loss, "retries": retries, **rep.as_dict()})
    return rows
