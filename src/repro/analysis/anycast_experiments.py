"""E18 — anycast balancing (extension; the [10] lineage with costs).

The paper generalizes the anycast balancing results of Awerbuch,
Brinkmann, Scheideler [10] to edge costs.  This experiment runs the
anycast variant: packets addressed to destination *groups* (server
replicas), absorbed at any member.  Comparison: the same workload
routed unicast to a *fixed* member chosen up front (what a client
without anycast must do).  Anycast should match or beat unicast on
both deliveries and average energy, because its gradient pulls every
packet toward the *nearest* replica.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.anycast import AnycastBalancingRouter
from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.geometry.pointsets import uniform_points
from repro.harness.cache import cached_range, cached_theta_topology
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["e18_anycast"]


def e18_anycast(
    *,
    n=80,
    group_sizes=(1, 2, 4, 8),
    theta=math.pi / 9,
    duration=500,
    n_sources=4,
    rng=None,
) -> list[dict]:
    """Deliveries and energy vs replica-group size.

    One destination group of ``m`` random members; ``n_sources`` fixed
    sources inject one packet per step.  The unicast baseline sends each
    source's stream to one fixed group member (the nearest by index
    assignment), using the identical balancing rule — so the measured
    difference is purely the anycast absorption semantics.
    """
    gen = as_rng(rng)
    rows = []
    for m, child in zip(group_sizes, spawn_rngs(gen, len(group_sizes))):
        pts = uniform_points(n, rng=child)
        d = cached_range(pts, 1.5)
        topo = cached_theta_topology(pts, theta, d)
        g = topo.graph
        edges = g.directed_edge_array()
        costs = np.concatenate([g.edge_costs, g.edge_costs])

        members = [int(x) for x in child.choice(n, size=m, replace=False)]
        sources = [int(x) for x in child.choice(
            [v for v in range(n) if v not in members], size=n_sources, replace=False
        )]

        anycast = AnycastBalancingRouter(n, [members], BalancingConfig(1.0, 0.0, 256))
        unicast = BalancingRouter(n, members, BalancingConfig(1.0, 0.0, 256))
        # Fixed member assignment for unicast: round-robin over members.
        assignment = {s: members[k % m] for k, s in enumerate(sources)}

        for t in range(duration):
            anycast.run_step(edges, costs, [(s, 0, 1) for s in sources])
            unicast.run_step(edges, costs, [(s, assignment[s], 1) for s in sources])
        for _ in range(duration):
            anycast.run_step(edges, costs)
            unicast.run_step(edges, costs)

        rows.append(
            {
                "group_size": m,
                "anycast_delivered": anycast.stats.delivered,
                "unicast_delivered": unicast.stats.delivered,
                "anycast_avg_cost": round(anycast.stats.average_cost, 4),
                "unicast_avg_cost": round(unicast.stats.average_cost, 4),
                "anycast_leftover": anycast.total_packets(),
                "unicast_leftover": unicast.total_packets(),
                "injected": anycast.stats.injected,
            }
        )
    return rows
