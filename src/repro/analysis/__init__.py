"""Experiment harnesses and proof-machinery checkers.

* :mod:`repro.analysis.lemmas` — Lemmas 2.3–2.6 as executable
  predicates (property-tested over random geometry);
* :mod:`repro.analysis.tables` — plain-text table rendering for the
  benchmark reports;
* :mod:`repro.analysis.topology_experiments` — harnesses for E1–E5,
  E10, E11 (topology-side claims);
* :mod:`repro.analysis.routing_experiments` — harnesses for E6–E9,
  E12 (routing-side claims).

Each harness returns a list of row dicts; the benchmarks print them via
:func:`repro.analysis.tables.render_table` and EXPERIMENTS.md records
the measured values against the paper's claims.
"""

from repro.analysis.lemmas import (
    lemma23_holds,
    lemma23_constant,
    lemma24_holds,
    lemma25_holds,
    lemma26_holds,
)
from repro.analysis.tables import render_table, fit_log_slope
from repro.analysis.topology_experiments import (
    e1_degree_connectivity,
    e2_energy_stretch,
    e3_distance_stretch_civilized,
    e4_interference_scaling,
    e5_schedule_replacement,
    e5b_full_simulation,
    e5c_packet_transform,
    e10_topology_zoo,
    e11_local_protocol,
)
from repro.analysis.routing_experiments import (
    e6_balancing_competitive,
    e7_tgi_throughput,
    e8_random_competitive,
    e9_honeycomb,
    e12_buffer_tradeoff,
    e21_frequency_sweep,
)
from repro.analysis.ablation_experiments import (
    e13_interference_models,
    e14_local_vs_global,
    e15_spanner_probe,
)
from repro.analysis.campaigns import campaign_claim_summary, group_reduce
from repro.analysis.mobility_experiments import e16_mobility_churn
from repro.analysis.geographic_experiments import e17_geographic_routing
from repro.analysis.anycast_experiments import e18_anycast
from repro.analysis.ascii_viz import render_graph_ascii, render_points_ascii

__all__ = [
    "lemma23_holds",
    "lemma23_constant",
    "lemma24_holds",
    "lemma25_holds",
    "lemma26_holds",
    "render_table",
    "fit_log_slope",
    "e1_degree_connectivity",
    "e2_energy_stretch",
    "e3_distance_stretch_civilized",
    "e4_interference_scaling",
    "e5_schedule_replacement",
    "e5b_full_simulation",
    "e5c_packet_transform",
    "e10_topology_zoo",
    "e11_local_protocol",
    "e6_balancing_competitive",
    "e7_tgi_throughput",
    "e8_random_competitive",
    "e9_honeycomb",
    "e12_buffer_tradeoff",
    "e21_frequency_sweep",
    "e13_interference_models",
    "e14_local_vs_global",
    "e15_spanner_probe",
    "campaign_claim_summary",
    "group_reduce",
    "e16_mobility_churn",
    "e17_geographic_routing",
    "e18_anycast",
    "render_graph_ascii",
    "render_points_ascii",
]
