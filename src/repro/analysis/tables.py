"""Plain-text tables and small fitting helpers for the experiment reports.

The benches print the same kind of rows the paper's theorems quantify
over; :func:`render_table` keeps them aligned and diff-friendly, and
:func:`fit_log_slope` backs the O(log n) scaling claims (experiment E4)
with a least-squares fit of ``y ≈ a·ln(n) + b``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

__all__ = ["render_table", "fit_log_slope", "geometric_mean"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(rows: "Iterable[Mapping[str, object]]", *, title: str = "") -> str:
    """Render a list of dict rows as an aligned text table.

    Columns are the union of keys in first-seen order; missing cells
    render empty.  Returns the table as a string (callers print it).
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[k]) for r in cells)) for k, c in enumerate(columns)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(" | ".join(v.rjust(w) for v, w in zip(r, widths)) for r in cells)
    out = f"{header}\n{sep}\n{body}"
    if title:
        out = f"== {title} ==\n{out}"
    return out


def fit_log_slope(ns: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Least-squares fit ``y ≈ a·ln(n) + b``; returns ``(a, b)``.

    Used to verify O(log n) claims: a bounded positive slope with small
    residuals supports the claim; a slope growing with n (checked by
    fitting on prefixes) would refute it.
    """
    ns = np.asarray(ns, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if len(ns) < 2:
        raise ValueError("need at least two points to fit")
    x = np.log(ns)
    a, b = np.polyfit(x, ys, 1)
    return float(a), float(b)


def geometric_mean(values: "Iterable[float]") -> float:
    """Geometric mean (ratios aggregate multiplicatively)."""
    vals = np.asarray(list(values), dtype=np.float64)
    if len(vals) == 0:
        raise ValueError("geometric mean of empty sequence")
    if (vals <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))
