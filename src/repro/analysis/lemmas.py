"""Executable versions of the technical geometry lemmas (§2.2).

Theorem 2.2's induction rests on four elementary-geometry lemmas.  Each
is implemented here as a predicate over explicit point coordinates so
that hypothesis can hammer them with random (and adversarially shrunk)
configurations — the reproduction's analogue of checking the proofs.

Lemma 2.3   For any triangle ABC with |AC| ≤ |BC| and ∠ACB ≤ π/3:
            c·|AB|² + |AC|² ≤ c·|BC|²   for  c ≥ 1/(2·cos∠ACB − 1).

Lemma 2.4   For any triangle ABC with |BC| ≤ |AC| ≤ |AB| and
            ∠BAC ≤ π/6:  |BC| ≤ |AB| / (2·cos∠BAC).

Lemma 2.5   For points A, A₁…A_k with |AAᵢ| ≥ |AAᵢ₊₁| and consecutive
            angular gaps in [0, θ], if ∠A₁AA_k = α then
            Σ|AᵢAᵢ₊₁|² ≤ (|AA₁|−|AA_k|)² + 2|AA₁|²·(α/θ)(1−cosθ).

Lemma 2.6   Disk/chord configuration bounding sector drift:
            with O the midpoint of AB, D at |BD| = |AB| and ∠DBA=π/6,
            C outside C(O,|OA|) with |AC| ≤ |AB|, ∠CAB < π/12, C and D
            on the same side of AB, and E the intersection of segment
            CD with circle C(O,|OA|):  ∠EAB ≤ 2·∠CAB.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import angle_between

__all__ = [
    "lemma23_constant",
    "lemma23_holds",
    "lemma24_holds",
    "lemma25_holds",
    "lemma26_holds",
]

_EPS = 1e-9


def lemma23_constant(angle_acb: float) -> float:
    """The constant ``1/(2·cos∠ACB − 1)`` of Lemma 2.3 (finite for < π/3)."""
    denom = 2.0 * math.cos(angle_acb) - 1.0
    if denom <= 0:
        raise ValueError(f"Lemma 2.3 requires ∠ACB < π/3 strictly; got {angle_acb}")
    return 1.0 / denom


def lemma23_holds(a, b, c_pt, *, c_const: float | None = None) -> bool:
    """Check Lemma 2.3 on triangle (A, B, C).

    Preconditions (|AC| ≤ |BC|, ∠ACB ≤ π/3) are *asserted*; the return
    value is the inequality ``c·|AB|² + |AC|² ≤ c·|BC|²``.
    """
    a = np.asarray(a, float)
    b = np.asarray(b, float)
    c_pt = np.asarray(c_pt, float)
    ac = float(np.hypot(*(a - c_pt)))
    bc = float(np.hypot(*(b - c_pt)))
    ab = float(np.hypot(*(a - b)))
    if ac > bc + _EPS:
        raise ValueError("precondition |AC| <= |BC| violated")
    gamma = angle_between(a, c_pt, b)
    if gamma > math.pi / 3 + _EPS:
        raise ValueError("precondition ∠ACB <= π/3 violated")
    cc = lemma23_constant(min(gamma, math.pi / 3 - 1e-12)) if c_const is None else c_const
    return cc * ab * ab + ac * ac <= cc * bc * bc + _EPS * max(1.0, bc * bc)


def lemma24_holds(a, b, c_pt) -> bool:
    """Check Lemma 2.4 on triangle (A, B, C).

    Preconditions (|BC| ≤ |AC| ≤ |AB|, ∠BAC ≤ π/6) asserted; returns
    ``|BC| ≤ |AB| / (2·cos∠BAC)``.
    """
    a = np.asarray(a, float)
    b = np.asarray(b, float)
    c_pt = np.asarray(c_pt, float)
    bc = float(np.hypot(*(b - c_pt)))
    ac = float(np.hypot(*(a - c_pt)))
    ab = float(np.hypot(*(a - b)))
    if not (bc <= ac + _EPS and ac <= ab + _EPS):
        raise ValueError("precondition |BC| <= |AC| <= |AB| violated")
    alpha = angle_between(b, a, c_pt)
    if alpha > math.pi / 6 + _EPS:
        raise ValueError("precondition ∠BAC <= π/6 violated")
    return bc <= ab / (2.0 * math.cos(alpha)) + _EPS * max(1.0, ab)


def lemma25_holds(apex, chain, theta: float) -> bool:
    """Check Lemma 2.5 for apex A and points A₁…A_k (in order).

    Preconditions (non-increasing |AAᵢ|, consecutive angular gaps ≤ θ)
    asserted; returns the squared-hop-sum inequality.
    """
    a = np.asarray(apex, float)
    pts = [np.asarray(p, float) for p in chain]
    if len(pts) < 2:
        return True
    radii = [float(np.hypot(*(p - a))) for p in pts]
    for r1, r2 in zip(radii[:-1], radii[1:]):
        if r2 > r1 + _EPS:
            raise ValueError("precondition |AA_i| >= |AA_{i+1}| violated")
    gaps = []
    for p, q in zip(pts[:-1], pts[1:]):
        g = angle_between(p, a, q)
        if g > theta + _EPS:
            raise ValueError("precondition consecutive angle <= θ violated")
        gaps.append(g)
    alpha = angle_between(pts[0], a, pts[-1])
    lhs = sum(float(np.hypot(*(p - q))) ** 2 for p, q in zip(pts[:-1], pts[1:]))
    rhs = (radii[0] - radii[-1]) ** 2 + 2.0 * radii[0] ** 2 * (alpha / theta) * (
        1.0 - math.cos(theta)
    )
    # The paper's bound is loose when the measured total turn exceeds α
    # (the points may wiggle); use the sum of gaps as the effective α,
    # which dominates ∠A₁AA_k and keeps the bound valid as stated.
    rhs_eff = (radii[0] - radii[-1]) ** 2 + 2.0 * radii[0] ** 2 * (sum(gaps) / theta) * (
        1.0 - math.cos(theta)
    )
    return lhs <= max(rhs, rhs_eff) + _EPS * max(1.0, radii[0] ** 2)


def lemma26_holds(a, b, c_pt) -> bool:
    """Check Lemma 2.6's conclusion ``∠EAB ≤ 2·∠CAB`` for a valid (A,B,C).

    Constructs O (midpoint of AB), D (|BD| = |AB|, ∠DBA = π/6, same
    side as C), intersects segment CD with circle C(O, |OA|) and tests
    the angle bound.  Raises ``ValueError`` when the preconditions do
    not hold or the segment misses the circle (configurations outside
    the lemma's scope).
    """
    a = np.asarray(a, float)
    b = np.asarray(b, float)
    c_pt = np.asarray(c_pt, float)
    ab = float(np.hypot(*(b - a)))
    ac = float(np.hypot(*(c_pt - a)))
    if ac > ab + _EPS:
        raise ValueError("precondition |AC| <= |AB| violated")
    gamma = angle_between(c_pt, a, b)
    if gamma >= math.pi / 12 - _EPS:
        raise ValueError("precondition ∠CAB < π/12 violated")
    o = (a + b) / 2.0
    r = float(np.hypot(*(a - o)))
    if float(np.hypot(*(c_pt - o))) <= r + _EPS:
        raise ValueError("precondition C outside C(O, |OA|) violated")

    # Which side of AB is C on? (2-D cross-product sign)
    ab_vec = b - a
    ca_vec = c_pt - a
    cross_z = float(ab_vec[0] * ca_vec[1] - ab_vec[1] * ca_vec[0])
    side_c = math.copysign(1.0, cross_z)
    # D: rotate BA direction by ±π/6 around B, at distance |AB|.
    ba = a - b
    phi = math.atan2(ba[1], ba[0]) + side_c * (math.pi / 6.0)
    d = b + ab * np.array([math.cos(phi), math.sin(phi)])

    # Intersect segment C→D with circle C(O, r): solve quadratic.
    u = d - c_pt
    w = c_pt - o
    qa = float(u @ u)
    qb = 2.0 * float(u @ w)
    qc = float(w @ w) - r * r
    disc = qb * qb - 4.0 * qa * qc
    if disc < 0 or qa == 0:
        raise ValueError("segment CD does not meet the circle (outside lemma scope)")
    sd = math.sqrt(disc)
    roots = [(-qb - sd) / (2 * qa), (-qb + sd) / (2 * qa)]
    ts = [t for t in roots if -_EPS <= t <= 1 + _EPS]
    if not ts:
        raise ValueError("segment CD does not meet the circle (outside lemma scope)")
    e = c_pt + min(ts) * u  # first entry point along C→D
    angle_eab = angle_between(e, a, b)
    return angle_eab <= 2.0 * gamma + 1e-7
