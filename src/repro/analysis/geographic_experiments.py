"""E17 — greedy geographic routing across topologies (§1.2 context).

The related work cites geometric routing (GPSR et al.); its greedy mode
is the natural zero-state competitor to balancing.  Its Achilles' heel
is the *local minimum*: a node with no neighbor closer to the
destination.  Sparsification trades greedy deliverability away — this
experiment measures greedy success probability and stretch across the
library's topologies, quantifying why geographic protocols planarize
over Gabriel-like graphs and why the paper's balancing approach needs
no geometry at all at the routing layer.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.geometry.pointsets import uniform_points
from repro.graphs.baselines import euclidean_mst, gabriel_graph, relative_neighborhood_graph
from repro.harness.cache import cached_range, cached_theta_topology, cached_transmission_graph
from repro.sim.geographic import greedy_geographic_path
from repro.utils.rng import as_rng

__all__ = ["e17_geographic_routing"]


def e17_geographic_routing(
    *,
    n=200,
    n_pairs=300,
    theta=math.pi / 9,
    rng=None,
) -> list[dict]:
    """Greedy delivery rate and path stretch per topology.

    For ``n_pairs`` random source-destination pairs, attempt greedy
    forwarding on each topology; report the delivered fraction, the
    mean hop-stretch of successful routes (hops vs the hop-optimal
    path), and the edge count (the deliverability/sparsity trade).
    """
    gen = as_rng(rng)
    pts = uniform_points(n, rng=gen)
    d = cached_range(pts, 1.5)
    gstar = cached_transmission_graph(pts, d)
    topo = cached_theta_topology(pts, theta, d)
    zoo = {
        "Gstar": gstar,
        "ThetaALG(N)": topo.graph,
        "Gabriel": gabriel_graph(pts, d),
        "RNG": relative_neighborhood_graph(pts, d),
        "MST": euclidean_mst(pts),
    }
    pairs = []
    while len(pairs) < n_pairs:
        s, t = gen.choice(n, size=2, replace=False)
        pairs.append((int(s), int(t)))

    rows = []
    for name, g in zoo.items():
        # Hop-optimal distances for stretch of successful routes.
        unweighted = g.adjacency.copy()
        unweighted.data[:] = 1.0
        hop_dist = dijkstra(unweighted, directed=False)
        delivered = 0
        stretches = []
        for s, t in pairs:
            path, ok = greedy_geographic_path(g, s, t)
            if ok:
                delivered += 1
                opt = hop_dist[s, t]
                if np.isfinite(opt) and opt > 0:
                    stretches.append((len(path) - 1) / opt)
        rows.append(
            {
                "topology": name,
                "edges": g.n_edges,
                "greedy_delivery_rate": round(delivered / n_pairs, 3),
                "mean_hop_stretch": round(float(np.mean(stretches)), 3) if stretches else float("nan"),
                "pairs": n_pairs,
            }
        )
    return rows
