"""Dependency-free ASCII rendering of topologies.

The paper's figures are point sets with edges; in a terminal-only
environment a character-grid rendering is the honest equivalent.  Nodes
render as ``o`` (``*`` for highlighted ones), edges as Bresenham lines
of ``.``; the aspect ratio is corrected for typical 1:2 character
cells.

>>> from repro.analysis.ascii_viz import render_graph_ascii
>>> print(render_graph_ascii(topo.graph, width=60))     # doctest: +SKIP
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import as_points
from repro.graphs.base import GeometricGraph

__all__ = ["render_points_ascii", "render_graph_ascii"]


def _bresenham(x0: int, y0: int, x1: int, y1: int):
    """Integer grid cells of the segment (inclusive endpoints)."""
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    while True:
        yield x0, y0
        if x0 == x1 and y0 == y1:
            return
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x0 += sx
        if e2 <= dx:
            err += dx
            y0 += sy


def render_points_ascii(
    points: np.ndarray,
    edges: "np.ndarray | None" = None,
    *,
    width: int = 72,
    highlight: "set[int] | None" = None,
) -> str:
    """Render points (and optional edges) on a character grid.

    Parameters
    ----------
    width:
        Grid width in characters; height follows from the bounding box
        with a 0.5 aspect correction for character cells.
    highlight:
        Node indices drawn as ``*`` instead of ``o``.
    """
    pts = as_points(points)
    if len(pts) == 0:
        return "(no points)"
    if width < 4:
        raise ValueError("width must be >= 4")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    height = max(2, int(round((span[1] / span[0]) * width * 0.5))) if span[0] > 0 else 2
    height = min(height, 4 * width)  # guard absurd aspect ratios

    def cell(p: np.ndarray) -> tuple[int, int]:
        cx = int(round((p[0] - lo[0]) / span[0] * (width - 1)))
        cy = int(round((p[1] - lo[1]) / span[1] * (height - 1)))
        return cx, (height - 1) - cy  # y grows downward on screen

    grid = [[" "] * width for _ in range(height)]
    if edges is not None:
        for i, j in np.asarray(edges).reshape(-1, 2):
            x0, y0 = cell(pts[int(i)])
            x1, y1 = cell(pts[int(j)])
            for x, y in _bresenham(x0, y0, x1, y1):
                if grid[y][x] == " ":
                    grid[y][x] = "."
    hl = highlight or set()
    for k, p in enumerate(pts):
        x, y = cell(p)
        grid[y][x] = "*" if k in hl else "o"
    return "\n".join("".join(row) for row in grid)


def render_graph_ascii(graph: GeometricGraph, *, width: int = 72, highlight=None) -> str:
    """Render a :class:`GeometricGraph` (nodes + edges)."""
    return render_points_ascii(graph.points, graph.edges, width=width, highlight=highlight)
