"""E16 — routing under mobility-induced topology churn (§1 motivation).

The paper's adversarial routing model is motivated by uncontrollable
topology change: "since the underlying topology may change with time,
we need to design routing algorithms that effectively react to
dynamically changing network conditions."  This experiment makes the
motivation quantitative:

* nodes move by random-waypoint at increasing speed;
* the ΘALG topology is rebuilt every step (a cheap 3-round local
  protocol — the topology-control half of the paper's pitch);
* the (T, γ)-balancing router, which never assumes anything about why
  the edge set changed, competes against a shortest-path router whose
  tables were computed on the initial topology.

Expected shape: balancing degrades gracefully with speed; the frozen
table-driven router collapses once yesterday's next hops leave range.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.geometry.pointsets import uniform_points
from repro.harness.cache import cached_range, cached_theta_topology
from repro.sim.baseline_routers import ShortestPathRouter
from repro.sim.mobility import RandomWaypointMobility
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["e16_mobility_churn"]


def e16_mobility_churn(
    *,
    n=40,
    speeds=(0.0, 0.002, 0.01, 0.03),
    steps=800,
    theta=math.pi / 9,
    n_dests=2,
    inject_per_step=3,
    rng=None,
) -> list[dict]:
    """Delivery under increasing node speed: balancing vs frozen tables.

    Both routers see the same per-step edge sets (the freshly rebuilt
    ΘALG topology) and the same injections; only their forwarding logic
    differs.  The injection volume is set well above the balancing
    algorithm's standing inventory (≈ threshold × n × destinations) so
    the delivered fraction reflects steady-state behaviour rather than
    the ramp.
    """
    gen = as_rng(rng)
    rows = []
    for speed, child in zip(speeds, spawn_rngs(gen, len(speeds))):
        pts0 = uniform_points(n, rng=child)
        mobility = RandomWaypointMobility(pts0.copy(), speed=max(speed, 1e-9), rng=child)
        dests = list(range(n_dests))
        balancing = BalancingRouter(
            n, dests, BalancingConfig(threshold=1.0, gamma=0.0, max_height=128)
        )
        d0 = cached_range(pts0, 1.5)
        frozen = ShortestPathRouter(cached_theta_topology(pts0, theta, d0).graph)
        inject_until = steps * 2 // 3
        for t in range(steps):
            pts = mobility.advance() if speed > 0 else pts0
            # Memoized: the static (speed 0) case rebuilds an identical
            # topology every step and hits the cache after step one.
            d = cached_range(pts, 1.5)
            topo = cached_theta_topology(pts, theta, d)
            g = topo.graph
            edges = g.directed_edge_array()
            costs = np.concatenate([g.edge_costs, g.edge_costs])
            injections = []
            if t < inject_until:
                for _ in range(inject_per_step):
                    src = int(child.integers(n_dests, n))
                    injections.append((src, int(child.choice(dests)), 1))
            balancing.run_step(edges, costs, list(injections))
            frozen.run_step(edges, costs, list(injections))
        rows.append(
            {
                "speed": speed,
                "injected": balancing.stats.injected,
                "balancing_delivered": balancing.stats.delivered,
                "balancing_fraction": round(balancing.stats.delivery_fraction, 3),
                "frozen_sp_delivered": frozen.stats.delivered,
                "frozen_sp_fraction": round(frozen.stats.delivery_fraction, 3),
            }
        )
    return rows
