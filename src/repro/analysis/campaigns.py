"""Campaign-backed aggregation: reduce a result store to summary tables.

These helpers operate on the flat rows :func:`repro.campaign.query.flatten_cells`
produces from a store, so any slice of any past sweep aggregates
without re-running a single cell:

>>> from repro.campaign import CampaignStore, flatten_cells
>>> from repro.analysis.campaigns import group_reduce
>>> store = CampaignStore.open("repro-campaign-store")   # doctest: +SKIP
>>> rows = flatten_cells(store.cell_records())           # doctest: +SKIP
>>> group_reduce(rows, by=("claim",),
...              metrics={"runtime_seconds": "mean", "passed": "all"})  # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["campaign_claim_summary", "group_reduce"]


def _mean(values: "list") -> float:
    vals = [float(v) for v in values]
    return sum(vals) / len(vals) if vals else math.nan


_AGGS: "dict[str, Callable[[list], object]]" = {
    "mean": _mean,
    "min": lambda vs: min(vs),
    "max": lambda vs: max(vs),
    "sum": lambda vs: sum(vs),
    "count": len,
    "all": lambda vs: all(bool(v) for v in vs),
    "any": lambda vs: any(bool(v) for v in vs),
}


def group_reduce(
    rows: "Iterable[Mapping]",
    *,
    by: "Sequence[str]",
    metrics: "Mapping[str, str]",
) -> "list[dict]":
    """Group ``rows`` by the ``by`` columns and reduce ``metrics``.

    ``metrics`` maps a column to an aggregation name (``mean``, ``min``,
    ``max``, ``sum``, ``count``, ``all``, ``any``); the output column is
    ``<agg>_<column>`` (plain ``n_cells`` for ``count``).  Rows missing
    a metric column are skipped for that metric only.  Groups come back
    in first-seen order, one dict per group.
    """
    unknown = sorted(set(metrics.values()) - set(_AGGS))
    if unknown:
        raise ValueError(
            f"unknown aggregation(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(_AGGS))}"
        )
    groups: "dict[tuple, dict[str, list]]" = {}
    order: "list[tuple]" = []
    for row in rows:
        key = tuple(row.get(col) for col in by)
        if key not in groups:
            groups[key] = {col: [] for col in metrics}
            order.append(key)
        for col in metrics:
            if col in row:
                groups[key][col].append(row[col])
    out = []
    for key in order:
        rec: dict = dict(zip(by, key))
        for col, agg in metrics.items():
            name = "n_cells" if agg == "count" else f"{agg}_{col}"
            values = groups[key][col]
            rec[name] = _AGGS[agg](values) if values or agg == "count" else math.nan
        out.append(rec)
    return out


def campaign_claim_summary(store_dir) -> "list[dict]":
    """Per-claim rollup of a store: cells, pass rate, runtime budget."""
    from repro.campaign.query import flatten_cells
    from repro.campaign.store import CampaignStore

    rows = flatten_cells(CampaignStore.open(store_dir).cell_records())
    grouped = group_reduce(
        rows,
        by=("claim",),
        metrics={
            "cell": "count",
            "passed": "all",
            "violations": "sum",
            "runtime_seconds": "sum",
        },
    )
    for rec, claim_rows in zip(grouped, _rows_per_claim(rows, grouped)):
        rec["pass_rate"] = (
            sum(bool(r.get("passed")) for r in claim_rows) / len(claim_rows)
            if claim_rows
            else math.nan
        )
    return grouped


def _rows_per_claim(rows: "list[dict]", grouped: "list[dict]") -> "list[list[dict]]":
    return [[r for r in rows if r.get("claim") == g["claim"]] for g in grouped]
