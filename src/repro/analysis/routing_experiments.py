"""Harnesses for the routing-side experiments (E6–E9, E12, E20, E21).

The competitive experiments share one pattern:

1. generate a *witnessed* adversarial scenario — sustained streams whose
   certified schedule set lower-bounds OPT (disjoint-path streams give a
   small-buffer witness, keeping the theorem's T and γ small);
2. set the online algorithm's (T, γ, H) from the theorem's parameter
   rule (:func:`repro.core.competitive.theorem31_parameters` /
   ``theorem33_parameters``);
3. run the engine for the injection horizon plus a drain phase;
4. report the measured (t, s, c) triple of §3.1 next to the bound.

The theorems are asymptotic (they allow an additive slack r): the
ramp-up packets that never clear the threshold gradient show up as
``leftover``, so throughput ratios approach — but sit slightly below —
the (1−ε) target at finite horizons.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.core.competitive import (
    CompetitiveReport,
    theorem31_parameters,
    theorem33_parameters,
)
from repro.core.honeycomb import HoneycombConfig, HoneycombRouter
from repro.core.interference_mac import RandomActivationMAC
from repro.geometry.pointsets import uniform_points
from repro.graphs.base import GeometricGraph
from repro.graphs.metrics import max_degree
from repro.harness.cache import cached_range, cached_theta_topology
from repro.sim.adversary import (
    WitnessedScenario,
    hotspot_stream_scenario,
    stream_scenario,
)
from repro.sim.baseline_routers import ShortestPathRouter
from repro.sim.engine import SimulationEngine
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "ring_graph",
    "grid_graph",
    "run_balancing_on_scenario",
    "e6_balancing_competitive",
    "e7_tgi_throughput",
    "e8_random_competitive",
    "e9_honeycomb",
    "e12_buffer_tradeoff",
    "e20_aqt_stability",
    "e21_frequency_sweep",
]


def ring_graph(n: int, *, kappa: float = 2.0) -> GeometricGraph:
    """A ring topology (simple, known OPT behaviour) used by E6/E12."""
    ang = np.linspace(0.0, 2 * math.pi, n, endpoint=False)
    pts = 0.5 + 0.45 * np.column_stack([np.cos(ang), np.sin(ang)])
    edges = [(i, (i + 1) % n) for i in range(n)]
    return GeometricGraph(pts, edges, kappa=kappa, name=f"ring({n})")


def grid_graph(side: int, *, kappa: float = 2.0) -> GeometricGraph:
    """A side×side grid topology."""
    xs = np.linspace(0.0, 1.0, side)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    pts = np.column_stack([gx.ravel(), gy.ravel()])
    edges = []
    for i in range(side):
        for j in range(side):
            k = i * side + j
            if i + 1 < side:
                edges.append((k, k + side))
            if j + 1 < side:
                edges.append((k, k + 1))
    return GeometricGraph(pts, edges, kappa=kappa, name=f"grid({side}x{side})")


def run_balancing_on_scenario(
    scenario: WitnessedScenario,
    *,
    epsilon: float = 0.25,
    delta_frequencies: int | None = None,
    gamma_override: float | None = None,
    drain_factor: float = 1.0,
) -> tuple[CompetitiveReport, BalancingRouter]:
    """Run (T, γ)-balancing against a witnessed scenario (Theorem 3.1 setup).

    Parameters come from :func:`theorem31_parameters` using the
    witness's B, L̄, C̄.  The run covers the scenario's injection
    horizon plus ``drain_factor`` × that horizon of injection-free
    steps.
    """
    if delta_frequencies is None:
        # All edges usable concurrently: δ = max node degree.
        delta_frequencies = max(1, max_degree(scenario.graph))
    params = theorem31_parameters(
        opt_buffer=scenario.witness_buffer,
        avg_path_length=scenario.witness_avg_path_length,
        avg_cost=max(scenario.witness_avg_cost, 1e-12),
        epsilon=epsilon,
        delta_frequencies=delta_frequencies,
    )
    gamma = params["gamma"] if gamma_override is None else gamma_override
    router = BalancingRouter(
        scenario.graph.n_nodes,
        scenario.destinations,
        BalancingConfig(
            threshold=params["threshold"],
            gamma=gamma,
            max_height=int(params["max_height"]),
        ),
    )
    engine = SimulationEngine.for_scenario(router, scenario)
    drain = int(scenario.duration * drain_factor) + scenario.graph.n_nodes
    engine.run(scenario.duration, drain=drain)
    report = CompetitiveReport.from_stats(
        router.stats,
        witness_delivered=scenario.witness_delivered,
        witness_avg_cost=scenario.witness_avg_cost,
        witness_buffer=scenario.witness_buffer,
    )
    return report, router


def e6_balancing_competitive(
    *,
    epsilons=(0.5, 0.25, 0.1),
    duration=500,
    rng=None,
) -> list[dict]:
    """E6 — Theorem 3.1: (1−ε)-fraction throughput at ≤ 1+2/ε cost blowup.

    Stream workloads on ring and grid × ε sweep, plus the γ=0 ablation
    (cost-oblivious balancing) and a shortest-path baseline row.
    """
    gen = as_rng(rng)
    rows = []
    workloads = [
        ("ring/streams", stream_scenario(ring_graph(16), 3, duration, rng=gen)),
        ("grid/streams", stream_scenario(grid_graph(6), 5, duration * 3, rng=gen)),
        ("ring/hotspot", hotspot_stream_scenario(ring_graph(16), 2, duration, rng=gen)),
    ]
    for name, scenario in workloads:
        for eps in epsilons:
            report, router = run_balancing_on_scenario(scenario, epsilon=eps)
            rows.append(
                {
                    "workload": name,
                    "epsilon": eps,
                    "target_fraction": round(1 - eps, 3),
                    "throughput_ratio": round(report.throughput_ratio, 3),
                    "cost_ratio": round(report.cost_ratio, 3),
                    "cost_bound": round(1 + 2 / eps, 2),
                    "space_ratio": round(report.space_ratio, 2),
                    "delivered": report.delivered_online,
                    "witness": report.delivered_witness,
                    "leftover": router.total_packets(),
                }
            )
        # γ = 0 ablation: cost-oblivious balancing on the same scenario.
        report0, router0 = run_balancing_on_scenario(
            scenario, epsilon=0.25, gamma_override=0.0
        )
        rows.append(
            {
                "workload": name + " [γ=0]",
                "epsilon": 0.25,
                "target_fraction": 0.75,
                "throughput_ratio": round(report0.throughput_ratio, 3),
                "cost_ratio": round(report0.cost_ratio, 3),
                "cost_bound": float("nan"),
                "space_ratio": round(report0.space_ratio, 2),
                "delivered": report0.delivered_online,
                "witness": report0.delivered_witness,
                "leftover": router0.total_packets(),
            }
        )
    # Shortest-path baseline for context.
    scen = workloads[0][1]
    spr = ShortestPathRouter(scen.graph)
    SimulationEngine.for_scenario(spr, scen).run(scen.duration, drain=scen.duration)
    rows.append(
        {
            "workload": "ring/streams [SP baseline]",
            "epsilon": float("nan"),
            "target_fraction": float("nan"),
            "throughput_ratio": round(spr.stats.delivered / scen.witness_delivered, 3),
            "cost_ratio": round(
                spr.stats.average_cost / max(scen.witness_avg_cost, 1e-12), 3
            ),
            "cost_bound": float("nan"),
            "space_ratio": float("nan"),
            "delivered": spr.stats.delivered,
            "witness": scen.witness_delivered,
            "leftover": spr.total_packets(),
        }
    )
    return rows


def _tgi_run(
    graph: GeometricGraph,
    scenario: WitnessedScenario,
    *,
    delta: float,
    epsilon: float,
    drain_factor: float,
    rng,
) -> tuple[BalancingRouter, RandomActivationMAC, dict]:
    """Shared (T, γ, I) setup: MAC + theorem-3.3 parameters + run."""
    mac = RandomActivationMAC(graph, delta, rng=rng)
    big_i = max(1, mac.interference_number)
    params = theorem33_parameters(
        opt_buffer=scenario.witness_buffer,
        avg_path_length=scenario.witness_avg_path_length,
        avg_cost=max(scenario.witness_avg_cost, 1e-12),
        epsilon=epsilon,
        interference_bound=big_i,
    )
    router = BalancingRouter(
        graph.n_nodes,
        scenario.destinations,
        BalancingConfig(
            threshold=params["threshold"],
            gamma=params["gamma"],
            max_height=int(params["max_height"]),
        ),
    )
    engine = SimulationEngine(
        router,
        lambda t: mac.active_edges(),
        scenario.injections,
        success_fn=mac.success_mask,
    )
    engine.run(scenario.duration, drain=int(scenario.duration * drain_factor))
    params["interference_I"] = big_i
    return router, mac, params


def e7_tgi_throughput(
    *,
    n=80,
    theta=math.pi / 9,
    delta=0.5,
    epsilon=0.25,
    duration=4000,
    n_streams=4,
    trials=3,
    rng=None,
) -> list[dict]:
    """E7 — Theorem 3.3: (T, γ, I)-balancing without a MAC achieves at
    least a (1−ε)/(8I) fraction of the witness throughput on the same
    topology, despite activating each edge only w.p. 1/(2·I_e).

    The horizon is long because deliveries are rate-limited by the
    activation probability 1/(2I): each hop waits Θ(I) steps for its
    edge, and I is in the low hundreds at these densities (O(log n)
    with a degree-bound × disk-occupancy constant — see E4).
    """
    gen = as_rng(rng)
    rows = []
    for trial, child in enumerate(spawn_rngs(gen, trials)):
        pts = uniform_points(n, rng=child)
        d = cached_range(pts, 1.5)
        topo = cached_theta_topology(pts, theta, d)
        graph = topo.graph
        scenario = stream_scenario(graph, n_streams, duration, rng=child, max_hops=3)
        router, mac, params = _tgi_run(
            graph, scenario, delta=delta, epsilon=epsilon, drain_factor=4.0, rng=child
        )
        floor = params["target_fraction"]
        ratio = router.stats.delivered / max(scenario.witness_delivered, 1)
        rows.append(
            {
                "trial": trial,
                "n": n,
                "interference_I": params["interference_I"],
                "delivered": router.stats.delivered,
                "witness": scenario.witness_delivered,
                "throughput_vs_witness": round(ratio, 4),
                "theorem_floor": round(floor, 4),
                "above_floor": ratio >= floor,
                "mac_success_rate": round(
                    router.stats.successes / max(router.stats.attempts, 1), 3
                ),
            }
        )
    return rows


def e8_random_competitive(
    *,
    ns=(64, 128, 256),
    theta=math.pi / 9,
    delta=0.5,
    epsilon=0.25,
    duration=3000,
    n_streams=4,
    rng=None,
) -> list[dict]:
    """E8 — Corollary 3.5: on uniform-random nodes the full stack (ΘALG +
    (T, γ, I)-balancing) is O(1/log n)-competitive — the throughput
    ratio times ln n should stay bounded as n grows."""
    gen = as_rng(rng)
    rows = []
    for n, child in zip(ns, spawn_rngs(gen, len(ns))):
        pts = uniform_points(n, rng=child)
        d = cached_range(pts, 1.5)
        topo = cached_theta_topology(pts, theta, d)
        graph = topo.graph
        scenario = stream_scenario(graph, n_streams, duration, rng=child, max_hops=3)
        router, mac, params = _tgi_run(
            graph, scenario, delta=delta, epsilon=epsilon, drain_factor=4.0, rng=child
        )
        big_i = params["interference_I"]
        ratio = router.stats.delivered / max(scenario.witness_delivered, 1)
        rows.append(
            {
                "n": n,
                "ln_n": round(math.log(n), 2),
                "interference_I": big_i,
                "I_over_ln_n": round(big_i / math.log(n), 2),
                "throughput_vs_witness": round(ratio, 4),
                "ratio_x_ln_n": round(ratio * math.log(n), 3),
                "delivered": router.stats.delivered,
                "witness": scenario.witness_delivered,
            }
        )
    return rows


def e9_honeycomb(
    *,
    n=300,
    side=20.0,
    deltas=(0.25, 0.5, 1.0),
    duration=800,
    n_streams=4,
    rng=None,
) -> list[dict]:
    """E9 — Theorem 3.8 / Lemmas 3.6–3.7: honeycomb algorithm at fixed
    transmission strength 1 in a side×side region.

    A hexagon serves at most one contestant per step with probability
    p_t = 1/6, so the per-hexagon service rate is ≈ p_t · Pr[success].
    Two regimes per Δ:

    * *underload* — each stream injects every 8th step (below the
      service rate): after the drain the delivery fraction should
      approach 1 (only ≈ T packets per stream can remain stuck below
      the benefit threshold);
    * *overload* — each stream injects every step: throughput saturates
      at the hexagon service capacity and the excess is dropped, as the
      model allows for both OPT and the online algorithm.

    Both regimes report the empirical contestant success probability,
    which Lemma 3.7 lower-bounds by 1/2 for p_t ≤ 1/6.
    """
    gen = as_rng(rng)
    rows = []
    for delta, child in zip(deltas, spawn_rngs(gen, len(deltas))):
        pts = uniform_points(n, side=side, rng=child)
        for regime, inject_every in (("underload", 8), ("overload", 1)):
            cfg = HoneycombConfig(delta=delta, threshold=1.0, max_height=256)
            router = HoneycombRouter(pts, None, cfg, rng=child)
            if len(router.directed_pairs) == 0:
                continue
            # Streams between unit-disk-connected pairs in distinct hexagons.
            streams: list[tuple[int, int]] = []
            used_cells: set[tuple[int, int]] = set()
            tries = 0
            while len(streams) < n_streams and tries < 50 * n_streams:
                tries += 1
                k = int(child.integers(0, len(router.directed_pairs)))
                s, t = (int(x) for x in router.directed_pairs[k])
                cell = tuple(int(c) for c in router.hexgrid.cell_of(pts[s]))
                if cell in used_cells:
                    continue
                used_cells.add(cell)
                streams.append((s, t))
            for t_step in range(duration):
                if t_step % inject_every == 0:
                    injections = [(s, d, 1) for (s, d) in streams]
                else:
                    injections = []
                router.step(injections)
            for _ in range(duration * 2):
                router.step([])
            st = router.stats
            success_rate = st.successes / max(st.attempts, 1)
            n_hexes = len(router.hexgrid.group_by_cell(pts))
            rows.append(
                {
                    "delta": delta,
                    "regime": regime,
                    "hex_side": round(3 + 2 * delta, 2),
                    "occupied_hexes": n_hexes,
                    "streams": len(streams),
                    "delivered": st.delivered,
                    "injected": st.injected,
                    "delivery_fraction": round(st.delivery_fraction, 3),
                    "throughput_per_step": round(st.delivered / max(st.steps, 1), 4),
                    "contestant_success_rate": round(success_rate, 3),
                    "lemma37_floor": 0.5,
                    "above_floor": success_rate >= 0.5,
                }
            )
    return rows


def e21_frequency_sweep(
    *,
    deltas=(1, 2, 4),
    duration=600,
    n_streams=4,
    rng=None,
) -> list[dict]:
    """E21 — the δ (frequencies) parameter of Theorem 3.1, ablated.

    δ is the maximum number of edges incident to one node usable
    concurrently.  The MAC here activates, per step, a random greedy
    edge set respecting the per-node δ cap; sustained streams on a grid
    measure how throughput scales with δ.  Expected shape: roughly
    linear gains while δ is the bottleneck, saturating once stream
    paths no longer contend for radios.
    """
    gen = as_rng(rng)
    g = grid_graph(6)
    rows = []
    for delta_freq, child in zip(deltas, spawn_rngs(gen, len(deltas))):
        scenario = stream_scenario(g, n_streams, duration, rng=child)
        router = BalancingRouter(
            g.n_nodes,
            scenario.destinations,
            BalancingConfig(threshold=1.0, gamma=0.0, max_height=256),
        )
        und_edges = g.edges
        und_costs = g.edge_costs

        def active_edges(t):
            order = child.permutation(len(und_edges))
            incident = np.zeros(g.n_nodes, dtype=np.int64)
            chosen = []
            for k in order:
                i, j = (int(x) for x in und_edges[k])
                if incident[i] < delta_freq and incident[j] < delta_freq:
                    incident[i] += 1
                    incident[j] += 1
                    chosen.append(k)
            e = und_edges[chosen]
            c = und_costs[chosen]
            return np.vstack([e, e[:, ::-1]]), np.concatenate([c, c])

        engine = SimulationEngine(router, active_edges, scenario.injections)
        engine.run(scenario.duration, drain=scenario.duration)
        rows.append(
            {
                "delta_frequencies": delta_freq,
                "delivered": router.stats.delivered,
                "witness": scenario.witness_delivered,
                "throughput_ratio": round(
                    router.stats.delivered / max(scenario.witness_delivered, 1), 3
                ),
                "leftover": router.total_packets(),
            }
        )
    return rows


def e12_buffer_tradeoff(
    *,
    thresholds=(1, 4, 16, 64),
    heights=(8, 32, 128, 512),
    duration=400,
    rng=None,
) -> list[dict]:
    """E12 — §3.2 trade-off: throughput and drops as functions of the
    threshold T and buffer height H, on a fixed stream workload."""
    gen = as_rng(rng)
    scenario = stream_scenario(ring_graph(16), 3, duration, rng=gen)
    rows = []
    for T in thresholds:
        for H in heights:
            router = BalancingRouter(
                scenario.graph.n_nodes,
                scenario.destinations,
                BalancingConfig(threshold=float(T), gamma=0.0, max_height=int(H)),
            )
            engine = SimulationEngine.for_scenario(router, scenario)
            engine.run(scenario.duration, drain=scenario.duration)
            st = router.stats
            rows.append(
                {
                    "threshold_T": T,
                    "height_H": H,
                    "delivered": st.delivered,
                    "witness": scenario.witness_delivered,
                    "throughput_ratio": round(
                        st.delivered / max(scenario.witness_delivered, 1), 3
                    ),
                    "dropped": st.dropped,
                    "max_buffer": st.max_buffer_height,
                    "avg_cost": round(st.average_cost, 4),
                }
            )
    return rows


def e20_aqt_stability(
    *,
    rhos=(0.25, 0.5, 0.75),
    durations=(200, 400),
    window=8,
    side=5,
    rng=None,
) -> list[dict]:
    """E20 — §1.2 AQT lineage: stability under (w, ρ)-bounded adversaries.

    The balancing results descend from adversarial queuing theory,
    where injections must be (w, ρ)-feasible and the question is queue
    *stability*: for subcritical ρ, buffer heights grow with ρ but not
    with the horizon.
    """
    from repro.sim.aqt import bounded_adversary_scenario, max_window_load

    gen = as_rng(rng)
    rows = []
    g = grid_graph(side)
    for rho, child in zip(rhos, spawn_rngs(gen, len(rhos))):
        # One adversary seed per ρ so the duration sweep extends the
        # same injection pattern rather than resampling it.
        seed = int(child.integers(2**31))
        for duration in durations:
            scenario = bounded_adversary_scenario(
                g, rho=rho, window=window, duration=duration, rng=seed
            )
            router = BalancingRouter(
                g.n_nodes,
                scenario.destinations,
                BalancingConfig(threshold=1.0, gamma=0.0, max_height=100_000),
            )
            SimulationEngine.for_scenario(router, scenario).run(scenario.duration)
            rows.append(
                {
                    "rho": rho,
                    "duration": duration,
                    "measured_window_load": round(max_window_load(scenario, window), 3),
                    "injected": router.stats.injected,
                    "delivered": router.stats.delivered,
                    "max_buffer_height": router.stats.max_buffer_height,
                    "in_flight_at_end": router.total_packets(),
                }
            )
    return rows
