"""Server-sent-events streaming of per-step series deltas.

Each session owns one :class:`Broadcast`; any number of SSE subscribers
attach bounded queues to it.  After every step batch the session
publishes one ``step`` event per simulated step, carrying the
:meth:`repro.obs.metrics.StepSeries.delta_rows` increment for that step
— a consumer that sums every delta it received reconstructs the
session's cumulative ``RoutingStats`` exactly (the reconcile gate of
``benchmarks/bench_service_load.py`` and the CI ``service-smoke``
lane).

Backpressure is per-subscriber and strict: a consumer whose queue fills
is *evicted*, not allowed to stall the publisher (the paper's
adversary keeps injecting whether or not a dashboard keeps up).  The
eviction is observable — the subscriber's stream ends with an
``evicted`` event — so a client can reconnect and resync from the
session's cumulative stats rather than silently missing deltas.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["Broadcast", "Subscriber", "sse_event"]

#: queue bound per subscriber (events, not bytes) unless overridden.
DEFAULT_QUEUE_SIZE = 256

#: event names with stream-terminating semantics.
TERMINAL_EVENTS = frozenset({"end", "evicted"})


def sse_event(event: str, data: dict) -> bytes:
    """One ``text/event-stream`` frame."""
    return f"event: {event}\ndata: {json.dumps(data, separators=(',', ':'))}\n\n".encode()


class Subscriber:
    """One consumer's bounded view of a session's event stream."""

    def __init__(self, maxsize: int) -> None:
        self.queue: "asyncio.Queue[tuple[str, dict]]" = asyncio.Queue(maxsize=maxsize)
        self.evicted = False
        self.closed = False

    async def next_event(self) -> "tuple[str, dict]":
        """The next ``(event, data)`` pair; terminal events close the stream."""
        event, data = await self.queue.get()
        if event in TERMINAL_EVENTS:
            self.closed = True
        return event, data


class Broadcast:
    """Fan one session's events out to every attached subscriber.

    All operations run on the event loop thread (the session publishes
    after its executor-run step batch returns), so plain lists and
    ``put_nowait`` are race-free by construction.
    """

    def __init__(self, *, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        self.queue_size = int(queue_size)
        self._subs: "list[Subscriber]" = []
        self.evictions = 0
        self.published = 0
        self.closed = False

    @property
    def n_subscribers(self) -> int:
        return len(self._subs)

    def subscribe(self) -> Subscriber:
        if self.closed:
            raise RuntimeError("broadcast is closed")
        sub = Subscriber(self.queue_size)
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscriber) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    def publish(self, event: str, data: dict) -> None:
        """Deliver to every subscriber; evict any whose queue is full.

        Eviction pops the subscriber's oldest undelivered event to make
        room for a terminal ``evicted`` frame, so the slow consumer
        observes its fate instead of hanging forever.
        """
        self.published += 1
        for sub in list(self._subs):
            try:
                sub.queue.put_nowait((event, data))
            except asyncio.QueueFull:
                self._evict(sub)

    def _evict(self, sub: Subscriber) -> None:
        self.unsubscribe(sub)
        sub.evicted = True
        self.evictions += 1
        try:
            sub.queue.get_nowait()  # make room for the terminal frame
        except asyncio.QueueEmpty:  # pragma: no cover - full implies non-empty
            pass
        sub.queue.put_nowait(
            ("evicted", {"reason": f"consumer too slow (queue bound {self.queue_size})"})
        )

    def close(self, data: "dict | None" = None) -> None:
        """Publish a terminal ``end`` frame to everyone and detach them."""
        if self.closed:
            return
        self.closed = True
        payload = data or {}
        for sub in list(self._subs):
            try:
                sub.queue.put_nowait(("end", payload))
            except asyncio.QueueFull:
                self._evict(sub)
        self._subs.clear()
