"""Sessions: one live simulation per client, many per process.

A :class:`Session` wraps the full dynamic-simulation stack —
:class:`~repro.dynamic.incremental.IncrementalTheta` under a
:class:`~repro.dynamic.events.LiveEventSchedule`, a
:class:`~repro.core.balancing.BalancingRouter`, optionally the
incremental §2.4 conflict structure + MAC, and a
:class:`~repro.sim.engine.SimulationEngine` driven through its
resumable :meth:`~repro.sim.engine.SimulationEngine.step` API — plus
the service-side machinery: a per-session
:class:`~repro.obs.trace.Tracer` / :class:`~repro.obs.metrics.MetricsRegistry`
pair (isolation from other sessions and from the process globals), an
``asyncio.Lock`` serializing step/inject/delete, and a
:class:`~repro.service.stream.Broadcast` fanning step deltas out to SSE
subscribers.

Substrate sharing: session construction goes through
:mod:`repro.harness.cache` (``cached_range``), so any two sessions —
or a session and a batch experiment in the same process — that would
compute the same connectivity-critical range reuse one computation.

:class:`SessionManager` owns the id space, enforces the session bound
(429 backpressure), applies the idle TTL, and publishes terminal
stream events on every removal path so no subscriber is left hanging.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import secrets
import time

import numpy as np

from repro.core.balancing import BalancingConfig, BalancingRouter
from repro.dynamic.events import LiveEventSchedule, event_from_dict, event_kind
from repro.dynamic.incremental import DynamicTopology, IncrementalTheta
from repro.geometry.pointsets import uniform_points
from repro.harness.cache import cached_range
from repro.obs.metrics import MetricsRegistry, StepSeries
from repro.obs.trace import Tracer
from repro.service.protocol import ProtocolError, SessionConfig
from repro.service.stream import Broadcast
from repro.sim.engine import SimulationEngine

__all__ = ["Session", "SessionManager"]

#: the cone angle every experiment in this repo uses (θ = π/9).
THETA = math.pi / 9

#: per-session tracer ring bound — sessions are long-lived, keep small.
SESSION_TRACE_CAPACITY = 1 << 14


class Session:
    """One live scenario: substrate, engine, recorder, broadcast."""

    def __init__(self, sid: str, config: SessionConfig, *, clock=time.monotonic) -> None:
        self.id = sid
        self.config = config
        self._clock = clock
        self.created_at = clock()
        self.last_active = self.created_at
        self.lock = asyncio.Lock()
        self.broadcast = Broadcast()
        self.closed = False

        # Per-session observability handles: spans and auto-series from
        # this engine land here, never in the process globals, so
        # concurrent sessions cannot cross-talk.
        self.tracer = Tracer(SESSION_TRACE_CAPACITY)
        self.registry = MetricsRegistry()
        self.series = StepSeries()
        #: rows of ``series`` already published to the broadcast.
        self.stream_mark = 0

        points = uniform_points(config.n, rng=config.seed)
        d0 = cached_range(points, 1.5)  # shared process-wide substrate cache
        self.d0 = float(d0)
        inc = IncrementalTheta(points, THETA, d0)
        self.schedule = LiveEventSchedule()
        interference = None
        mac = None
        if config.delta is not None:
            from repro.dynamic.interference import DynamicInterference, DynamicMAC

            interference = DynamicInterference(inc, config.delta)
            mac = DynamicMAC(interference, rng=np.random.default_rng(config.seed + 2))
        self.dynamic = DynamicTopology(
            inc, self.schedule, interference=interference, capacity=config.max_nodes
        )
        self.router = BalancingRouter(
            self.dynamic.capacity,
            list(config.dests),
            BalancingConfig(0.0, 0.0, config.buffer_size),
        )
        self._traffic_rng = np.random.default_rng(config.seed + 1)
        self._pending_injections: "list[tuple[int, int, int]]" = []
        self.engine = SimulationEngine(
            self.router,
            injections_fn=self._injections,
            dynamic=self.dynamic,
            mac=mac,
            step_series=self.series,
            tracer=self.tracer,
            registry=self.registry,
        )
        #: monotonic id the reaper uses to detect liveness changes.
        self.steps_served = 0
        self.events_injected = 0
        self.packets_queued = 0

    # ------------------------------------------------------------------
    def touch(self) -> None:
        self.last_active = self._clock()

    @property
    def idle_seconds(self) -> float:
        return self._clock() - self.last_active

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def _injections(self, t: int) -> "list[tuple[int, int, int]]":
        """Queued client packets plus seeded ambient traffic for step ``t``."""
        out = self._pending_injections
        self._pending_injections = []
        rate = self.config.traffic_rate
        if rate > 0:
            alive = self.dynamic.alive_ids()
            if len(alive):
                dests = self.config.dests
                for _ in range(int(self._traffic_rng.poisson(rate))):
                    src = int(alive[int(self._traffic_rng.integers(len(alive)))])
                    dest = int(dests[int(self._traffic_rng.integers(len(dests)))])
                    if src != dest:  # routers refuse self-addressed packets
                        out.append((src, dest, 1))
        return out

    # ------------------------------------------------------------------
    # Stepping (sync; the server runs this in an executor thread while
    # holding ``self.lock``)
    # ------------------------------------------------------------------
    def advance(self, steps: int, *, inject: bool = True) -> None:
        if self.closed:
            raise ProtocolError(409, "session_closed", f"session {self.id} is closed")
        self.engine.run_steps(steps, inject=inject)
        self.steps_served += steps
        self.registry.counter("session.steps").inc(steps)

    def publish_pending(self) -> int:
        """Publish every recorded-but-unstreamed step delta; returns count."""
        rows = self.series.delta_rows(self.stream_mark)
        for row in rows:
            self.broadcast.publish("step", row)
        self.stream_mark += len(rows)
        return len(rows)

    # ------------------------------------------------------------------
    # Live event injection
    # ------------------------------------------------------------------
    def inject(self, rows: "list[dict]") -> dict:
        """Validate and schedule wire-format event rows.

        Topology events are scheduled for the engine's *next* step (the
        step index the engine will consume next, ``engine.t``);
        traffic rows join the pending-injection queue.  Validation runs
        against the live topology state, simulating the batch in order,
        and maps the engine's refusal rules onto 409s — nothing is
        scheduled unless the whole batch validates.
        """
        if self.closed:
            raise ProtocolError(409, "session_closed", f"session {self.id} is closed")
        inc = self.dynamic.incremental
        alive = {int(v) for v in inc.alive_ids()}
        failed = {int(v) for v in inc.failed_ids()}
        # Rows a previous batch scheduled at the engine's next step are
        # not in the applied topology yet; replay them so validation
        # sees the state the engine will actually apply this batch
        # against (two batches each leaving node 5 must not both pass).
        for ev in self.schedule.at(self.engine.t):
            kind = event_kind(ev)
            if kind == "join" or kind == "recover":
                alive.add(int(ev.node))
                if kind == "recover":
                    failed.discard(int(ev.node))
            elif kind == "leave" or kind == "fail":
                alive.discard(int(ev.node))
                if kind == "fail":
                    failed.add(int(ev.node))
        capacity = self.dynamic.capacity
        topo_rows: "list[dict]" = []
        traffic: "list[tuple[int, int, int]]" = []
        for i, row in enumerate(rows):
            kind, node = row["kind"], row["node"]
            if node < 0 or node >= capacity:
                raise ProtocolError(
                    409, "bad_node",
                    f"event {i}: node {node} outside session capacity [0, {capacity})",
                )
            if kind == "inject":
                dest = row["dest"]
                if dest < 0 or dest >= capacity:
                    raise ProtocolError(409, "bad_node", f"event {i}: dest {dest} outside capacity")
                if node not in alive:
                    raise ProtocolError(
                        409, "dead_node", f"event {i}: cannot inject at node {node}: not alive"
                    )
                if dest not in alive:
                    raise ProtocolError(
                        409, "dead_node", f"event {i}: cannot inject to dest {dest}: not alive"
                    )
                if dest not in self.config.dests:
                    raise ProtocolError(
                        409, "bad_dest",
                        f"event {i}: {dest} is not a session destination {list(self.config.dests)}",
                    )
                if node == dest:
                    raise ProtocolError(
                        409, "bad_dest", f"event {i}: source {node} equals destination"
                    )
                traffic.append((node, dest, row["count"]))
                continue
            # Topology events: mirror IncrementalTheta._mutate's refusals
            # so an invalid event 409s here instead of exploding the
            # engine mid-step.
            if kind == "join":
                if node in alive:
                    raise ProtocolError(409, "bad_event", f"event {i}: node {node} is already alive")
                if node in failed:
                    raise ProtocolError(
                        409, "bad_event", f"event {i}: node {node} is failed; use recover, not join"
                    )
                alive.add(node)
            elif kind == "move":
                if node not in alive and node not in failed:
                    raise ProtocolError(409, "dead_node", f"event {i}: cannot move node {node}: not alive")
            elif kind in ("leave", "fail"):
                if node not in alive:
                    raise ProtocolError(
                        409, "dead_node", f"event {i}: cannot {kind} node {node}: not alive"
                    )
                alive.discard(node)
                if kind == "fail":
                    failed.add(node)
            else:  # recover
                if node not in failed:
                    raise ProtocolError(
                        409, "bad_event", f"event {i}: cannot recover node {node}: not failed"
                    )
                failed.discard(node)
                alive.add(node)
            topo_rows.append(row)
        at_step = self.engine.t
        for row in topo_rows:
            self.schedule.append(at_step, event_from_dict(row))
        self._pending_injections.extend(traffic)
        self.events_injected += len(topo_rows)
        self.packets_queued += sum(c for _, _, c in traffic)
        self.registry.counter("session.events_injected").inc(len(topo_rows))
        if topo_rows:
            self.broadcast.publish(
                "events",
                {
                    "at_step": at_step,
                    "scheduled": [event_kind(event_from_dict(r)) for r in topo_rows],
                    "traffic_packets": sum(c for _, _, c in traffic),
                },
            )
        return {
            "scheduled": len(topo_rows),
            "at_step": at_step,
            "traffic_packets": sum(c for _, _, c in traffic),
        }

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    def final_stats(self) -> dict:
        return self.router.stats.to_dict()

    def describe(self, *, detail: bool = False) -> dict:
        out = {
            "id": self.id,
            "config": self.config.describe(),
            "steps": self.engine.t,
            "alive_nodes": int(self.dynamic.incremental.n_alive),
            "events_applied": int(self.dynamic.events_applied),
            "events_injected": self.events_injected,
            "subscribers": self.broadcast.n_subscribers,
            "idle_seconds": round(self.idle_seconds, 3),
            "range_d0": self.d0,
        }
        if detail:
            out["stats"] = self.final_stats()
            out["leftover"] = int(self.router.total_packets())
            out["stream"] = {
                "published": self.broadcast.published,
                "evictions": self.broadcast.evictions,
                "unstreamed_rows": len(self.series) - self.stream_mark,
            }
            out["spans_recorded"] = self.tracer.total_appended
        return out

    def events_trace(self) -> dict:
        """The injected-event history as a replayable trace document."""
        from repro.dynamic.events import event_trace_to_dict

        return event_trace_to_dict(self.schedule.to_trace(horizon=self.engine.t))

    def close(self, reason: str = "deleted") -> None:
        """Terminal: publish ``end`` to every subscriber, stop the pool."""
        if self.closed:
            return
        self.closed = True
        self.broadcast.close(
            {"reason": reason, "steps": self.engine.t, "final_stats": self.final_stats()}
        )
        self.dynamic.close()


class SessionManager:
    """Create/list/get/delete sessions with a bound and an idle TTL."""

    def __init__(
        self,
        *,
        max_sessions: int = 16,
        ttl_seconds: float = 600.0,
        clock=time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        self.max_sessions = int(max_sessions)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._sessions: "dict[str, Session]" = {}
        self._ids = itertools.count(1)
        self._reserved = 0
        self.created_total = 0
        self.expired_total = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def sessions(self) -> "list[Session]":
        return list(self._sessions.values())

    def reserve(self) -> str:
        """Claim a slot + id ahead of construction (429 when full).

        Construction for large profiles is seconds of CPU the server
        runs off the event loop; the reservation keeps the session
        bound honest while the build is in flight.  Every reservation
        must be resolved with :meth:`register` or :meth:`release`.
        """
        if len(self._sessions) + self._reserved >= self.max_sessions:
            raise ProtocolError(
                429, "session_limit",
                f"session limit reached ({self.max_sessions}); "
                "delete a session or retry after the idle TTL "
                f"({self.ttl_seconds:g}s)",
            )
        self._reserved += 1
        return f"s{next(self._ids):04d}-{secrets.token_hex(3)}"

    def build(self, sid: str, config: SessionConfig) -> Session:
        """Construct a session for a reserved id (CPU-bound; thread-safe)."""
        return Session(sid, config, clock=self._clock)

    def register(self, session: Session) -> Session:
        """Publish a built session under its reservation."""
        self._reserved -= 1
        self._sessions[session.id] = session
        self.created_total += 1
        return session

    def release(self) -> None:
        """Give a reservation back (construction failed or was refused)."""
        self._reserved -= 1

    def create(self, config: SessionConfig) -> Session:
        """Reserve + build + register in one synchronous call."""
        sid = self.reserve()
        try:
            session = self.build(sid, config)
        except BaseException:
            self.release()
            raise
        return self.register(session)

    def get(self, sid: str) -> Session:
        session = self._sessions.get(sid)
        if session is None:
            raise ProtocolError(404, "unknown_session", f"no such session: {sid}")
        return session

    def delete(self, sid: str, *, reason: str = "deleted") -> Session:
        session = self.get(sid)
        del self._sessions[sid]
        session.close(reason)
        return session

    # ------------------------------------------------------------------
    def reap_idle(self) -> "list[str]":
        """Delete every idle-past-TTL session (skipping busy ones).

        A session whose lock is held is mid-request — stepping in an
        executor thread — and is never reaped regardless of its clock
        (its ``touch`` lands when the request finishes).
        """
        doomed = [
            sid
            for sid, s in self._sessions.items()
            if s.idle_seconds > self.ttl_seconds and not s.lock.locked()
        ]
        for sid in doomed:
            self.delete(sid, reason="expired")
            self.expired_total += 1
        return doomed

    async def drain(self, *, reason: str = "server-drain") -> int:
        """Close every session (graceful shutdown); returns count.

        Awaits each session's lock first — a step batch in flight in an
        executor thread mutates ``router.stats`` and owns the dynamic
        pool, so closing without the lock would snapshot torn
        ``final_stats`` into the terminal stream frame (mirrors the
        busy-session guard in :meth:`reap_idle`).
        """
        closed = 0
        for sid in list(self._sessions):
            session = self._sessions.pop(sid, None)
            if session is None:  # pragma: no cover - deleted while we awaited
                continue
            async with session.lock:
                session.close(reason)
            closed += 1
        return closed
