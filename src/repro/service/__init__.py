"""Simulation-as-a-service: asyncio session server over the repro stack.

``python -m repro serve`` starts a long-running, stdlib-only HTTP
service that hosts many concurrent simulation sessions — each a live
:class:`~repro.dynamic.incremental.DynamicTopology` +
:class:`~repro.sim.engine.SimulationEngine` pair advanced through the
engine's resumable ``step()`` API — with live event injection and SSE
streaming of per-step :class:`~repro.obs.metrics.StepSeries` deltas.
See ``docs/service.md`` for the API reference.
"""

from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    SessionConfig,
    parse_event_rows,
    parse_session_config,
)
from repro.service.server import ServiceServer, serve
from repro.service.session import Session, SessionManager
from repro.service.stream import Broadcast, Subscriber, sse_event

__all__ = [
    "Broadcast",
    "PROTOCOL",
    "ProtocolError",
    "ServiceServer",
    "Session",
    "SessionConfig",
    "SessionManager",
    "Subscriber",
    "parse_event_rows",
    "parse_session_config",
    "serve",
    "sse_event",
]
