"""``repro-service/v1`` — versioned request/response schemas.

Every JSON body the service emits carries ``"protocol":
"repro-service/v1"``; errors use one envelope shape::

    {"protocol": "repro-service/v1",
     "error": {"code": "unknown_session", "message": "..."}}

so clients can branch on ``error.code`` without parsing prose.  The
module is transport-agnostic: :mod:`repro.service.server` maps
:class:`ProtocolError.status` onto HTTP status lines, and the same
validators back the in-process tests.

Session creation accepts the substrate knobs the batch experiments use
(``n``, ``delta``, ``seed``, ``profile``) plus service-side sizing
(destinations, ambient traffic rate, buffer bound, join headroom).
Event injection reuses the exact wire rows of
:func:`repro.dynamic.events.event_trace_to_dict` — anything a recorded
batch trace contains can be POSTed live, and vice versa — extended
with a ``{"kind": "inject", ...}`` row for traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "PROTOCOL",
    "ProtocolError",
    "SessionConfig",
    "error_body",
    "ok_body",
    "parse_event_rows",
    "parse_session_config",
    "parse_step_count",
]

PROTOCOL = "repro-service/v1"

#: profile → (max n, max nodes after joins, max steps per request).
PROFILES = {
    "quick": {"max_n": 2_000, "max_nodes": 8_000, "max_steps": 1_000},
    "full": {"max_n": 100_000, "max_nodes": 400_000, "max_steps": 100_000},
}

#: hard floor on n — below this the ΘALG substrate degenerates.
MIN_N = 4


class ProtocolError(Exception):
    """A request the protocol rejects; carries the HTTP status to map to."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)

    def body(self) -> dict:
        return error_body(self.code, self.message)


def ok_body(**fields) -> dict:
    """A success payload stamped with the protocol version."""
    return {"protocol": PROTOCOL, **fields}


def error_body(code: str, message: str) -> dict:
    """The one error envelope every failure uses."""
    return {"protocol": PROTOCOL, "error": {"code": code, "message": message}}


@dataclass(frozen=True)
class SessionConfig:
    """Validated parameters of one simulation session."""

    n: int = 64
    seed: int = 0
    delta: "float | None" = None
    profile: str = "quick"
    dests: "tuple[int, ...]" = (0,)
    traffic_rate: float = 1.0
    buffer_size: int = 64
    max_nodes: int = 0  # resolved to 2n in parse when omitted
    name: str = ""
    #: drain steps appended by the session's ``run_steps`` caller; kept
    #: here so a recorded session replays with the same horizon.
    extra: dict = field(default_factory=dict, compare=False)

    def describe(self) -> dict:
        return {
            "n": self.n,
            "seed": self.seed,
            "delta": self.delta,
            "profile": self.profile,
            "dests": list(self.dests),
            "traffic_rate": self.traffic_rate,
            "buffer_size": self.buffer_size,
            "max_nodes": self.max_nodes,
            "name": self.name,
        }


def _require(payload: dict, key: str, kind, default, *, code: str = "invalid_config"):
    value = payload.get(key, default)
    try:
        if kind is int and isinstance(value, bool):
            raise TypeError
        return kind(value)
    except (TypeError, ValueError):
        raise ProtocolError(400, code, f"{key!r} must be a {kind.__name__}, got {value!r}") from None


def parse_session_config(payload) -> SessionConfig:
    """Validate a ``POST /v1/sessions`` body into a :class:`SessionConfig`."""
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ProtocolError(400, "invalid_config", "session config must be a JSON object")
    unknown = set(payload) - {
        "n", "seed", "delta", "profile", "dests", "traffic_rate",
        "buffer_size", "max_nodes", "name",
    }
    if unknown:
        raise ProtocolError(400, "invalid_config", f"unknown config keys: {sorted(unknown)}")
    profile = str(payload.get("profile", "quick"))
    if profile not in PROFILES:
        raise ProtocolError(
            400, "invalid_config", f"profile must be one of {sorted(PROFILES)}, got {profile!r}"
        )
    bounds = PROFILES[profile]
    n = _require(payload, "n", int, 64)
    if not MIN_N <= n <= bounds["max_n"]:
        raise ProtocolError(
            400, "invalid_config",
            f"n must be in [{MIN_N}, {bounds['max_n']}] for profile {profile!r}, got {n}",
        )
    seed = _require(payload, "seed", int, 0)
    delta = payload.get("delta")
    if delta is not None:
        delta = _require(payload, "delta", float, None)
        if not (0.0 <= delta < 100.0) or not math.isfinite(delta):
            raise ProtocolError(400, "invalid_config", f"delta must be finite and >= 0, got {delta}")
    dests_raw = payload.get("dests", [0])
    if not isinstance(dests_raw, (list, tuple)) or not dests_raw:
        raise ProtocolError(400, "invalid_config", "dests must be a non-empty list of node ids")
    try:
        dests = tuple(sorted({int(d) for d in dests_raw}))
    except (TypeError, ValueError):
        raise ProtocolError(400, "invalid_config", f"dests must be integers, got {dests_raw!r}") from None
    if dests[0] < 0 or dests[-1] >= n:
        raise ProtocolError(400, "invalid_config", f"dests must be in [0, {n}), got {list(dests)}")
    traffic_rate = _require(payload, "traffic_rate", float, 1.0)
    if not (0.0 <= traffic_rate <= 1000.0) or not math.isfinite(traffic_rate):
        raise ProtocolError(
            400, "invalid_config", f"traffic_rate must be in [0, 1000], got {traffic_rate}"
        )
    buffer_size = _require(payload, "buffer_size", int, 64)
    if not 1 <= buffer_size <= 1_000_000:
        raise ProtocolError(400, "invalid_config", f"buffer_size must be >= 1, got {buffer_size}")
    max_nodes = _require(payload, "max_nodes", int, 0)
    if max_nodes == 0:
        max_nodes = min(2 * n, bounds["max_nodes"])
    if not n <= max_nodes <= bounds["max_nodes"]:
        raise ProtocolError(
            400, "invalid_config",
            f"max_nodes must be in [n, {bounds['max_nodes']}], got {max_nodes}",
        )
    name = str(payload.get("name", ""))[:80]
    return SessionConfig(
        n=n, seed=seed, delta=delta, profile=profile, dests=dests,
        traffic_rate=traffic_rate, buffer_size=buffer_size,
        max_nodes=max_nodes, name=name,
    )


def parse_step_count(query: dict, profile: str) -> int:
    """Validate ``?steps=k`` for ``POST .../step`` against the profile cap."""
    raw = query.get("steps", "1")
    try:
        steps = int(raw)
    except (TypeError, ValueError):
        raise ProtocolError(400, "invalid_steps", f"steps must be an integer, got {raw!r}") from None
    cap = PROFILES[profile]["max_steps"]
    if not 1 <= steps <= cap:
        raise ProtocolError(
            400, "invalid_steps", f"steps must be in [1, {cap}] for profile {profile!r}, got {steps}"
        )
    return steps


def parse_event_rows(payload) -> "list[dict]":
    """Validate a ``POST .../events`` body into wire-format rows.

    Accepts ``{"events": [row, ...]}``; each row is either a topology
    event (``kind`` join/leave/move/fail/recover, the
    :func:`~repro.dynamic.events.event_trace_to_dict` row shape) or a
    traffic injection ``{"kind": "inject", "node": src, "dest": d,
    "count": k}``.  Semantic validation against the live topology
    happens in :meth:`repro.service.session.Session.inject`.
    """
    if not isinstance(payload, dict) or "events" not in payload:
        raise ProtocolError(400, "invalid_events", 'body must be {"events": [...]}')
    rows = payload["events"]
    if not isinstance(rows, list) or not rows:
        raise ProtocolError(400, "invalid_events", "events must be a non-empty list")
    if len(rows) > 10_000:
        raise ProtocolError(400, "invalid_events", f"at most 10000 events per request, got {len(rows)}")
    out = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or "kind" not in row:
            raise ProtocolError(400, "invalid_events", f"event {i} must be an object with a 'kind'")
        kind = row["kind"]
        if kind == "inject":
            try:
                node = int(row["node"])
                dest = int(row["dest"])
                count = int(row.get("count", 1))
            except (KeyError, TypeError, ValueError):
                raise ProtocolError(
                    400, "invalid_events",
                    f"event {i}: inject needs integer node, dest, and optional count",
                ) from None
            if count < 1 or count > 1_000_000:
                raise ProtocolError(400, "invalid_events", f"event {i}: count must be >= 1")
            out.append({"kind": "inject", "node": node, "dest": dest, "count": count})
            continue
        if kind not in ("join", "leave", "move", "fail", "recover"):
            raise ProtocolError(400, "invalid_events", f"event {i}: unknown kind {kind!r}")
        if "node" not in row:
            raise ProtocolError(400, "invalid_events", f"event {i}: missing node id")
        try:
            node = int(row["node"])
        except (TypeError, ValueError):
            raise ProtocolError(
                400, "invalid_events", f"event {i}: node must be an integer"
            ) from None
        clean: dict = {"kind": kind, "node": node}
        if kind in ("join", "move"):
            pos = row.get("pos")
            if (
                not isinstance(pos, (list, tuple))
                or len(pos) != 2
                or not all(isinstance(v, (int, float)) and math.isfinite(v) for v in pos)
            ):
                raise ProtocolError(
                    400, "invalid_events", f"event {i}: {kind} needs pos: [x, y] (finite numbers)"
                )
            clean["pos"] = [float(pos[0]), float(pos[1])]
        out.append(clean)
    return out
