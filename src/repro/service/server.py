"""The ``repro-service/v1`` asyncio HTTP server.

Stdlib only: ``asyncio.start_server`` plus a deliberately small
HTTP/1.1 layer (request line, headers, Content-Length bodies,
keep-alive) and an SSE writer.  Endpoints::

    GET    /v1/healthz                 liveness + resource sample + cache stats
    GET    /v1/metrics                 OpenMetrics (server + every session)
    POST   /v1/sessions                create a session (JSON config)
    GET    /v1/sessions                list sessions
    GET    /v1/sessions/{id}           one session, with stats detail
    DELETE /v1/sessions/{id}           delete (publishes a terminal SSE event)
    POST   /v1/sessions/{id}/step?steps=k   advance; deltas fan out to streams
    POST   /v1/sessions/{id}/events    inject live churn/traffic events
    GET    /v1/sessions/{id}/events    replayable trace of injected events
    GET    /v1/sessions/{id}/series    SSE stream of per-step deltas

Concurrency model: all session bookkeeping runs on the event-loop
thread; the CPU-bound step batches run in the default executor while
the per-session lock is held, in :data:`STEP_CHUNK` slices so
subscribers see progress during long batches.  SIGTERM/SIGINT trigger
a graceful drain — stop accepting, close every session (which ends
every SSE stream with a terminal frame), give in-flight connections a
grace period, exit 0.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time
from urllib.parse import parse_qsl, urlsplit

from repro.harness.cache import cache_stats
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import resource_sample, to_openmetrics
from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    error_body,
    ok_body,
    parse_event_rows,
    parse_session_config,
    parse_step_count,
)
from repro.service.session import SessionManager
from repro.service.stream import sse_event

__all__ = ["ServiceServer", "serve"]

#: request-head / body bounds (bytes).
MAX_HEADER_BYTES = 32 << 10
MAX_BODY_BYTES = 4 << 20
#: executor slice per step request — streams observe progress at this grain.
STEP_CHUNK = 64
#: SSE comment-ping cadence while a stream is quiet.
SSE_KEEPALIVE_SECONDS = 15.0
#: how long an idle keep-alive connection may sit between requests.
KEEPALIVE_IDLE_SECONDS = 120.0
#: post-drain grace before surviving connections are force-closed.
DRAIN_GRACE_SECONDS = 5.0

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: dict, headers: dict, body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body


class ServiceServer:
    """One listener + one :class:`SessionManager` + one metrics registry."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 16,
        session_ttl: float = 600.0,
        reap_interval: "float | None" = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.manager = SessionManager(max_sessions=max_sessions, ttl_seconds=session_ttl)
        self.reap_interval = (
            float(reap_interval)
            if reap_interval is not None
            else max(0.05, min(float(session_ttl) / 4.0, 30.0))
        )
        self.registry = MetricsRegistry()
        self.draining = False
        self.started_at = time.monotonic()
        self._server: "asyncio.base_events.Server | None" = None
        self._reaper: "asyncio.Task | None" = None
        self._shutdown_task: "asyncio.Task | None" = None
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.create_task(self._reap_loop())
        return self

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._request_shutdown, sig.name)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
                pass

    def _request_shutdown(self, signame: str) -> None:
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown(reason=f"signal:{signame}")
            )

    async def serve_forever(self) -> None:
        """Block until a signal (or :meth:`shutdown`) drains the server."""
        self.install_signal_handlers()
        await self._stopped.wait()

    async def shutdown(self, *, reason: str = "shutdown") -> None:
        """Graceful drain: refuse new work, end every stream, then stop."""
        if self.draining:
            await self._stopped.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._reaper is not None:
            self._reaper.cancel()
        # Ends every SSE stream with a terminal frame carrying final
        # stats (awaiting each session's lock so in-flight step batches
        # finish before their stats are snapshotted).
        await self.manager.drain(reason=reason)
        deadline = time.monotonic() + DRAIN_GRACE_SECONDS
        while self._writers and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):  # pragma: no cover - grace usually suffices
            writer.close()
        self._stopped.set()

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            reaped = self.manager.reap_idle()
            if reaped:
                self.registry.counter("service.sessions_expired").inc(len(reaped))

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ProtocolError as exc:
                    await self._respond_json(writer, exc.status, exc.body(), keep_alive=False)
                    break
                if request is None:
                    break
                if not await self._dispatch(request, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> "_Request | None":
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), KEEPALIVE_IDLE_SECONDS
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, ConnectionError):
            return None
        except asyncio.LimitOverrunError:
            raise ProtocolError(
                431, "headers_too_large", f"request head exceeds {MAX_HEADER_BYTES} bytes"
            ) from None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ProtocolError(400, "bad_request", f"malformed request line: {lines[0]!r}") from None
        headers: "dict[str, str]" = {}
        for line in lines[1:]:
            if line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise ProtocolError(400, "bad_request", "content-length is not an integer") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(413, "body_too_large", f"body must be <= {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        parts = urlsplit(target)
        return _Request(method.upper(), parts.path, dict(parse_qsl(parts.query)), headers, body)

    async def _dispatch(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        self.registry.counter("service.http_requests").inc()
        keep = request.headers.get("connection", "").lower() != "close"
        try:
            if self.draining and request.path != "/v1/healthz":
                raise ProtocolError(
                    503, "draining", "server is draining; retry against a new instance"
                )
            handler, args, is_stream = self._route(request)
            if is_stream:
                # SSE: the handler owns the socket until the stream ends.
                await handler(request, writer, *args)
                return False
            status, body = await handler(request, *args)
        except ProtocolError as exc:
            self.registry.counter(f"service.http_{exc.status}").inc()
            await self._respond_json(writer, exc.status, exc.body(), keep_alive=keep)
            return keep
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:  # noqa: BLE001 - one request must not kill the server
            self.registry.counter("service.http_500").inc()
            await self._respond_json(
                writer, 500, error_body("internal", f"{type(exc).__name__}: {exc}"), keep_alive=False
            )
            return False
        self.registry.counter(f"service.http_{status}").inc()
        if isinstance(body, str):
            await self._respond_raw(
                writer,
                status,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                body.encode(),
                keep_alive=keep,
            )
        else:
            await self._respond_json(writer, status, body, keep_alive=keep)
        return keep

    def _route(self, request: _Request):
        parts = [p for p in request.path.split("/") if p]
        method = request.method
        if len(parts) >= 1 and parts[0] == "v1":
            if parts == ["v1", "healthz"] and method == "GET":
                return self._get_healthz, (), False
            if parts == ["v1", "metrics"] and method == "GET":
                return self._get_metrics, (), False
            if parts == ["v1", "sessions"]:
                if method == "POST":
                    return self._create_session, (), False
                if method == "GET":
                    return self._list_sessions, (), False
                raise ProtocolError(405, "method_not_allowed", f"{method} not allowed here")
            if len(parts) == 3 and parts[1] == "sessions":
                sid = parts[2]
                if method == "GET":
                    return self._get_session, (sid,), False
                if method == "DELETE":
                    return self._delete_session, (sid,), False
                raise ProtocolError(405, "method_not_allowed", f"{method} not allowed here")
            if len(parts) == 4 and parts[1] == "sessions":
                sid, leaf = parts[2], parts[3]
                if leaf == "step" and method == "POST":
                    return self._post_step, (sid,), False
                if leaf == "events" and method == "POST":
                    return self._post_events, (sid,), False
                if leaf == "events" and method == "GET":
                    return self._get_events, (sid,), False
                if leaf == "series" and method == "GET":
                    return self._stream_series, (sid,), True
                if leaf in ("step", "events", "series"):
                    raise ProtocolError(405, "method_not_allowed", f"{method} not allowed here")
        raise ProtocolError(404, "not_found", f"no route for {method} {request.path}")

    def _json_body(self, request: _Request):
        if not request.body:
            return None
        try:
            return json.loads(request.body)
        except ValueError:
            raise ProtocolError(400, "invalid_json", "request body is not valid JSON") from None

    async def _respond_json(self, writer, status: int, body: dict, *, keep_alive: bool) -> None:
        await self._respond_raw(
            writer,
            status,
            "application/json",
            json.dumps(body, separators=(",", ":")).encode(),
            keep_alive=keep_alive,
        )

    async def _respond_raw(
        self, writer, status: int, ctype: str, payload: bytes, *, keep_alive: bool
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"content-type: {ctype}\r\n"
            f"content-length: {len(payload)}\r\n"
            f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode()
        writer.write(head + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _get_healthz(self, request: _Request):
        return 200, ok_body(
            status="draining" if self.draining else "ok",
            sessions=len(self.manager),
            max_sessions=self.manager.max_sessions,
            session_ttl_seconds=self.manager.ttl_seconds,
            uptime_seconds=round(time.monotonic() - self.started_at, 3),
            resource=resource_sample(),
            substrate_cache=cache_stats(),
        )

    async def _get_metrics(self, request: _Request):
        merged = MetricsRegistry()
        merged.merge(self.registry.snapshot())
        for session in self.manager.sessions():
            merged.merge(session.registry.snapshot())
        merged.gauge("service.sessions_active").set(len(self.manager))
        merged.counter("service.sessions_created").inc(self.manager.created_total)
        merged.gauge("service.sse_subscribers").set(
            sum(s.broadcast.n_subscribers for s in self.manager.sessions())
        )
        return 200, to_openmetrics(merged.snapshot())

    async def _create_session(self, request: _Request):
        config = parse_session_config(self._json_body(request))
        # Construction (uniform_points + cached_range + IncrementalTheta)
        # is seconds of CPU for large profiles: run it in the executor so
        # streams, pings, and the reaper keep ticking.  The reservation
        # holds the 429 bound while the build is in flight.
        sid = self.manager.reserve()
        loop = asyncio.get_running_loop()
        try:
            session = await loop.run_in_executor(
                None, functools.partial(self.manager.build, sid, config)
            )
        except BaseException:
            self.manager.release()
            raise
        if self.draining:
            # Drain already swept the table; don't register a session
            # nothing will ever close.
            self.manager.release()
            session.close(reason="server-drain")
            raise ProtocolError(
                503, "draining", "server is draining; retry against a new instance"
            )
        self.manager.register(session)
        self.registry.counter("service.sessions_created_http").inc()
        return 201, ok_body(session=session.describe())

    async def _list_sessions(self, request: _Request):
        sessions = [s.describe() for s in self.manager.sessions()]
        return 200, ok_body(count=len(sessions), sessions=sessions)

    async def _get_session(self, request: _Request, sid: str):
        session = self.manager.get(sid)
        return 200, ok_body(session=session.describe(detail=True))

    async def _delete_session(self, request: _Request, sid: str):
        session = self.manager.get(sid)
        async with session.lock:
            self.manager.delete(sid)
        return 200, ok_body(
            deleted=sid, steps=session.engine.t, final_stats=session.final_stats()
        )

    async def _post_step(self, request: _Request, sid: str):
        session = self.manager.get(sid)
        steps = parse_step_count(request.query, session.config.profile)
        inject = request.query.get("inject", "1").lower() not in ("0", "false")
        loop = asyncio.get_running_loop()
        async with session.lock:
            session.touch()
            remaining = steps
            while remaining:
                chunk = min(remaining, STEP_CHUNK)
                await loop.run_in_executor(
                    None, functools.partial(session.advance, chunk, inject=inject)
                )
                remaining -= chunk
                session.publish_pending()
            session.touch()
        return 200, ok_body(
            session=sid,
            stepped=steps,
            t=session.engine.t,
            stats=session.final_stats(),
            leftover=int(session.router.total_packets()),
        )

    async def _post_events(self, request: _Request, sid: str):
        session = self.manager.get(sid)
        rows = parse_event_rows(self._json_body(request))
        async with session.lock:
            session.touch()
            result = session.inject(rows)
        return 200, ok_body(session=sid, **result)

    async def _get_events(self, request: _Request, sid: str):
        session = self.manager.get(sid)
        return 200, ok_body(session=sid, trace=session.events_trace())

    async def _stream_series(self, request: _Request, writer, sid: str) -> None:
        session = self.manager.get(sid)
        try:
            sub = session.broadcast.subscribe()
        except RuntimeError:
            raise ProtocolError(409, "session_closed", f"session {sid} is closed") from None
        # No await between subscribe() and the baseline read: publishes
        # happen on this thread only, so hello/baseline and the queue's
        # first delta are consistent by construction.
        hello = sse_event(
            "hello",
            {
                "protocol": PROTOCOL,
                "session": sid,
                "from_step": session.stream_mark,
                "baseline": session.series.prefix_totals(session.stream_mark),
                "config": session.config.describe(),
            },
        )
        self.registry.counter("service.sse_streams").inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"content-type: text/event-stream\r\n"
            b"cache-control: no-store\r\n"
            b"connection: close\r\n"
            b"\r\n" + hello
        )
        try:
            await writer.drain()
            while True:
                try:
                    event, data = await asyncio.wait_for(
                        sub.next_event(), SSE_KEEPALIVE_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                writer.write(sse_event(event, data))
                await writer.drain()
                if sub.closed:
                    break
        finally:
            session.broadcast.unsubscribe(sub)


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_sessions: int = 16,
    session_ttl: float = 600.0,
    announce=print,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns 0 on graceful drain."""

    async def _run() -> None:
        server = ServiceServer(
            host=host, port=port, max_sessions=max_sessions, session_ttl=session_ttl
        )
        await server.start()
        announce(
            f"{PROTOCOL} listening on http://{server.host}:{server.port} "
            f"(max_sessions={max_sessions}, ttl={session_ttl:g}s)"
        )
        await server.serve_forever()
        announce("drained; bye")

    asyncio.run(_run())
    return 0
