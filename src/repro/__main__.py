"""Command-line experiment runner: ``python -m repro <experiment> [...]``.

Regenerates any of the DESIGN.md §2 experiment tables from the command
line without going through pytest:

    python -m repro e1               # Lemma 2.1 table
    python -m repro e4 --quick       # smaller parameters, fast
    python -m repro all --quick      # everything
    python -m repro list             # what exists

gates the paper's claims (the CI entry point):

    python -m repro verify --quick --jobs 4      # all claims, parallel
    python -m repro verify --only e4,e7          # a selection, full scale
    python -m repro verify --list                # claim table, no runs

captures/inspects observability traces (:mod:`repro.obs`):

    python -m repro e6 --quick --trace /tmp/t    # span trace + step series
    python -m repro verify --quick --trace /tmp/t
    python -m repro report /tmp/t                # phase/series breakdown

and exercises the dynamic-network subsystem (:mod:`repro.dynamic`)
directly — one network, one churn trace, the E23 locality-of-update
table for that single configuration:

    python -m repro dynamic --n 1000 --churn 0.01 --steps 100
    python -m repro dynamic --n 500 --churn 0.02 --steps 50 --trace /tmp/t
    python -m repro dynamic --n 200 --events-out trace.json   # record
    python -m repro dynamic --n 200 --events-in trace.json    # replay

serves live simulation sessions over HTTP (:mod:`repro.service`) with
SSE step streaming and live event injection:

    python -m repro serve --port 8642 --max-sessions 16 --session-ttl 600

runs declarative sweeps (:mod:`repro.campaign`) with resumable
progress and a persistent, queryable result store:

    python -m repro campaign run spec.json --jobs 4      # fan out the grid
    python -m repro campaign run spec.json --resume      # finish a killed run
    python -m repro campaign run spec.json --live        # in-place progress
    python -m repro campaign cells spec.json             # expansion, no runs
    python -m repro query STORE --where claim=e1 --where n=96
    python -m repro query STORE --columns cell,passed --format csv
    python -m repro top STORE                            # progress + workers
    python -m repro top STORE --watch 2                  # refresh every 2s

``verify`` evaluates every selected claim's tolerance/bound predicate
(see :mod:`repro.harness.registry`), writes one JSON record per claim
under ``benchmarks/results/`` (override with ``REPRO_RESULTS_DIR``),
prints a summary table, and exits 1 if any claim no longer holds.

``--trace DIR`` (or the ``REPRO_TRACE=DIR`` environment variable)
enables the span tracer and per-step series recorder for the run and
exports ``trace.jsonl``, ``trace.chrome.json`` (loadable in Perfetto /
``chrome://tracing``), ``series.json`` and ``metrics.json`` into DIR —
see ``docs/observability.md``.

The experiment thunks themselves live in the claim registry; ``--quick``
maps to the scaled-down parameter sets the test suite uses.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import time

from repro import obs
from repro.analysis import tables
from repro.harness.registry import REGISTRY, build_rows, claim_ids, resolve_ids
from repro.harness.results import write_result
from repro.harness.runner import run_claims
from repro.obs import trace
from repro.obs.report import render_report

#: experiment id → (description, full-scale thunk, quick thunk).
#: Kept for back-compatibility with callers of the pre-registry CLI.
EXPERIMENTS = {
    claim.id: (
        f"{claim.paper_ref} — {claim.title}",
        functools.partial(build_rows, claim, "full"),
        functools.partial(build_rows, claim, "quick"),
    )
    for claim in REGISTRY.values()
}


def _claim_table() -> str:
    """The registry as a table (``verify --list``)."""
    rows = [
        {
            "claim": claim.id,
            "paper_ref": claim.paper_ref,
            "title": claim.title,
            "seed": claim.seed,
            "harness": f"{claim.module.rsplit('.', 1)[-1]}.{claim.func}",
        }
        for claim in REGISTRY.values()
    ]
    return tables.render_table(rows, title=f"claim registry — {len(rows)} claims")


def _export_trace(trace_dir: str) -> None:
    """Write the active tracer's capture and say where it went."""
    paths = obs.export(trace_dir)
    print(f"\ntrace written to {trace_dir}/ "
          f"({', '.join(p.name for p in paths.values())}); "
          f"open {paths['chrome'].name} in Perfetto or run "
          f"'python -m repro report {trace_dir}'")


def _verify(args: argparse.Namespace, trace_dir: "str | None") -> int:
    if args.list:
        print(_claim_table())
        return 0
    try:
        ids = resolve_ids(args.only)
    except KeyError as exc:
        print(
            f"{exc.args[0]}\nvalid claim ids: {', '.join(claim_ids())}",
            file=sys.stderr,
        )
        return 2
    profile = "quick" if args.quick else "full"
    if trace_dir:
        obs.enable()
    t0 = time.perf_counter()
    results = run_claims(
        ids, profile=profile, jobs=args.jobs, collect_trace=bool(trace_dir)
    )
    wall = time.perf_counter() - t0

    summary = []
    for res in results:
        path = write_result(res)
        summary.append(
            {
                "claim": res.claim.upper(),
                "paper_ref": res.paper_ref,
                "title": res.title,
                "rows": len(res.rows),
                "passed": res.passed,
                "violations": len(res.failures),
                "seconds": round(res.runtime_seconds, 2),
                "json": str(path),
            }
        )
    n_failed = sum(not res.passed for res in results)
    print(
        tables.render_table(
            summary,
            title=f"repro verify — {profile} profile, {len(results)} claims, "
            f"--jobs {args.jobs}, {wall:.1f}s wall",
        )
    )
    for res in results:
        for msg in res.failures:
            print(f"FAIL {res.claim}: {msg}", file=sys.stderr)
    if trace_dir:
        # Merge what the claims captured (in-process or in pool workers)
        # into this process's tracer, then export one trace directory.
        tracer = trace.active()
        for res in results:
            tracer.ingest(res.trace.get("events", []))
            tracer.ingest_series(res.trace.get("series", []))
        _export_trace(trace_dir)
    if n_failed:
        print(f"\n{n_failed}/{len(results)} claims FAILED", file=sys.stderr)
        return 1
    print(f"\nall {len(results)} claims hold")
    return 0


def _parse_tiles(spec: "str | None") -> "int | tuple[int, int] | None":
    """``--tiles`` value → TileWorkerPool's ``tiles=`` argument.

    ``"NX,NY"`` pins the grid shape exactly; a bare integer asks for at
    least that many tiles (the grid chooses its own shape); ``None``
    keeps the adaptive default.
    """
    if spec is None:
        return None
    parts = [p.strip() for p in spec.split(",")]
    try:
        if len(parts) == 1:
            count = int(parts[0])
            if count < 1:
                raise ValueError
            return count
        if len(parts) == 2:
            nx, ny = int(parts[0]), int(parts[1])
            if nx < 1 or ny < 1:
                raise ValueError
            return (nx, ny)
    except ValueError:
        pass
    raise ValueError(f"--tiles expects NX,NY or a positive integer, got {spec!r}")


def _dynamic(args: argparse.Namespace, trace_dir: "str | None") -> int:
    """The ``dynamic`` subcommand: churn one network, report repair cost.

    Runs the same measurement as claim E23 but for a single
    user-chosen configuration: ``--churn`` is the per-node per-step
    event probability, so the trace holds ``n * churn * steps`` mixed
    events (moves 40%, join/leave/fail/recover 15% each).
    """
    import json
    import math

    import numpy as np

    from repro.core.theta import theta_algorithm
    from repro.dynamic import (
        DynamicInterference,
        IncrementalTheta,
        apply_events_parallel,
        event_kind,
        event_trace_from_dict,
        event_trace_to_dict,
        random_event_trace,
    )
    from repro.geometry.pointsets import uniform_points
    from repro.harness.cache import cached_range
    from repro.interference.conflict import interference_sets
    from repro.utils.rng import as_rng

    if args.n < 4:
        print("dynamic: --n must be at least 4", file=sys.stderr)
        return 2
    if args.churn <= 0 or args.steps <= 0:
        print("dynamic: --churn and --steps must be positive", file=sys.stderr)
        return 2
    if trace_dir:
        obs.enable()

    gen = as_rng(args.seed)
    pts = uniform_points(args.n, rng=gen)
    d0 = cached_range(pts, 1.5)
    if args.events_in:
        try:
            with open(args.events_in) as fh:
                events = event_trace_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"dynamic: cannot load events from {args.events_in}: {exc}", file=sys.stderr)
            return 2
        print(f"replaying {len(events)} events from {args.events_in}")
    else:
        n_events = max(1, round(args.churn * args.n * args.steps))
        events = random_event_trace(pts, n_events, move_sigma=d0 / 2.0, rng=gen)
    if args.events_out:
        try:
            with open(args.events_out, "w") as fh:
                json.dump(event_trace_to_dict(events), fh)
        except OSError as exc:
            print(f"dynamic: cannot write {args.events_out}: {exc}", file=sys.stderr)
            return 2
        print(f"event trace written to {args.events_out} ({len(events)} events)")
    inc = IncrementalTheta(pts, math.pi / 9, d0)
    di = DynamicInterference(inc, args.delta) if args.mac else None

    touched: "list[int]" = []
    radii: "list[float]" = []
    flipped: "list[int]" = []
    wall: "list[float]" = []
    conflict_rows: "list[int]" = []
    conflict_entries: "list[int]" = []
    conflict_wall: "list[float]" = []
    kinds: "dict[str, int]" = {}
    evs = list(events.events())
    for ev in evs:
        kinds[event_kind(ev)] = kinds.get(event_kind(ev), 0) + 1
    groups = 0
    halo_nodes = 0
    diffs_replayed = 0
    diffs_suppressed = 0
    backends_used: "set[str]" = set()
    if args.parallel:
        # One batch per simulated step (round(churn·n) events each),
        # grouped by dirty-disk overlap and repaired group-by-group.
        backend = None if args.backend == "auto" else args.backend
        pool = None
        if backend == "process":
            from repro.parallel import TileWorkerPool

            try:
                tiles = _parse_tiles(args.tiles)
            except ValueError as exc:
                print(f"dynamic: {exc}", file=sys.stderr)
                return 2
            cap = max([inc.size] + [int(ev.node) + 1 for ev in evs])
            pool = TileWorkerPool(
                inc,
                di,
                workers=args.workers,
                capacity=cap + 16,
                tiles=tiles,
                halo_filter=not args.no_halo_filter,
            )
        per_step = max(1, round(args.churn * args.n))
        try:
            for lo in range(0, len(evs), per_step):
                batch = apply_events_parallel(
                    inc,
                    evs[lo : lo + per_step],
                    interference=di,
                    jobs=args.jobs if args.jobs != 1 else None,
                    backend=backend,
                    pool=pool,
                )
                groups += batch.groups
                halo_nodes += batch.halo_nodes
                diffs_replayed += batch.diffs_replayed
                diffs_suppressed += batch.diffs_suppressed
                backends_used.add(batch.backend)
                wall.append(batch.wall_time)
                for rs in batch.repairs:
                    touched.append(rs.nodes_touched)
                    radii.append(rs.update_radius)
                    flipped.append(rs.edges_flipped)
                for cs in batch.conflict_repairs:
                    conflict_rows.append(cs.rows_recomputed)
                    conflict_entries.append(cs.entries_changed)
                    conflict_wall.append(cs.wall_time)
        finally:
            if pool is not None:
                pool.close()
    else:
        for ev in evs:
            stats = inc.apply(ev)
            touched.append(stats.nodes_touched)
            radii.append(stats.update_radius)
            flipped.append(stats.edges_flipped)
            wall.append(stats.wall_time)
            if di is not None:
                cs = di.update_event(stats)
                conflict_rows.append(cs.rows_recomputed)
                conflict_entries.append(cs.entries_changed)
                conflict_wall.append(cs.wall_time)
    mismatches = 1 if inc.check_full_equivalence() else 0
    conflict_mismatches = 0
    if di is not None:
        conflict_mismatches = 1 if di.check_full_equivalence() else 0

    live = inc.live_points()
    t0 = time.perf_counter()
    theta_algorithm(live, math.pi / 9, d0)
    full_ms = (time.perf_counter() - t0) * 1e3
    event_ms = float(np.sum(wall)) / len(evs) * 1e3
    touched_arr = np.asarray(touched, dtype=np.float64)
    row = {
        "n": int(args.n),
        "live_n": int(inc.n_alive),
        "events": len(evs),
        "mean_touched": float(touched_arr.mean()),
        "p95_touched": float(np.percentile(touched_arr, 95)),
        "max_touched": int(touched_arr.max()),
        "touched_per_n": float(touched_arr.mean() / args.n),
        "mean_update_radius_over_D": float(np.mean(radii) / d0),
        "max_update_radius_over_D": float(np.max(radii) / d0),
        "edges_flipped_per_event": float(np.mean(flipped)),
        "ms_per_event": event_ms,
        "full_rebuild_ms": full_ms,
        "rebuild_speedup": full_ms / event_ms if event_ms > 0 else float("inf"),
        "equality_mismatches": mismatches,
    }
    mode = "parallel batches" if args.parallel else "serial events"
    print(
        tables.render_table(
            [row],
            title=f"dynamic churn — n={args.n}, churn={args.churn:g}/node/step, "
            f"steps={args.steps}, seed={args.seed} ({mode})",
        )
    )
    if di is not None and conflict_rows:
        t0 = time.perf_counter()
        interference_sets(inc.snapshot_graph(), args.delta)
        conflict_full_ms = (time.perf_counter() - t0) * 1e3
        conflict_ms = float(np.sum(conflict_wall)) / len(evs) * 1e3
        crow = {
            "edges": int(di.n_edges),
            "mean_conflict_rows": float(np.mean(conflict_rows)),
            "p95_conflict_rows": float(np.percentile(conflict_rows, 95)),
            "entries_changed_per_event": float(np.mean(conflict_entries)),
            "conflict_ms_per_event": conflict_ms,
            "conflict_rebuild_ms": conflict_full_ms,
            "conflict_speedup": conflict_full_ms / conflict_ms
            if conflict_ms > 0
            else float("inf"),
            "equality_mismatches": conflict_mismatches,
        }
        print()
        print(tables.render_table([crow], title=f"conflict repair — delta={args.delta:g}"))
    mix = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    print(f"event mix: {mix}")
    if args.parallel:
        used = "+".join(sorted(backends_used)) or "serial"
        line = (
            f"batch groups: {groups} across "
            f"{math.ceil(len(evs) / max(1, round(args.churn * args.n)))} steps "
            f"(backend: {used}"
        )
        if halo_nodes:
            line += f", halo entries: {halo_nodes}"
        if diffs_replayed or diffs_suppressed:
            line += f", diffs replayed: {diffs_replayed}"
            line += f", suppressed: {diffs_suppressed}"
        print(line + ")")
    backstop = "edge-for-edge equal" if not mismatches else "MISMATCH vs from-scratch ΘALG"
    print(f"final topology vs full rebuild: {backstop}")
    if di is not None:
        cb = (
            "row-for-row equal"
            if not conflict_mismatches
            else "MISMATCH vs from-scratch interference_sets"
        )
        print(f"final conflict rows vs full rebuild: {cb}")
    if trace_dir:
        _export_trace(trace_dir)
    return 1 if mismatches or conflict_mismatches else 0


def _campaign_diff_main(argv: "list[str]") -> int:
    """``python -m repro campaign diff STORE_A STORE_B [...]``."""
    from repro.campaign.diff import DiffError, run_diff
    from repro.campaign.query import FORMATS
    from repro.campaign.store import StoreError

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign diff",
        description="Join two campaign stores cell-for-cell on their "
        "content-digest ids and report per-cell drift; exits 1 when any "
        "cell regressed (pass→fail, or a watched metric drifted past the "
        "tolerance in the bad direction).",
    )
    parser.add_argument("store_a", help="baseline store directory")
    parser.add_argument("store_b", help="candidate store directory")
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="NAME",
        help="watch a flattened-cell column for drift (repeatable; "
        "lower-is-better unless prefixed with +, e.g. +n_rows)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRAC",
        help="relative drift allowed per watched metric (default 0)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="table",
        help="output format (default table)",
    )
    parser.add_argument(
        "--only-changed", action="store_true",
        help="omit cells whose status is 'same'",
    )
    args = parser.parse_args(argv)
    try:
        text, n_regressed = run_diff(
            args.store_a,
            args.store_b,
            metrics=args.metric,
            tolerance=args.tolerance,
            fmt=args.format,
            only_changed=args.only_changed,
        )
    except (StoreError, DiffError) as exc:
        print(f"campaign diff: {exc}", file=sys.stderr)
        return 2
    print(text)
    if n_regressed:
        print(f"{n_regressed} cell(s) regressed", file=sys.stderr)
        return 1
    return 0


def _campaign_main(argv: "list[str]") -> int:
    """``python -m repro campaign {run,cells,diff} ...``."""
    if argv and argv[0] == "diff":
        return _campaign_diff_main(argv[1:])
    from repro.analysis.campaigns import campaign_claim_summary
    from repro.campaign import (
        SpecError,
        StoreError,
        load_spec,
        run_campaign,
    )
    from repro.harness.results import ResultsDirError, resolve_results_dir

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a declarative sweep over the claim registry "
        "into a resumable, queryable result store.",
    )
    parser.add_argument("action", choices=("run", "cells"),
                        help="run the campaign, or just print its expanded cells")
    parser.add_argument("spec", help="JSON or TOML campaign spec file")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: <results dir>/campaigns/<spec name>, "
        "honoring REPRO_RESULTS_DIR)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the cell fan-out (default 1)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an existing store, running only cells its manifest "
        "does not mark complete",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="K",
        help="stop after K cells complete in this invocation, leaving the "
        "store resumable (exit 3 while cells remain)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="run: render an in-place progress panel (cells done, "
        "per-worker throughput, RSS) as results arrive",
    )
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="run: capture a span trace covering every cell (workers "
        "included) and export it into DIR",
    )
    args = parser.parse_args(argv)
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2

    if args.action == "cells":
        rows = [cell.describe() for cell in spec.cells()]
        print(tables.render_table(
            rows, title=f"campaign {spec.name!r} — {len(rows)} cells"))
        return 0

    trace_dir = args.trace or os.environ.get("REPRO_TRACE") or None
    if trace_dir:
        obs.enable()
    try:
        store_dir = (
            args.store
            if args.store is not None
            else resolve_results_dir(f"campaigns/{spec.name}")
        )
        report = run_campaign(
            spec,
            store_dir,
            jobs=args.jobs,
            resume=args.resume,
            max_cells=args.max_cells,
            progress=None if args.live else print,
            live=args.live,
        )
    except (ResultsDirError, StoreError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    if trace_dir:
        _export_trace(trace_dir)
    if report.rows:
        print()
        print(tables.render_table(
            report.rows,
            title=f"campaign {spec.name!r} — {report.n_run} cells run "
            f"({report.n_skipped} resumed as complete), "
            f"{report.wall_seconds:.1f}s wall",
        ))
    if report.complete:
        print()
        print(tables.render_table(
            campaign_claim_summary(report.store),
            title="per-claim rollup",
        ))
    print(f"\nstore: {report.store}")
    if not report.complete:
        print(
            f"campaign incomplete: "
            f"{report.n_cells - report.n_skipped - report.n_run} cells remain "
            f"(relaunch with --resume)",
            file=sys.stderr,
        )
        return 3
    if report.n_failed:
        print(f"{report.n_failed} cell(s) FAILED their claim predicate", file=sys.stderr)
        return 1
    print(f"campaign complete: all {report.n_cells} cells hold")
    return 0


def _top_main(argv: "list[str]") -> int:
    """``python -m repro top STORE [--watch SEC]``."""
    from repro.obs import telemetry

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Show a campaign store's live progress and per-worker "
        "resource usage from its telemetry.jsonl snapshot stream (works on "
        "running and finished campaigns alike).",
    )
    parser.add_argument("store", help="campaign store directory")
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SEC",
        help="refresh every SEC seconds until interrupted",
    )
    args = parser.parse_args(argv)
    try:
        while True:
            text = telemetry.render_top(args.store)
            if args.watch and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text)
            if not args.watch:
                return 0
            time.sleep(args.watch)
    except FileNotFoundError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def _query_main(argv: "list[str]") -> int:
    """``python -m repro query STORE [--where ...] [--columns ...]``."""
    from repro.campaign.query import FORMATS, QueryError, run_query
    from repro.campaign.store import StoreError

    parser = argparse.ArgumentParser(
        prog="python -m repro query",
        description="Render any slice of a campaign result store "
        "without re-running anything.",
    )
    parser.add_argument("store", help="campaign store directory")
    parser.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="COND",
        help="filter: KEY OP VALUE with OP in {= != >= <= > <}; "
        "repeat to AND conditions (e.g. --where claim=e1 --where n>=96)",
    )
    parser.add_argument(
        "--columns",
        default=None,
        metavar="COLS",
        help="comma-separated columns to project (default: all)",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=FORMATS, default="table",
        help="output format (default table)",
    )
    parser.add_argument(
        "--rows",
        action="store_true",
        help="one output row per experiment-table row instead of per cell",
    )
    args = parser.parse_args(argv)
    columns = (
        [c.strip() for c in args.columns.split(",") if c.strip()]
        if args.columns
        else None
    )
    try:
        print(run_query(
            args.store,
            where=args.where,
            columns=columns,
            fmt=args.fmt,
            include_rows=args.rows,
        ))
    except (StoreError, QueryError) as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 2
    return 0


def _serve_main(argv: "list[str]") -> int:
    """``python -m repro serve [--host --port --max-sessions --session-ttl]``."""
    from repro.service.server import serve

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the repro-service/v1 session server: concurrent "
        "live simulations over HTTP with SSE step streaming and live "
        "event injection (see docs/service.md).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="TCP port; 0 picks a free one (default 8642)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=16, metavar="K",
        help="concurrent-session bound; creation 429s beyond it (default 16)",
    )
    parser.add_argument(
        "--session-ttl", type=float, default=600.0, metavar="SEC",
        help="idle seconds before a session is reaped (default 600)",
    )
    args = parser.parse_args(argv)
    if args.max_sessions < 1 or args.session_ttl <= 0:
        print("serve: --max-sessions must be >= 1 and --session-ttl > 0", file=sys.stderr)
        return 2
    try:
        return serve(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            session_ttl=args.session_ttl,
        )
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # campaign/query/serve carry their own option namespaces; dispatch
    # before the flat experiment parser sees (and rejects) their flags.
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if argv and argv[0] == "query":
        return _query_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate and verify the paper-reproduction experiment tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e24), 'all', 'list', 'verify', 'report', "
        "'dynamic', 'campaign', 'query', 'top', or 'serve'",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="report: the trace directory to summarize",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters (seconds, not minutes)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="verify: run claims across N worker processes; "
        "dynamic --parallel: repair threads per batch (default 1)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="IDS",
        help="verify: comma-separated claim ids to check (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="verify: print the claim table without running anything",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="capture a span trace + per-step series into DIR "
        "(also enabled by REPRO_TRACE=DIR)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=1000,
        metavar="N",
        help="dynamic: number of nodes (default 1000)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        metavar="RATE",
        help="dynamic: per-node per-step event probability (default 0.01)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=100,
        metavar="T",
        help="dynamic: number of simulated steps (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=23,
        metavar="S",
        help="dynamic: RNG seed for points and the event trace (default 23)",
    )
    parser.add_argument(
        "--mac",
        action="store_true",
        help="dynamic: maintain §2.4 interference sets incrementally and "
        "report per-event conflict-repair stats",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="dynamic: apply each step's events as disjoint-region batches "
        "(--jobs threads repair independent groups concurrently)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        metavar="B",
        help="dynamic --parallel: batch execution backend — auto (default), "
        "serial, thread, or process (tiled worker pool over shared memory)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="W",
        help="dynamic --parallel --backend process: worker process count "
        "(default: available cores)",
    )
    parser.add_argument(
        "--tiles",
        default=None,
        metavar="NX,NY",
        help="dynamic --backend process: pin the worker pool's tile grid to "
        "an exact NX,NY shape (a bare integer asks for that many tiles; "
        "default: adaptive from worker count)",
    )
    parser.add_argument(
        "--no-halo-filter",
        action="store_true",
        help="dynamic --backend process: broadcast every repair diff to every "
        "worker instead of halo-subscription filtering (debugging/benchmark "
        "reference; same results, more replay traffic)",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=0.5,
        metavar="D",
        help="dynamic: guard-zone parameter Δ for --mac (default 0.5)",
    )
    parser.add_argument(
        "--events-in",
        default=None,
        metavar="FILE",
        help="dynamic: replay a recorded event-trace JSON file instead of "
        "generating one (the event_trace_to_dict format; also what "
        "GET /v1/sessions/{id}/events returns)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="dynamic: write the event trace used by this run as JSON "
        "(replayable via --events-in)",
    )
    args = parser.parse_args(argv)
    trace_dir = args.trace or os.environ.get("REPRO_TRACE") or None

    if args.experiment == "list":
        for key, (desc, _, _) in EXPERIMENTS.items():
            print(f"{key:4s} {desc}")
        return 0

    if args.experiment == "report":
        if not args.path:
            print("usage: python -m repro report DIR", file=sys.stderr)
            return 2
        if not os.path.isdir(args.path):
            print(f"no such trace directory: {args.path}", file=sys.stderr)
            return 2
        print(render_report(args.path))
        return 0

    if args.experiment == "verify":
        return _verify(args, trace_dir)

    if args.experiment == "dynamic":
        return _dynamic(args, trace_dir)

    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment.lower()]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try 'list'", file=sys.stderr)
        return 2

    if trace_dir:
        obs.enable()
    for key in keys:
        desc, full, quick = EXPERIMENTS[key]
        t0 = time.perf_counter()
        with trace.span(f"experiment.{key}", profile="quick" if args.quick else "full"):
            rows = (quick if args.quick else full)()
        elapsed = time.perf_counter() - t0
        print(tables.render_table(rows, title=f"{key.upper()}: {desc}"))
        print(f"[{key} completed in {elapsed:.1f}s]\n")
    if trace_dir:
        _export_trace(trace_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
