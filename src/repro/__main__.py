"""Command-line experiment runner: ``python -m repro <experiment> [...]``.

Regenerates any of the DESIGN.md §2 experiment tables from the command
line without going through pytest:

    python -m repro e1               # Lemma 2.1 table
    python -m repro e4 --quick       # smaller parameters, fast
    python -m repro all --quick      # everything
    python -m repro list             # what exists

and gates the paper's claims (the CI entry point):

    python -m repro verify --quick --jobs 4      # all claims, parallel
    python -m repro verify --only e4,e7          # a selection, full scale

``verify`` evaluates every selected claim's tolerance/bound predicate
(see :mod:`repro.harness.registry`), writes one JSON record per claim
under ``benchmarks/results/`` (override with ``REPRO_RESULTS_DIR``),
prints a summary table, and exits 1 if any claim no longer holds.

The experiment thunks themselves live in the claim registry; ``--quick``
maps to the scaled-down parameter sets the test suite uses.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time

from repro.analysis import tables
from repro.harness.registry import REGISTRY, build_rows, resolve_ids
from repro.harness.results import write_result
from repro.harness.runner import run_claims

#: experiment id → (description, full-scale thunk, quick thunk).
#: Kept for back-compatibility with callers of the pre-registry CLI.
EXPERIMENTS = {
    claim.id: (
        f"{claim.paper_ref} — {claim.title}",
        functools.partial(build_rows, claim, "full"),
        functools.partial(build_rows, claim, "quick"),
    )
    for claim in REGISTRY.values()
}


def _verify(args: argparse.Namespace) -> int:
    try:
        ids = resolve_ids(args.only)
    except KeyError as exc:
        print(f"{exc.args[0]}; try 'list'", file=sys.stderr)
        return 2
    profile = "quick" if args.quick else "full"
    t0 = time.perf_counter()
    results = run_claims(ids, profile=profile, jobs=args.jobs)
    wall = time.perf_counter() - t0

    summary = []
    for res in results:
        path = write_result(res)
        summary.append(
            {
                "claim": res.claim.upper(),
                "paper_ref": res.paper_ref,
                "title": res.title,
                "rows": len(res.rows),
                "passed": res.passed,
                "violations": len(res.failures),
                "seconds": round(res.runtime_seconds, 2),
                "json": str(path),
            }
        )
    n_failed = sum(not res.passed for res in results)
    print(
        tables.render_table(
            summary,
            title=f"repro verify — {profile} profile, {len(results)} claims, "
            f"--jobs {args.jobs}, {wall:.1f}s wall",
        )
    )
    for res in results:
        for msg in res.failures:
            print(f"FAIL {res.claim}: {msg}", file=sys.stderr)
    if n_failed:
        print(f"\n{n_failed}/{len(results)} claims FAILED", file=sys.stderr)
        return 1
    print(f"\nall {len(results)} claims hold")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate and verify the paper-reproduction experiment tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e22), 'all', 'list', or 'verify'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters (seconds, not minutes)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="verify: run claims across N worker processes (default 1)",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="IDS",
        help="verify: comma-separated claim ids to check (default: all)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (desc, _, _) in EXPERIMENTS.items():
            print(f"{key:4s} {desc}")
        return 0

    if args.experiment == "verify":
        return _verify(args)

    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment.lower()]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try 'list'", file=sys.stderr)
        return 2

    for key in keys:
        desc, full, quick = EXPERIMENTS[key]
        t0 = time.perf_counter()
        rows = (quick if args.quick else full)()
        elapsed = time.perf_counter() - t0
        print(tables.render_table(rows, title=f"{key.upper()}: {desc}"))
        print(f"[{key} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
