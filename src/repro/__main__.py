"""Command-line experiment runner: ``python -m repro <experiment> [...]``.

Regenerates any of the DESIGN.md §2 experiment tables from the command
line without going through pytest:

    python -m repro e1              # Lemma 2.1 table
    python -m repro e4 --quick      # smaller parameters, fast
    python -m repro all --quick     # everything
    python -m repro list            # what exists

The same harness functions back the benchmark suite; ``--quick`` maps
to the scaled-down parameter sets the test suite uses.
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from repro.analysis import ablation_experiments as aexp
from repro.analysis import anycast_experiments as axp
from repro.analysis import geographic_experiments as gexp
from repro.analysis import mobility_experiments as mexp
from repro.analysis import tables
from repro.analysis import routing_experiments as rexp
from repro.analysis import topology_experiments as texp

#: experiment id → (description, full-scale thunk, quick thunk)
EXPERIMENTS = {
    "e1": (
        "Lemma 2.1 — connectivity and degree bound of N",
        lambda: texp.e1_degree_connectivity(rng=0),
        lambda: texp.e1_degree_connectivity(
            ns=(48,), thetas=(math.pi / 6,), distributions=("uniform", "ring"), rng=0
        ),
    ),
    "e2": (
        "Theorem 2.2 — O(1) energy-stretch of N",
        lambda: texp.e2_energy_stretch(rng=0),
        lambda: texp.e2_energy_stretch(
            ns=(48,), thetas=(math.pi / 9,), kappas=(2.0,), distributions=("uniform",), rng=0
        ),
    ),
    "e3": (
        "Theorem 2.7 — distance-stretch on civilized graphs",
        lambda: texp.e3_distance_stretch_civilized(rng=0),
        lambda: texp.e3_distance_stretch_civilized(ns=(48,), lams=(0.5,), thetas=(math.pi / 9,), rng=0),
    ),
    "e4": (
        "Lemma 2.10 — interference number O(log n)",
        lambda: texp.e4_interference_scaling(rng=0),
        lambda: texp.e4_interference_scaling(ns=(48, 96), deltas=(0.5,), trials=1, rng=0),
    ),
    "e5": (
        "Lemma 2.9 — θ-path congestion ≤ 6",
        lambda: texp.e5_schedule_replacement(rng=0),
        lambda: texp.e5_schedule_replacement(ns=(48,), steps=5, rng=0),
    ),
    "e6": (
        "Theorem 3.1 — (T, γ)-balancing competitiveness",
        lambda: rexp.e6_balancing_competitive(rng=0),
        lambda: rexp.e6_balancing_competitive(epsilons=(0.25,), duration=200, rng=0),
    ),
    "e7": (
        "Theorem 3.3 — (T, γ, I)-balancing vs the 1/(8I) floor",
        lambda: rexp.e7_tgi_throughput(rng=0),
        lambda: rexp.e7_tgi_throughput(trials=1, duration=1500, n=50, rng=0),
    ),
    "e8": (
        "Corollary 3.5 — O(1/log n) competitiveness on random nodes",
        lambda: rexp.e8_random_competitive(rng=0),
        lambda: rexp.e8_random_competitive(ns=(48, 96), duration=1500, rng=0),
    ),
    "e9": (
        "Theorem 3.8 — honeycomb algorithm at fixed power",
        lambda: rexp.e9_honeycomb(rng=0),
        lambda: rexp.e9_honeycomb(deltas=(0.5,), duration=300, rng=0),
    ),
    "e10": (
        "§1.2 — topology zoo comparison",
        lambda: texp.e10_topology_zoo(rng=0),
        lambda: texp.e10_topology_zoo(n=80, distributions=("uniform",), rng=0),
    ),
    "e11": (
        "§2.1 — 3-round local protocol",
        lambda: texp.e11_local_protocol(rng=0),
        lambda: texp.e11_local_protocol(ns=(48,), rng=0),
    ),
    "e12": (
        "§3.2 — buffer/threshold trade-off",
        lambda: rexp.e12_buffer_tradeoff(rng=0),
        lambda: rexp.e12_buffer_tradeoff(thresholds=(1, 16), heights=(8, 128), duration=150, rng=0),
    ),
    "e13": (
        "§2.4 remark — protocol vs SINR interference models",
        lambda: aexp.e13_interference_models(rng=0),
        lambda: aexp.e13_interference_models(
            n=64, deltas=(0.5,), betas=(2.0,), sets_per_config=40, rng=0
        ),
    ),
    "e14": (
        "§2.1 remark — local ΘALG vs global sparsification",
        lambda: aexp.e14_local_vs_global(rng=0),
        lambda: aexp.e14_local_vs_global(ns=(64,), rng=0),
    ),
    "e15": (
        "§2 open problem — worst distance-stretch probe",
        lambda: aexp.e15_spanner_probe(rng=0),
        lambda: aexp.e15_spanner_probe(n=64, thetas=(math.pi / 9,), trials=2, rng=0),
    ),
    "e16": (
        "§1 motivation — routing under mobility churn",
        lambda: mexp.e16_mobility_churn(rng=0),
        lambda: mexp.e16_mobility_churn(n=30, speeds=(0.0, 0.01), steps=200, rng=0),
    ),
    "e17": (
        "§1.2 context — greedy geographic routing vs sparsity",
        lambda: gexp.e17_geographic_routing(rng=0),
        lambda: gexp.e17_geographic_routing(n=80, n_pairs=80, rng=0),
    ),
    "e18": (
        "extension — anycast balancing vs fixed-member unicast",
        lambda: axp.e18_anycast(rng=0),
        lambda: axp.e18_anycast(n=50, group_sizes=(1, 4), duration=200, rng=0),
    ),
    "e19": (
        "§2.1 closing remark — slot cost of the 3 rounds under interference",
        lambda: _e19_rows(ns=(64, 128, 256)),
        lambda: _e19_rows(ns=(48,)),
    ),
    "e20": (
        "§1.2 AQT lineage — stability under (w, ρ)-bounded adversaries",
        lambda: _e20_rows(durations=(200, 400)),
        lambda: _e20_rows(durations=(150,)),
    ),
    "e21": (
        "Theorem 3.1's δ parameter — throughput vs per-node concurrency",
        lambda: rexp.e21_frequency_sweep(rng=0),
        lambda: rexp.e21_frequency_sweep(deltas=(1, 2), duration=200, rng=0),
    ),
    "e22": (
        "failure injection — the protocol under message loss",
        lambda: _e22_rows(n=100),
        lambda: _e22_rows(n=40),
    ),
}


def _e22_rows(n: int) -> list[dict]:
    from repro.geometry.pointsets import uniform_points
    from repro.graphs.transmission import max_range_for_connectivity
    from repro.localsim.lossy import lossy_protocol_run

    pts = uniform_points(n, rng=5)
    d = max_range_for_connectivity(pts, slack=1.4)
    rows = []
    for loss in (0.0, 0.2, 0.5):
        for retries in (0, 4):
            _, rep = lossy_protocol_run(
                pts, math.pi / 9, d, loss_prob=loss, retries=retries, rng=9
            )
            rows.append({"loss_prob": loss, "retries": retries, **rep.as_dict()})
    return rows


def _e20_rows(durations) -> list[dict]:
    from repro.analysis.routing_experiments import grid_graph
    from repro.core.balancing import BalancingConfig, BalancingRouter
    from repro.sim.aqt import bounded_adversary_scenario, max_window_load
    from repro.sim.engine import SimulationEngine

    rows = []
    g = grid_graph(5)
    for rho in (0.25, 0.5, 0.75):
        for duration in durations:
            scenario = bounded_adversary_scenario(
                g, rho=rho, window=8, duration=duration, rng=0
            )
            router = BalancingRouter(
                g.n_nodes,
                scenario.destinations,
                BalancingConfig(threshold=1.0, gamma=0.0, max_height=100_000),
            )
            SimulationEngine.for_scenario(router, scenario).run(scenario.duration)
            rows.append(
                {
                    "rho": rho,
                    "duration": duration,
                    "window_load": round(max_window_load(scenario, 8), 3),
                    "max_buffer_height": router.stats.max_buffer_height,
                    "delivered": router.stats.delivered,
                }
            )
    return rows


def _e19_rows(ns) -> list[dict]:
    from repro.geometry.pointsets import civilized_points, uniform_points
    from repro.graphs.transmission import max_range_for_connectivity
    from repro.localsim.timed import timed_protocol_cost
    from repro.utils.rng import spawn_rngs

    rows = []
    for dist_name, maker in (
        ("uniform", lambda n, r: uniform_points(n, rng=r)),
        ("civilized", lambda n, r: civilized_points(n, lam=0.5, rng=r)),
    ):
        for n, child in zip(ns, spawn_rngs(0, len(ns))):
            pts = maker(n, child)
            d = max_range_for_connectivity(pts, slack=1.3)
            rep = timed_protocol_cost(pts, math.pi / 9, d, delta=0.5)
            rows.append({"distribution": dist_name, "n": n, **rep.as_dict()})
    return rows


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper-reproduction experiment tables.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e12), 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down parameters (seconds, not minutes)"
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (desc, _, _) in EXPERIMENTS.items():
            print(f"{key:4s} {desc}")
        return 0

    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment.lower()]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; try 'list'", file=sys.stderr)
        return 2

    for key in keys:
        desc, full, quick = EXPERIMENTS[key]
        t0 = time.perf_counter()
        rows = (quick if args.quick else full)()
        elapsed = time.perf_counter() - t0
        print(tables.render_table(rows, title=f"{key.upper()}: {desc}"))
        print(f"[{key} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
