"""Typed topology-change events and seeded churn-trace generators.

The paper's locality argument (§1, §2.1) is about *change*: each node
builds its ΘALG neighborhood from information within transmission
range, so a topology event — a node joining, leaving, moving, or
crashing — should only ever require repair inside a bounded disk
around it.  This module defines the event vocabulary that the
incremental maintainer (:mod:`repro.dynamic.incremental`) consumes:

* :class:`NodeJoin` — a new node appears at a position (or a departed
  slot is re-populated);
* :class:`NodeLeave` — a node departs permanently;
* :class:`NodeMove` — a live node changes position (mobility);
* :class:`FailStop` — a node crashes: it vanishes from the topology
  and loses every packet buffered at it, but keeps its identity and
  position so it may :class:`Recover` later;
* :class:`Recover` — a previously failed node comes back up (with
  empty buffers).

An :class:`EventTrace` is a time-ordered sequence of ``(step, event)``
pairs with a versioned JSON form, so a churn workload can be saved
next to experiment outputs and replayed bit-for-bit
(:func:`repro.sim.scenario_io.save_event_trace`).

All generators take the usual ``rng`` argument (seed, generator, or
``None``) and are deterministic for a fixed seed, mirroring the
adversary/scenario plumbing in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.rng import as_rng
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "NodeJoin",
    "NodeLeave",
    "NodeMove",
    "FailStop",
    "Recover",
    "Event",
    "EventTrace",
    "LiveEventSchedule",
    "event_to_dict",
    "event_from_dict",
    "event_trace_to_dict",
    "event_trace_from_dict",
    "poisson_churn_trace",
    "failstop_trace",
    "mobility_trace",
    "random_event_trace",
    "merge_traces",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class NodeJoin:
    """Node ``node`` appears at position ``(x, y)``.

    ``node`` must be either the next unused id (the network grows) or
    the id of a departed/failed node (the slot is re-populated at a new
    position).
    """

    node: int
    x: float
    y: float


@dataclass(frozen=True)
class NodeLeave:
    """Node ``node`` departs gracefully and permanently."""

    node: int


@dataclass(frozen=True)
class NodeMove:
    """Node ``node`` moves to ``(x, y)``.

    Moving a *failed* node is legal — a crashed device still moves
    physically — and only updates the position it will
    :class:`Recover` at.  Moving a departed node is an error.
    """

    node: int
    x: float
    y: float


@dataclass(frozen=True)
class FailStop:
    """Node ``node`` crashes: topology edges and buffered packets are
    lost, identity and position are retained for a later recovery."""

    node: int


@dataclass(frozen=True)
class Recover:
    """Previously failed node ``node`` comes back up in place."""

    node: int


Event = Union[NodeJoin, NodeLeave, NodeMove, FailStop, Recover]

#: wire-format tag per event class (stable across releases).
_KIND = {NodeJoin: "join", NodeLeave: "leave", NodeMove: "move", FailStop: "fail", Recover: "recover"}
_BY_KIND = {v: k for k, v in _KIND.items()}


def event_kind(event: Event) -> str:
    """The wire-format tag (``join``/``leave``/``move``/``fail``/``recover``)."""
    try:
        return _KIND[type(event)]
    except KeyError:
        raise TypeError(f"{type(event).__name__} is not a topology event") from None


class EventTrace:
    """A time-ordered sequence of ``(step, event)`` pairs.

    Parameters
    ----------
    items:
        Iterable of ``(t, event)`` with integer ``t >= 0``.  Stored
        sorted by ``t`` (stable, so same-step events keep their
        relative order — the order they are applied in).
    horizon:
        Number of steps the trace spans; defaults to ``max(t) + 1``.
    """

    def __init__(self, items: "Iterable[tuple[int, Event]]", *, horizon: "int | None" = None) -> None:
        pairs = [(int(t), ev) for t, ev in items]
        for t, ev in pairs:
            if t < 0:
                raise ValueError(f"event time must be >= 0, got {t}")
            event_kind(ev)  # type-check
        pairs.sort(key=lambda p: p[0])
        self._pairs: "tuple[tuple[int, Event], ...]" = tuple(pairs)
        inferred = (self._pairs[-1][0] + 1) if self._pairs else 0
        self.horizon = int(horizon) if horizon is not None else inferred
        if self.horizon < inferred:
            raise ValueError(f"horizon {self.horizon} smaller than last event time {inferred - 1}")
        self._by_time: "dict[int, list[Event]]" = {}
        for t, ev in self._pairs:
            self._by_time.setdefault(t, []).append(ev)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> "Iterator[tuple[int, Event]]":
        return iter(self._pairs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EventTrace)
            and self._pairs == other._pairs
            and self.horizon == other.horizon
        )

    def at(self, t: int) -> "list[Event]":
        """Events scheduled for step ``t`` (application order)."""
        return list(self._by_time.get(int(t), ()))

    def events(self) -> "list[Event]":
        """All events, time-ordered, without their timestamps."""
        return [ev for _, ev in self._pairs]

    def counts(self) -> "dict[str, int]":
        """Event count per kind tag (for tables and sanity checks)."""
        out: "dict[str, int]" = {}
        for _, ev in self._pairs:
            k = event_kind(ev)
            out[k] = out.get(k, 0) + 1
        return out


def event_to_dict(event: Event) -> dict:
    """One event as its wire-format row (no timestamp)."""
    row: "dict[str, object]" = {"kind": event_kind(event), "node": int(event.node)}
    if isinstance(event, (NodeJoin, NodeMove)):
        row["pos"] = [float(event.x), float(event.y)]
    return row


def event_from_dict(row: dict) -> Event:
    """Inverse of :func:`event_to_dict` (also used by the service API)."""
    cls = _BY_KIND.get(row.get("kind"))
    if cls is None:
        raise ValueError(f"unknown event kind: {row.get('kind')!r}")
    node = int(row["node"])
    if cls in (NodeJoin, NodeMove):
        try:
            x, y = row["pos"]
        except (KeyError, TypeError, ValueError):
            raise ValueError(f"{row.get('kind')} event needs pos: [x, y]") from None
        return cls(node, float(x), float(y))
    return cls(node)


def event_trace_to_dict(trace: EventTrace) -> dict:
    """Plain-JSON-types representation of a trace (versioned)."""
    rows = [{"t": t, **event_to_dict(ev)} for t, ev in trace]
    return {"format_version": _FORMAT_VERSION, "horizon": trace.horizon, "events": rows}


def event_trace_from_dict(data: dict) -> EventTrace:
    """Inverse of :func:`event_trace_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported event-trace format version: {version!r}")
    items = [(int(row["t"]), event_from_dict(row)) for row in data["events"]]
    return EventTrace(items, horizon=int(data["horizon"]))


class LiveEventSchedule:
    """An append-while-running event schedule for long-lived sessions.

    :class:`EventTrace` is frozen at construction — right for batch
    replays, wrong for a session server whose clients inject churn
    while the engine runs.  This class exposes the two methods
    :class:`repro.dynamic.incremental.DynamicTopology` actually reads
    (iteration at construction, :meth:`at` per step) over a mutable
    store, plus :meth:`append` for live injection and :meth:`to_trace`
    to freeze everything seen so far into a replayable
    :class:`EventTrace` (the ``--events-in`` path of
    ``python -m repro dynamic``).

    The caller is responsible for only appending at step indices the
    engine has not consumed yet (the service session holds its lock
    across both stepping and injection, and schedules at the engine's
    next step).
    """

    def __init__(self, items: "Iterable[tuple[int, Event]]" = ()) -> None:
        self._pairs: "list[tuple[int, Event]]" = []
        self._by_time: "dict[int, list[Event]]" = {}
        self.horizon = 0
        for t, ev in items:
            self.append(t, ev)

    def append(self, t: int, event: Event) -> None:
        """Schedule ``event`` for step ``t`` (after anything already there)."""
        t = int(t)
        if t < 0:
            raise ValueError(f"event time must be >= 0, got {t}")
        event_kind(event)  # type-check
        self._pairs.append((t, event))
        self._by_time.setdefault(t, []).append(event)
        if t + 1 > self.horizon:
            self.horizon = t + 1

    def at(self, t: int) -> "list[Event]":
        """Events scheduled for step ``t`` (application order)."""
        return list(self._by_time.get(int(t), ()))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> "Iterator[tuple[int, Event]]":
        return iter(sorted(self._pairs, key=lambda p: p[0]))

    def counts(self) -> "dict[str, int]":
        """Event count per kind tag (mirrors :meth:`EventTrace.counts`)."""
        out: "dict[str, int]" = {}
        for _, ev in self._pairs:
            k = event_kind(ev)
            out[k] = out.get(k, 0) + 1
        return out

    def to_trace(self, *, horizon: "int | None" = None) -> EventTrace:
        """Freeze the appended events into a replayable :class:`EventTrace`."""
        h = self.horizon if horizon is None else max(int(horizon), self.horizon)
        return EventTrace(self._pairs, horizon=h)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def poisson_churn_trace(
    n0: int,
    steps: int,
    *,
    arrival_rate: float,
    departure_rate: float,
    side: float = 1.0,
    min_alive: int = 2,
    rng=None,
) -> EventTrace:
    """Poisson arrivals/departures: the classic open-network churn model.

    Each step draws ``Poisson(arrival_rate)`` joins (fresh ids, uniform
    positions in ``[0, side]²``) and ``Poisson(departure_rate)``
    permanent leaves of uniformly chosen live nodes, never dropping the
    population below ``min_alive``.
    """
    check_nonnegative("arrival_rate", arrival_rate)
    check_nonnegative("departure_rate", departure_rate)
    check_positive("side", side)
    gen = as_rng(rng)
    alive = list(range(int(n0)))
    next_id = int(n0)
    items: "list[tuple[int, Event]]" = []
    for t in range(int(steps)):
        for _ in range(int(gen.poisson(arrival_rate))):
            x, y = gen.uniform(0.0, side, size=2)
            items.append((t, NodeJoin(next_id, float(x), float(y))))
            alive.append(next_id)
            next_id += 1
        for _ in range(int(gen.poisson(departure_rate))):
            if len(alive) <= min_alive:
                break
            victim = alive.pop(int(gen.integers(len(alive))))
            items.append((t, NodeLeave(victim)))
    return EventTrace(items, horizon=int(steps))


def failstop_trace(
    n0: int,
    steps: int,
    *,
    fail_rate: float,
    mean_downtime: float = 10.0,
    min_alive: int = 2,
    rng=None,
) -> EventTrace:
    """Fail-stop crashes with exponentially distributed recovery.

    Each step, ``Poisson(fail_rate)`` currently-up nodes crash; each
    crashed node schedules its :class:`Recover` ``1 +
    Exponential(mean_downtime)`` steps later.  Recoveries landing past
    the horizon are dropped (the node stays down at trace end).
    """
    check_nonnegative("fail_rate", fail_rate)
    check_positive("mean_downtime", mean_downtime)
    gen = as_rng(rng)
    up = list(range(int(n0)))
    recover_at: "dict[int, list[int]]" = {}
    items: "list[tuple[int, Event]]" = []
    for t in range(int(steps)):
        for node in recover_at.pop(t, ()):
            items.append((t, Recover(node)))
            up.append(node)
        for _ in range(int(gen.poisson(fail_rate))):
            if len(up) <= min_alive:
                break
            victim = up.pop(int(gen.integers(len(up))))
            items.append((t, FailStop(victim)))
            back = t + 1 + int(gen.exponential(mean_downtime))
            if back < steps:
                recover_at.setdefault(back, []).append(victim)
    return EventTrace(items, horizon=int(steps))


def mobility_trace(mobility, steps: int, *, every: int = 1) -> EventTrace:
    """Move batches driven by a :mod:`repro.sim.mobility` model.

    Advances ``mobility`` once per step and, every ``every`` steps,
    emits one :class:`NodeMove` per node that actually changed position
    since the last emitted batch — the event-stream equivalent of the
    engine's old rebuild-every-step loop.
    """
    check_positive("every", every)
    last = as_points(mobility.positions(0)).copy()
    items: "list[tuple[int, Event]]" = []
    for t in range(int(steps)):
        cur = as_points(mobility.advance())
        if (t + 1) % every:
            continue
        moved = np.nonzero(np.any(cur != last, axis=1))[0]
        for i in moved.tolist():
            items.append((t, NodeMove(int(i), float(cur[i, 0]), float(cur[i, 1]))))
        last = cur.copy()
    return EventTrace(items, horizon=int(steps))


def random_event_trace(
    points: np.ndarray,
    n_events: int,
    *,
    side: float = 1.0,
    move_sigma: "float | None" = None,
    weights: "dict[str, float] | None" = None,
    min_alive: int = 3,
    rng=None,
) -> EventTrace:
    """A mixed random trace interleaving every event kind (one per step).

    The workhorse of the E23 experiment and the equivalence property
    tests: starting from ``points``, each of the ``n_events`` steps
    draws one event kind from ``weights`` (default: moves 40%, the
    other four kinds 15% each), tracks the live/failed population so
    every emitted event is valid, and keeps at least ``min_alive``
    nodes up.  Moves are Gaussian jitter of scale ``move_sigma``
    (default ``side / 20``) reflected into the domain; joins are
    uniform in ``[0, side]²``.
    """
    pts = as_points(points)
    check_positive("side", side)
    gen = as_rng(rng)
    sigma = float(move_sigma) if move_sigma is not None else side / 20.0
    w = {"join": 0.15, "leave": 0.15, "move": 0.40, "fail": 0.15, "recover": 0.15}
    if weights:
        unknown = set(weights) - set(w)
        if unknown:
            raise ValueError(f"unknown event kinds in weights: {sorted(unknown)}")
        w.update(weights)
    kinds = sorted(w)
    p = np.asarray([w[k] for k in kinds], dtype=np.float64)
    if p.sum() <= 0:
        raise ValueError("event weights must not all be zero")
    p = p / p.sum()

    pos = {i: (float(x), float(y)) for i, (x, y) in enumerate(pts)}
    alive = list(range(len(pts)))
    failed: "list[int]" = []
    next_id = len(pts)
    items: "list[tuple[int, Event]]" = []
    for t in range(int(n_events)):
        kind = kinds[int(gen.choice(len(kinds), p=p))]
        if kind in ("leave", "fail") and len(alive) <= min_alive:
            kind = "join"
        if kind == "recover" and not failed:
            kind = "move"
        if kind == "join":
            x, y = (float(v) for v in gen.uniform(0.0, side, size=2))
            items.append((t, NodeJoin(next_id, x, y)))
            pos[next_id] = (x, y)
            alive.append(next_id)
            next_id += 1
        elif kind == "leave":
            victim = alive.pop(int(gen.integers(len(alive))))
            items.append((t, NodeLeave(victim)))
        elif kind == "fail":
            victim = alive.pop(int(gen.integers(len(alive))))
            items.append((t, FailStop(victim)))
            failed.append(victim)
        elif kind == "recover":
            node = failed.pop(int(gen.integers(len(failed))))
            items.append((t, Recover(node)))
            alive.append(node)
        else:  # move
            node = alive[int(gen.integers(len(alive)))]
            x0, y0 = pos[node]
            x = _reflect_scalar(x0 + float(gen.normal(0.0, sigma)), side)
            y = _reflect_scalar(y0 + float(gen.normal(0.0, sigma)), side)
            pos[node] = (x, y)
            items.append((t, NodeMove(node, x, y)))
    return EventTrace(items, horizon=int(n_events))


def merge_traces(*traces: EventTrace) -> EventTrace:
    """Interleave several traces into one (stable per-step ordering).

    Same-step events keep trace-argument order, so e.g. a mobility
    trace merged after a churn trace applies its moves after that
    step's joins/leaves.  The caller is responsible for the merged
    stream being consistent (no two traces claiming the same node id).
    """
    items: "list[tuple[int, Event]]" = []
    for tr in traces:
        items.extend(tr)
    horizon = max((tr.horizon for tr in traces), default=0)
    items.sort(key=lambda pair: pair[0])
    return EventTrace(items, horizon=horizon)


def _reflect_scalar(v: float, side: float) -> float:
    """Reflect a coordinate into ``[0, side]`` (single bounce pair)."""
    v = v % (2.0 * side)
    return 2.0 * side - v if v > side else v
