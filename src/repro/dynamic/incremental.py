"""Incremental ΘALG maintenance under topology events.

The locality claim made concrete (E23): because every ΘALG decision of
a node depends only on nodes within transmission range D, a topology
event at position *p* can only change

* phase-1 (Yao) choices of live nodes within D of *p* — the **dirty
  set** A; and
* phase-2 (in-degree pruning) outcomes at receivers whose incoming
  Yao-edge multiset changed, or whose distance to an in-neighbor
  changed — every such receiver is a (current or former) Yao target of
  some node in A, hence within 2D of *p*.

:class:`IncrementalTheta` maintains the exact ΘALG output under
:mod:`repro.dynamic.events` streams by re-running both phases on that
bounded region only.  It replicates the vectorized kernels'
arithmetic bit-for-bit — same subtraction orientation, same
``np.hypot``/``np.arctan2`` expressions, same in-range epsilon
(``d² ≤ D² + 1e-12``), same (distance, node-id) tie-breaking — so the
maintained topology is **edge-for-edge identical** to
:func:`repro.core.theta.theta_algorithm` recomputed from scratch on
the live node set after every event (asserted by
:meth:`IncrementalTheta.check_full_equivalence` and the property tests
in ``tests/test_dynamic_incremental.py``).

:class:`DynamicTopology` packages a maintainer with an
:class:`~repro.dynamic.events.EventTrace` for consumption by
:class:`repro.sim.engine.SimulationEngine`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.theta import theta_algorithm
from repro.dynamic.events import (
    Event,
    EventTrace,
    FailStop,
    NodeJoin,
    NodeLeave,
    NodeMove,
    Recover,
    event_kind,
)
from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.geometry.spatialindex import DynamicGridIndex
from repro.obs import trace
from repro.utils.arrays import run_starts

__all__ = ["RepairStats", "IncrementalTheta", "DynamicTopology", "StepChurn"]


@dataclass(frozen=True)
class RepairStats:
    """Per-event repair accounting (the E23 measurands).

    Attributes
    ----------
    kind:
        Event kind tag (``join``/``leave``/``move``/``fail``/``recover``,
        or ``batch`` for a merged-region batch repair).
    node:
        The event's node id (-1 for a batch).
    update_radius:
        Largest distance from an event anchor to any touched node
        (0 when nothing was touched).  Bounded by 2D by construction.
    nodes_touched:
        Number of distinct nodes whose phase-1 or phase-2 state was
        recomputed (the dirty set plus re-pruned receivers).
    edges_flipped:
        Undirected topology edges added plus removed by this event,
        counting transient flips (an edge dropped and re-added during
        one repair counts twice).
    wall_time:
        Repair wall-clock seconds (``time.perf_counter`` based).
    edges_added / edges_removed:
        The *net* changelog: undirected global-id edges present after
        the repair but not before (and vice versa), sorted.  Transient
        flips cancel out.  This is what
        :class:`repro.dynamic.interference.DynamicInterference` consumes
        to repair conflict rows.
    """

    kind: str
    node: int
    update_radius: float
    nodes_touched: int
    edges_flipped: int
    wall_time: float
    edges_added: "tuple[tuple[int, int], ...]" = ()
    edges_removed: "tuple[tuple[int, int], ...]" = ()


class IncrementalTheta:
    """Maintain the exact ΘALG topology under join/leave/move/fail events.

    Parameters mirror :func:`repro.core.theta.theta_algorithm`; the
    initial state is seeded from one full vectorized run.  Node ids are
    *global and stable*: survivors keep their id across events, joins
    take fresh ids (or re-populate a departed slot), and all reported
    edges are in global-id space.

    State kept per live node ``u``:

    * ``_out[u]``: ``{sector → target}`` — u's phase-1 Yao choices;
    * ``_in[x]``: ``{sources w with x ∈ N(w)}`` — reverse index;
    * ``_admit[x]``: ``{sector → admitted source}`` — phase-2 result;
    * ``_edge_dirs[(lo, hi)]``: 1 or 2 — how many of the two directed
      choices of undirected edge ``{lo, hi}`` survived pruning.
    """

    def __init__(
        self,
        points: np.ndarray,
        theta: float,
        max_range: float,
        *,
        kappa: float = 2.0,
        offset: float = 0.0,
    ) -> None:
        pts = as_points(points)
        self.theta = float(theta)
        self.max_range = float(max_range)
        self.kappa = float(kappa)
        self.offset = float(offset)
        self._part = SectorPartition(self.theta, self.offset)
        self._index = DynamicGridIndex(pts, cell=self.max_range)
        self._failed: "set[int]" = set()
        #: Bumped after every state-changing event (or batch); lets
        #: consumers (snapshot cache, DynamicInterference, the harness
        #: substrate cache) key derived structures by topology state.
        self.topology_version = 0
        self._snapshot: "object | None" = None
        self._snapshot_version = -1

        topo = theta_algorithm(pts, self.theta, self.max_range, kappa=self.kappa, offset=self.offset)
        self._out: "dict[int, dict[int, int]]" = {}
        self._in: "dict[int, set[int]]" = {}
        for (u, sec), v in topo.yao_nearest.items():
            self._out.setdefault(u, {})[sec] = v
            self._in.setdefault(v, set()).add(u)
        self._admit: "dict[int, dict[int, int]]" = {}
        self._edge_dirs: "dict[tuple[int, int], int]" = {}
        for (x, sec), w in topo.admitted.items():
            self._admit.setdefault(x, {})[sec] = w
            key = (w, x) if w < x else (x, w)
            self._edge_dirs[key] = self._edge_dirs.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_alive(self) -> int:
        return len(self._index)

    @property
    def size(self) -> int:
        """One past the highest node id ever seen (live or not)."""
        return self._index.size

    def alive_ids(self) -> np.ndarray:
        """Sorted global ids of live nodes."""
        return self._index.alive_ids()

    def failed_ids(self) -> "set[int]":
        """Ids currently down due to :class:`FailStop` (may recover)."""
        return set(self._failed)

    def live_points(self) -> np.ndarray:
        """Live node positions in :meth:`alive_ids` order."""
        return self._index.live_points()

    def position(self, node: int) -> np.ndarray:
        return self._index.position(node)

    def position_array(self, ids: np.ndarray) -> np.ndarray:
        """Positions for an array of global ids (vectorized)."""
        return self._index.positions_of(ids)

    def edge_set(self) -> "set[tuple[int, int]]":
        """The maintained topology N as undirected global-id pairs."""
        return set(self._edge_dirs)

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` sorted intp array of the undirected edges."""
        if not self._edge_dirs:
            return np.empty((0, 2), dtype=np.intp)
        edges = np.array(sorted(self._edge_dirs), dtype=np.intp)
        return edges

    def all_positions(self) -> np.ndarray:
        """Positions of every id ever seen (read-only view, mutates)."""
        return self._index.all_positions()

    def snapshot_graph(self):
        """The maintained topology as an immutable :class:`GeometricGraph`.

        Node ids are global (dead slots keep their retained position and
        simply have no incident edges), so edge indices of derived
        structures — e.g. ``interference_sets`` rows — line up with
        :meth:`edge_array`.  The snapshot is cached per
        :attr:`topology_version` and carries that version as a
        ``topology_version`` attribute, which
        :func:`repro.harness.cache.cached_interference_sets` uses to key
        conflict structures without re-digesting the coordinates.
        """
        from repro.graphs.base import GeometricGraph

        v = self.topology_version
        if self._snapshot is not None and self._snapshot_version == v:
            return self._snapshot
        g = GeometricGraph(
            self._index.all_positions().copy(), self.edge_array(), kappa=self.kappa
        )
        g.topology_version = v
        self._snapshot, self._snapshot_version = g, v
        return g

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: Event) -> RepairStats:
        """Apply one event and locally repair the topology."""
        kind = event_kind(event)
        with trace.span("dynamic.apply_event", kind=kind, node=event.node):
            t0 = time.perf_counter()
            node = int(event.node)
            ctx = self._mutate(event)
            if ctx is None:
                # Dead-slot move: position bookkeeping only, no repair.
                return RepairStats(
                    kind=kind,
                    node=node,
                    update_radius=0.0,
                    nodes_touched=0,
                    edges_flipped=0,
                    wall_time=time.perf_counter() - t0,
                )
            stats = self._repair_batch([ctx], kind=kind, node=node)
            self.topology_version += 1
            return RepairStats(
                kind=stats.kind,
                node=stats.node,
                update_radius=stats.update_radius,
                nodes_touched=stats.nodes_touched,
                edges_flipped=stats.edges_flipped,
                wall_time=time.perf_counter() - t0,
                edges_added=stats.edges_added,
                edges_removed=stats.edges_removed,
            )

    def apply_trace(self, events: "EventTrace | list[Event]") -> "list[RepairStats]":
        """Apply a whole trace (or event list) in order."""
        seq = events.events() if isinstance(events, EventTrace) else list(events)
        return [self.apply(ev) for ev in seq]

    def apply_batch(self, events: "list[Event]") -> RepairStats:
        """Apply several events as *one* merged-region repair.

        Index mutations run serially in trace order; both ΘALG phases
        then run once over the union of the events' dirty regions, so
        nodes inside overlapping dirty disks are recomputed once instead
        of once per event.  The final topology is identical to serial
        :meth:`apply` of the same events (the repair re-establishes the
        exact ΘALG of the final live positions; property-tested in
        ``tests/test_dynamic_batching.py``).

        For grouping a step's events into *independent* batches and
        applying them concurrently, see
        :func:`repro.dynamic.batching.apply_events_parallel`.
        """
        t0 = time.perf_counter()
        contexts = [self._mutate(ev) for ev in events]
        contexts = [c for c in contexts if c is not None]
        if not contexts:
            return RepairStats(
                kind="batch",
                node=-1,
                update_radius=0.0,
                nodes_touched=0,
                edges_flipped=0,
                wall_time=time.perf_counter() - t0,
            )
        stats = self._repair_batch(contexts, kind="batch", node=-1)
        self.topology_version += 1
        return RepairStats(
            kind=stats.kind,
            node=stats.node,
            update_radius=stats.update_radius,
            nodes_touched=stats.nodes_touched,
            edges_flipped=stats.edges_flipped,
            wall_time=time.perf_counter() - t0,
            edges_added=stats.edges_added,
            edges_removed=stats.edges_removed,
        )

    # ------------------------------------------------------------------
    # Repair machinery
    # ------------------------------------------------------------------
    def _mutate(self, event: Event) -> "tuple[str, int, list[np.ndarray]] | None":
        """Apply ``event``'s index/bookkeeping mutation, *without* repair.

        Returns the repair context ``(kind, node, anchors)``, or ``None``
        for a move of a failed node (position bookkeeping only).  The
        batching layer applies every mutation of a step serially in
        trace order — join ids must appear in order and the grid index
        is not safe for concurrent mutation — before repairing groups.
        """
        kind = event_kind(event)
        node = int(event.node)
        if isinstance(event, NodeJoin):
            if node in self._failed:
                raise ValueError(f"node {node} is failed; use Recover, not NodeJoin")
            p = np.array([event.x, event.y], dtype=np.float64)
            self._index.insert(node, p)
            return kind, node, [p]
        if isinstance(event, NodeMove):
            if node in self._failed:
                # A crashed device still moves physically: update the
                # retained position (where Recover brings it back up)
                # without touching the topology.
                p = np.array([event.x, event.y], dtype=np.float64)
                self._index.set_dead_position(node, p)
                return None
            if not self._index.is_alive(node):
                raise ValueError(f"cannot move node {node}: not alive")
            old_p = self._index.position(node)
            p = np.array([event.x, event.y], dtype=np.float64)
            self._index.move(node, p)
            return kind, node, [old_p, p]
        if isinstance(event, (NodeLeave, FailStop)):
            if not self._index.is_alive(node):
                raise ValueError(f"cannot remove node {node}: not alive")
            p = self._index.position(node)
            self._index.remove(node)
            if isinstance(event, FailStop):
                self._failed.add(node)
            return kind, node, [p]
        if isinstance(event, Recover):
            if node not in self._failed:
                raise ValueError(f"cannot recover node {node}: not failed")
            self._failed.discard(node)
            p = self._index.position(node)
            self._index.insert(node, p)
            return kind, node, [p]
        raise TypeError(f"unsupported event: {event!r}")  # pragma: no cover

    def _repair_batch(
        self,
        contexts: "list[tuple[str, int, list[np.ndarray]]]",
        *,
        kind: str,
        node: int,
        collect_diff: bool = False,
    ):
        """Re-run both ΘALG phases on the union of dirty regions.

        ``contexts`` are the ``(kind, node, anchors)`` tuples of already
        *mutated* events.  With a single context this reproduces the
        serial per-event repair exactly; with several it repairs the
        merged region once.  Correctness rests on the repair invariant:
        afterwards the maintained state equals the from-scratch ΘALG of
        the current live positions on the touched region, whatever
        sequence of mutations produced those positions.

        With ``collect_diff=True`` returns ``(stats, diff)`` where
        ``diff`` is a compact state delta replayable on an in-sync
        replica via :meth:`apply_repair_diff`.  Diff entries are
        recorded in repair order (dict insertion order survives pickling),
        so a replay produces the exact same transition sequence.
        """
        with trace.span("dynamic.repair", kind=kind, node=node):
            D = self.max_range
            anchors: "list[np.ndarray]" = []
            event_nodes: "list[int]" = []
            seen: "set[int]" = set()
            for _, nd, anchs in contexts:
                anchors.extend(anchs)
                if nd not in seen:
                    seen.add(nd)
                    event_nodes.append(nd)

            # Phase-1 dirty set A: live nodes whose candidate neighborhood
            # intersects a disk of radius D around an anchor.
            dirty: "set[int]" = set()
            for p in anchors:
                dirty.update(self._index.query_radius(p, D).tolist())
            alive_nodes = [nd for nd in event_nodes if self._index.is_alive(nd)]
            dead_nodes = [nd for nd in event_nodes if not self._index.is_alive(nd)]
            dirty.update(alive_nodes)

            receivers: "set[int]" = set()
            flipped = 0
            log: "dict[tuple[int, int], int]" = {}
            out_diff: "dict[int, dict[int, int] | None]" = {}
            admit_diff: "dict[int, dict[int, int] | None]" = {}
            # Targets of surviving event nodes *before* any recompute:
            # their distances to even unchanged targets may have shifted
            # (moves — including a leave/re-join at a new position inside
            # one batch), so every old/new target must re-prune.
            pre_targets = {nd: set(self._out.get(nd, {}).values()) for nd in alive_nodes}
            receivers.update(alive_nodes)
            for nd in dead_nodes:
                if nd in self._out:
                    # Departed node: retract its Yao choices; each former
                    # target loses an in-edge and must re-prune.
                    out_diff[nd] = None
                    for v in self._out.pop(nd).values():
                        self._in[v].discard(nd)
                        receivers.add(v)

            for u in sorted(dirty):
                new_choices = self._yao_choices(u)
                old_choices = self._out.get(u, {})
                if new_choices != old_choices:
                    # Diff by *target set*, not per sector: a target that
                    # merely switched cones of u (possible only when u or
                    # the target moved) keeps its in-edge, and the mover
                    # is already in ``receivers``.
                    if collect_diff:
                        out_diff[u] = new_choices if new_choices else None
                    old_targets = set(old_choices.values())
                    new_targets = set(new_choices.values())
                    for v in old_targets - new_targets:
                        if v in self._in:
                            self._in[v].discard(u)
                        receivers.add(v)
                    for v in new_targets - old_targets:
                        self._in.setdefault(v, set()).add(u)
                        receivers.add(v)
                if new_choices:
                    self._out[u] = new_choices
                else:
                    self._out.pop(u, None)

            for nd in alive_nodes:
                receivers.update(pre_targets[nd])
                receivers.update(self._out.get(nd, {}).values())

            for nd in dead_nodes:
                # Retract the departed node's own admissions and in-set.
                old_admit = self._admit.pop(nd, None)
                if old_admit:
                    admit_diff[nd] = None
                    for w in old_admit.values():
                        flipped += self._drop_dir(w, nd, log)
                self._in.pop(nd, None)
                receivers.discard(nd)

            for x in sorted(receivers):
                if self._index.is_alive(x):
                    before = self._admit.get(x) if collect_diff else None
                    flipped += self._readmit(x, log)
                    if collect_diff:
                        after = self._admit.get(x)
                        if after != before:
                            admit_diff[x] = after

            touched = dirty | receivers | set(dead_nodes)
            radius = self._touched_radius(touched, anchors)
            stats = RepairStats(
                kind=kind,
                node=node,
                update_radius=radius,
                nodes_touched=len(touched),
                edges_flipped=flipped,
                wall_time=0.0,
                edges_added=tuple(k for k in sorted(log) if log[k] > 0),
                edges_removed=tuple(k for k in sorted(log) if log[k] < 0),
            )
            if collect_diff:
                return stats, {"out": out_diff, "admit": admit_diff, "dead": list(dead_nodes)}
            return stats

    def apply_repair_diff(self, diff: dict) -> None:
        """Splice a :meth:`_repair_batch` diff into an in-sync replica.

        The replica must hold the exact pre-repair state (same ``_out``,
        ``_admit``, ``_edge_dirs``) with the batch's index mutations
        already applied.  Replays the recorded transitions — deriving
        ``_in`` edits from out-diff target-set changes and
        ``_edge_dirs`` counts from admit-diff sector changes — without
        any geometry queries, so splicing a group's diff is O(diff), not
        O(dirty region).  Does *not* bump ``topology_version``; the
        caller bumps once per batch after splicing every group.
        """
        for u, new_choices in diff["out"].items():
            old_targets = set(self._out.get(u, {}).values())
            new_targets = set(new_choices.values()) if new_choices else set()
            for v in old_targets - new_targets:
                if v in self._in:
                    self._in[v].discard(u)
            for v in new_targets - old_targets:
                self._in.setdefault(v, set()).add(u)
            if new_choices:
                self._out[u] = dict(new_choices)
            else:
                self._out.pop(u, None)
        for x, new_admit in diff["admit"].items():
            old_admit = self._admit.get(x) or {}
            new = new_admit or {}
            for sec in set(old_admit) | set(new):
                ow, nw = old_admit.get(sec), new.get(sec)
                if ow == nw:
                    continue
                if ow is not None:
                    self._drop_dir(ow, x)
                if nw is not None:
                    self._add_dir(nw, x)
            if new:
                self._admit[x] = dict(new)
            else:
                self._admit.pop(x, None)
        for nd in diff["dead"]:
            self._in.pop(int(nd), None)

    def _touched_radius(self, touched: "set[int]", anchors: "list[np.ndarray]") -> float:
        """Max over touched nodes of the distance to the *nearest* anchor.

        Chunked and vectorized: merged batches can touch thousands of
        nodes against hundreds of anchors, where a per-node Python loop
        would dominate the repair itself.
        """
        if not touched or not anchors:
            return 0.0
        tarr = np.fromiter(touched, dtype=np.intp, count=len(touched))
        tpos = self._index.positions_of(tarr)
        aarr = np.asarray(anchors, dtype=np.float64)
        radius = 0.0
        for lo in range(0, len(tarr), 1024):
            blk = tpos[lo : lo + 1024]
            d = blk[:, None, :] - aarr[None, :, :]
            nearest = np.hypot(d[..., 0], d[..., 1]).min(axis=1)
            radius = max(radius, float(nearest.max()))
        return radius

    def _yao_choices(self, u: int) -> "dict[int, int]":
        """Phase 1 for one node: nearest in-range neighbor per cone.

        Bit-for-bit the arithmetic of :func:`repro.graphs.yao.yao_out_edges`
        restricted to source ``u``: ``d = pts[v] - pts[u]``,
        ``dist = np.hypot``, sector from ``arctan2`` mod 2π, candidates
        within ``D`` under the shared ``+1e-12`` epsilon, ties broken by
        (distance, target id) via the same lexsort.
        """
        if not self._index.is_alive(u):
            return {}
        pu = self._index.position(u)
        nbrs = self._index.query_radius(pu, self.max_range, exclude=u)
        if len(nbrs) == 0:
            return {}
        d = self._index.positions_of(nbrs) - pu
        dist = np.hypot(d[:, 0], d[:, 1])
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec = np.atleast_1d(self._part.index_of_angle(ang))
        order = np.lexsort((nbrs, dist, sec))
        sel = order[run_starts(sec[order])]
        return dict(zip(sec[sel].tolist(), nbrs[sel].tolist()))

    def _readmit(self, x: int, log: "dict[tuple[int, int], int] | None" = None) -> int:
        """Phase 2 for one receiver: re-prune its incoming Yao edges.

        Mirrors the phase-2 lexsort of :func:`theta_algorithm`: group
        in-neighbors by the cone of ``x`` containing them
        (``d = pts[w] - pts[x]``), admit the (distance, source id)
        minimum per cone.  Returns the number of undirected edges
        flipped (added + removed); net creations/deletions are counted
        into ``log`` when given (+1 created, -1 deleted, transients
        cancel).
        """
        sources = self._in.get(x)
        old = self._admit.get(x, {})
        if not sources:
            new: "dict[int, int]" = {}
        else:
            src = np.fromiter(sources, dtype=np.intp, count=len(sources))
            px = self._index.position(x)
            d = self._index.positions_of(src) - px
            ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
            sec_in = np.atleast_1d(self._part.index_of_angle(ang))
            dist = np.hypot(d[:, 0], d[:, 1])
            order = np.lexsort((src, dist, sec_in))
            sel = order[run_starts(sec_in[order])]
            new = dict(zip(sec_in[sel].tolist(), src[sel].tolist()))
        if new == old:
            return 0
        flipped = 0
        for sec in set(old) | set(new):
            ow, nw = old.get(sec), new.get(sec)
            if ow == nw:
                continue
            if ow is not None:
                flipped += self._drop_dir(ow, x, log)
            if nw is not None:
                flipped += self._add_dir(nw, x, log)
        if new:
            self._admit[x] = new
        else:
            self._admit.pop(x, None)
        return flipped

    def _add_dir(self, w: int, x: int, log: "dict[tuple[int, int], int] | None" = None) -> int:
        """Record that the directed choice w→x is admitted; 1 if the
        undirected edge {w, x} was created."""
        key = (w, x) if w < x else (x, w)
        c = self._edge_dirs.get(key, 0)
        self._edge_dirs[key] = c + 1
        if c == 0:
            if log is not None:
                bal = log.get(key, 0) + 1
                if bal:
                    log[key] = bal
                else:
                    del log[key]
            return 1
        return 0

    def _drop_dir(self, w: int, x: int, log: "dict[tuple[int, int], int] | None" = None) -> int:
        """Retract the admitted direction w→x; 1 if the undirected edge
        {w, x} disappeared."""
        key = (w, x) if w < x else (x, w)
        c = self._edge_dirs[key]
        if c == 1:
            del self._edge_dirs[key]
            if log is not None:
                bal = log.get(key, 0) - 1
                if bal:
                    log[key] = bal
                else:
                    del log[key]
            return 1
        self._edge_dirs[key] = c - 1
        return 0

    # ------------------------------------------------------------------
    # Correctness backstop
    # ------------------------------------------------------------------
    def check_full_equivalence(self) -> "set[tuple[int, int]]":
        """Symmetric difference vs. a from-scratch ΘALG on live nodes.

        Returns the empty set when the maintained topology is
        edge-for-edge identical to :func:`theta_algorithm` recomputed on
        the live node set (edges mapped back to global ids).  This is
        the E23 correctness backstop; tests assert it is empty after
        every event.
        """
        ids = self.alive_ids()
        if len(ids) < 2:
            return self.edge_set()
        topo = theta_algorithm(
            self.live_points(), self.theta, self.max_range, kappa=self.kappa, offset=self.offset
        )
        scratch = {
            (int(ids[a]), int(ids[b])) if ids[a] < ids[b] else (int(ids[b]), int(ids[a]))
            for a, b in topo.graph.edges
        }
        return scratch ^ self.edge_set()


@dataclass
class StepChurn:
    """What one engine step's worth of events did to the network."""

    events_applied: int = 0
    nodes_touched: int = 0
    edges_flipped: int = 0
    failed_nodes: "list[int]" = field(default_factory=list)
    removed_nodes: "list[int]" = field(default_factory=list)
    joined_nodes: "list[int]" = field(default_factory=list)
    repairs: "list[RepairStats]" = field(default_factory=list)
    #: Conflict rows recomputed / CSR entries spliced this step (0 when
    #: no DynamicInterference is attached).
    conflict_rows_touched: int = 0
    conflict_entries_changed: int = 0
    conflict_repairs: "list" = field(default_factory=list)
    #: Independent event groups this step's batch split into (0 when
    #: events were applied serially per event).
    batch_groups: int = 0
    #: State entries exchanged across process boundaries (process
    #: backend only; 0 in-process).
    halo_nodes: int = 0


class DynamicTopology:
    """An :class:`IncrementalTheta` driven by an event trace, for the engine.

    :meth:`step` applies every event scheduled at step ``t`` and reports
    a :class:`StepChurn` so :class:`repro.sim.engine.SimulationEngine`
    can drop buffers at failed nodes and account churn counters;
    :meth:`active_edges` exposes the maintained topology in global-id
    space (stable across events), matching a router sized to
    :attr:`capacity`.

    Parameters
    ----------
    interference:
        Optional :class:`repro.dynamic.interference.DynamicInterference`
        kept in lockstep with the topology: its conflict rows are
        repaired after every event (or batch) from the repair's net edge
        changelog.
    parallel / jobs / backend / workers:
        When ``parallel`` is true, each step's events are grouped by
        dirty-region overlap (:func:`repro.dynamic.batching.apply_events_parallel`)
        and independent groups are applied as merged-region batches.
        ``backend`` selects the execution path: ``None`` auto-selects
        serial/thread by group count, ``"serial"`` / ``"thread"`` force
        one, and ``"process"`` lazily builds a
        :class:`~repro.parallel.pool.TileWorkerPool` of ``workers``
        processes sized to :attr:`capacity` (call :meth:`close`, or use
        as a context manager, to stop it).  ``jobs`` keeps the legacy
        thread-count contract.
    capacity:
        Optional explicit node-id capacity (router sizing).  Defaults
        to the largest id mentioned by ``incremental`` or ``events`` —
        but a *live* schedule (:class:`repro.dynamic.events.LiveEventSchedule`)
        is empty at construction time, so sessions that accept joins
        while running pass the headroom they provisioned up front.
    """

    def __init__(
        self,
        incremental: IncrementalTheta,
        events: EventTrace,
        *,
        interference=None,
        parallel: bool = False,
        jobs: "int | None" = None,
        backend: "str | None" = None,
        workers: "int | None" = None,
        capacity: "int | None" = None,
    ) -> None:
        self.incremental = incremental
        self.events = events
        self.interference = interference
        self.parallel = bool(parallel)
        self.jobs = jobs if jobs is None else int(jobs)
        self.backend = backend
        self.workers = workers
        self.events_applied = 0
        self.nodes_touched_total = 0
        self.edges_flipped_total = 0
        self.conflict_rows_total = 0
        self.conflict_entries_total = 0
        self.batch_groups_total = 0
        self.halo_nodes_total = 0
        self.repairs: "list[RepairStats]" = []
        self._pool = None
        max_id = incremental.size - 1
        for _, ev in events:
            max_id = max(max_id, ev.node)
        #: Upper bound on node ids over the whole trace (router sizing).
        self.capacity = max_id + 1 if capacity is None else int(capacity)
        if self.capacity <= max_id:
            raise ValueError(
                f"capacity {self.capacity} cannot cover node id {max_id}"
            )

    def _process_pool(self):
        """The lazily-built TileWorkerPool of the process backend."""
        if self._pool is None:
            from repro.parallel.pool import TileWorkerPool

            self._pool = TileWorkerPool(
                self.incremental,
                self.interference,
                workers=self.workers,
                capacity=max(self.capacity, self.incremental.size) + 16,
            )
        return self._pool

    def close(self) -> None:
        """Stop the process pool, if one was started (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "DynamicTopology":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def step(self, t: int) -> StepChurn:
        """Apply the events scheduled for step ``t``."""
        churn = StepChurn()
        evs = list(self.events.at(t))
        if self.parallel and len(evs) > 1:
            from repro.dynamic.batching import apply_events_parallel

            pool = self._process_pool() if self.backend == "process" else None
            batch = apply_events_parallel(
                self.incremental,
                evs,
                interference=self.interference,
                jobs=self.jobs,
                backend=self.backend,
                pool=pool,
            )
            churn.events_applied = len(evs)
            churn.nodes_touched = batch.nodes_touched
            churn.edges_flipped = batch.edges_flipped
            churn.batch_groups = batch.groups
            churn.halo_nodes = batch.halo_nodes
            churn.repairs.extend(batch.repairs)
            churn.conflict_repairs.extend(batch.conflict_repairs)
            for cs in batch.conflict_repairs:
                churn.conflict_rows_touched += cs.rows_recomputed
                churn.conflict_entries_changed += cs.entries_changed
        else:
            for ev in evs:
                stats = self.incremental.apply(ev)
                churn.events_applied += 1
                churn.nodes_touched += stats.nodes_touched
                churn.edges_flipped += stats.edges_flipped
                churn.repairs.append(stats)
                if self.interference is not None:
                    cs = self.interference.update_event(stats)
                    churn.conflict_repairs.append(cs)
                    churn.conflict_rows_touched += cs.rows_recomputed
                    churn.conflict_entries_changed += cs.entries_changed
        for ev in evs:
            if isinstance(ev, FailStop):
                churn.failed_nodes.append(ev.node)
                churn.removed_nodes.append(ev.node)
            elif isinstance(ev, NodeLeave):
                churn.removed_nodes.append(ev.node)
            elif isinstance(ev, (NodeJoin, Recover)):
                churn.joined_nodes.append(ev.node)
        self.events_applied += churn.events_applied
        self.nodes_touched_total += churn.nodes_touched
        self.edges_flipped_total += churn.edges_flipped
        self.conflict_rows_total += churn.conflict_rows_touched
        self.conflict_entries_total += churn.conflict_entries_changed
        self.batch_groups_total += churn.batch_groups
        self.halo_nodes_total += churn.halo_nodes
        self.repairs.extend(churn.repairs)
        return churn

    def active_edges(self) -> np.ndarray:
        """Current topology edges in global-id space."""
        return self.incremental.edge_array()

    def alive_ids(self) -> np.ndarray:
        return self.incremental.alive_ids()
