"""Disjoint-region parallel event application (ROADMAP item).

A churn step delivers many events whose dirty disks mostly do not
overlap — the paper's locality argument again: each event's repair
(topology + interference rows) reads and writes state within a bounded
radius of its anchors.  This module partitions a step's events into
**independent groups** by that radius using a union–find over coarse
grid cells, then repairs the groups concurrently:

* **Phase A (serial):** every event's index mutation runs in trace
  order (join ids must appear in order; the grid index is not safe for
  concurrent mutation).  After phase A the geometry is final.
* **Phase B (grouped):** one merged-region
  :meth:`~repro.dynamic.incremental.IncrementalTheta._repair_batch` per
  group, optionally followed by the group's
  :class:`~repro.dynamic.interference.DynamicInterference` row repair.
  Groups farther apart than :func:`independence_radius` touch disjoint
  state, so they can run on a thread pool (``jobs > 1``) or
  sequentially (``jobs == 1`` — still profitable: overlapping dirty
  disks within a group are repaired *once* instead of once per event).

Correctness does not depend on the partition: the repair invariant
(post-repair state equals the exact ΘALG of the current live positions
on the touched region) makes any group sequence equivalent to serial
per-event application.  The conservative radius is only needed so
*concurrent* groups never share a node, an edge, or a conflict row —
property-tested against serial application in
``tests/test_dynamic_batching.py``.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.events import Event, NodeJoin, NodeMove, event_kind
from repro.obs import trace

__all__ = [
    "AUTO_THREAD_MIN_GROUPS",
    "BatchApplyStats",
    "apply_events_parallel",
    "group_events",
    "independence_radius",
]


def independence_radius(max_range: float, delta: float = 0.0) -> float:
    """Minimum anchor distance for two events to never share state.

    One event's repair reads/writes topology state within ``2·D`` of its
    anchors (dirty disk of radius D plus receivers one hop out) and —
    when interference is maintained — conflict rows whose guard zones
    reach ``(1+Δ)·D`` beyond endpoints of changed edges, themselves
    within ``3·D`` of an anchor: a ``(4+Δ)·D`` influence disk per event,
    hence pairwise independence beyond ``2·(4+Δ)·D``.
    """
    return 2.0 * (4.0 + float(delta)) * float(max_range)


class _AnchorScanner:
    """Yield each event's repair anchors *before* any mutation runs.

    Matches the anchors ``_mutate`` later hands to the repair: join →
    target; live move → current + target; leave/fail/recover → current
    (retained) position; move of a failed node → none (no repair).
    Positions and fail-state changed by *earlier events of the same
    batch* are tracked as overlays, so an event may reference a node a
    previous event just created or moved (the serial phase A applies
    them in exactly this order).
    """

    def __init__(self, incremental) -> None:
        self._inc = incremental
        self._pos: "dict[int, np.ndarray]" = {}
        self._failed: "dict[int, bool]" = {}

    def _current(self, node: int) -> "np.ndarray | None":
        p = self._pos.get(node)
        if p is not None:
            return p
        index = self._inc._index
        if 0 <= node < index.size:
            return index.position(node)
        return None

    def anchors(self, event: Event) -> "list[np.ndarray]":
        node = int(event.node)
        if isinstance(event, NodeJoin):
            p = np.array([event.x, event.y], dtype=np.float64)
            self._pos[node] = p
            return [p]
        if isinstance(event, NodeMove):
            cur = self._current(node)
            p = np.array([event.x, event.y], dtype=np.float64)
            self._pos[node] = p
            failed = self._failed.get(node, node in self._inc._failed)
            if failed:
                return []
            return [cur, p] if cur is not None else [p]
        kind = event_kind(event)
        if kind in ("leave", "fail"):
            self._failed[node] = kind == "fail"
        elif kind == "recover":
            self._failed[node] = False
        cur = self._current(node)
        return [cur] if cur is not None else []


class _UnionFind:
    def __init__(self) -> None:
        self._parent: "dict[object, object]" = {}

    def find(self, x):
        parent = self._parent
        root = parent.setdefault(x, x)
        while root != parent[root]:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def group_events(
    incremental,
    events: "list[Event]",
    *,
    radius: "float | None" = None,
    delta: float = 0.0,
) -> "list[list[int]]":
    """Partition a step's events into independent groups (index lists).

    Events are unioned when their anchors could fall within ``radius``
    (default :func:`independence_radius`) of each other, via coarse grid
    cells of side ``≥ radius``: anchors closer than ``radius`` land in
    3×3-adjacent coarse cells, so unioning each event with the 3×3
    coarse block around every anchor merges every interacting pair.
    Events on the *same node* always share a group (a node's state must
    never be repaired by two concurrent groups), enforced with a
    per-node union token.

    Groups come back ordered by their earliest event index, each group's
    indices in trace order.
    """
    if radius is None:
        radius = independence_radius(incremental.max_range, delta)
    cell = incremental._index.cell
    coarse = max(1, int(math.ceil(radius / cell)))
    uf = _UnionFind()
    scanner = _AnchorScanner(incremental)
    for i, ev in enumerate(events):
        token = ("ev", i)
        uf.union(token, ("node", int(ev.node)))
        for p in scanner.anchors(ev):
            cx, cy = incremental._index.cell_key(p)
            gx, gy = cx // coarse, cy // coarse
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    uf.union(token, ("cell", gx + dx, gy + dy))
    groups: "dict[object, list[int]]" = {}
    for i in range(len(events)):
        groups.setdefault(uf.find(("ev", i)), []).append(i)
    return sorted(groups.values(), key=lambda idxs: idxs[0])


#: Below this many groups a thread pool costs more than the GIL lets it
#: recover; the auto backend (``jobs=None``) stays serial under it.
AUTO_THREAD_MIN_GROUPS = 8


@dataclass
class BatchApplyStats:
    """Aggregate result of one parallel batch application."""

    events: int
    groups: int
    group_sizes: "tuple[int, ...]"
    nodes_touched: int
    edges_flipped: int
    repairs: "list" = field(default_factory=list)
    conflict_repairs: "list" = field(default_factory=list)
    wall_time: float = 0.0
    #: Execution path actually taken: "serial", "thread", or "process".
    backend: str = "serial"
    #: Effective worker count of that path (1 for serial).
    jobs: int = 1
    #: State entries exchanged across process boundaries (0 off-process).
    halo_nodes: int = 0
    #: Foreign diffs actually shipped to workers this batch (process
    #: backend; eager subscriptions + lazy catch-up + closure).
    diffs_replayed: int = 0
    #: (diff, worker) deliveries withheld by the halo-subscription
    #: filter this batch (0 when ``halo_filter=False`` — full broadcast).
    diffs_suppressed: int = 0

    @property
    def conflict_rows_touched(self) -> int:
        return sum(cs.rows_recomputed for cs in self.conflict_repairs)

    @property
    def conflict_entries_changed(self) -> int:
        return sum(cs.entries_changed for cs in self.conflict_repairs)


def apply_events_parallel(
    incremental,
    events: "list[Event]",
    *,
    interference=None,
    jobs: "int | None" = None,
    radius: "float | None" = None,
    backend: "str | None" = None,
    pool=None,
) -> BatchApplyStats:
    """Apply a step's events as independent merged-region group repairs.

    Phase A mutates the index serially in trace order; phase B repairs
    each group (topology, then the group's conflict rows when
    ``interference`` — a
    :class:`~repro.dynamic.interference.DynamicInterference` — is
    given).  The result is identical on every backend, and identical to
    serial per-event
    :meth:`~repro.dynamic.incremental.IncrementalTheta.apply`.

    Backend selection
    -----------------
    * ``backend="process"`` (or any ``pool``): delegate the whole batch
      to a :class:`~repro.parallel.pool.TileWorkerPool` — group repairs
      run in worker processes, the only path with real parallelism.
    * ``backend="thread"``: a thread pool of ``jobs`` workers (GIL-bound;
      proves independence more than it buys speed).
    * ``backend="serial"``: one group after another.
    * ``backend=None`` with ``jobs=None`` (the default): auto — serial
      below :data:`AUTO_THREAD_MIN_GROUPS` groups or on a single core
      (thread-pool overhead exceeds any GIL-window overlap there),
      threads otherwise.  An explicit integer ``jobs`` keeps the legacy
      contract: ``jobs > 1`` threads, ``jobs == 1`` serial.

    The chosen path is reported in ``BatchApplyStats.backend`` /
    ``.jobs``.  The topology version advances once per batch; callers
    comparing against serial application should compare edge sets and
    conflict rows, not version counters.
    """
    if backend == "process" or pool is not None:
        if pool is None:
            raise ValueError(
                "backend='process' needs a TileWorkerPool instance (pool=...): "
                "workers must fork before the events they process"
            )
        if pool.inc is not incremental or pool.di is not interference:
            raise ValueError("pool was built for a different incremental/interference pair")
        return pool.apply_batch(events, radius=radius)
    if backend not in (None, "serial", "thread"):
        raise ValueError(f"unknown backend {backend!r}")

    t0 = time.perf_counter()
    delta = interference.delta if interference is not None else 0.0
    with trace.span("dynamic.batch_apply", events=len(events), jobs=jobs or 0) as sp:
        idx_groups = group_events(incremental, events, radius=radius, delta=delta)

        cpus = len(os.sched_getaffinity(0))
        if backend == "serial":
            eff_jobs = 1
        elif backend == "thread":
            eff_jobs = jobs if jobs and jobs > 1 else max(2, cpus)
        elif jobs is None:  # auto
            if len(idx_groups) >= AUTO_THREAD_MIN_GROUPS and cpus > 1:
                eff_jobs = min(4, cpus, len(idx_groups))
            else:
                eff_jobs = 1
        else:
            eff_jobs = int(jobs)
        use_threads = eff_jobs > 1 and len(idx_groups) > 1

        # Phase A — serial mutations in trace order (join-id ordering,
        # grid not thread-safe).  Geometry is final afterwards.
        contexts = [incremental._mutate(ev) for ev in events]

        repairs: "list" = []
        conflict_repairs: "list" = []

        def run_group(idxs: "list[int]") -> "tuple[object, object]":
            ctxs = [contexts[i] for i in idxs if contexts[i] is not None]
            if not ctxs:
                return None, None
            rs = incremental._repair_batch(ctxs, kind="batch", node=-1)
            cs = None
            if interference is not None:
                moved = [
                    int(events[i].node)
                    for i in idxs
                    if contexts[i] is not None
                    and contexts[i][0] == "move"
                    and incremental._index.is_alive(int(events[i].node))
                ]
                cs = interference.update(
                    rs.edges_added, rs.edges_removed, moved, _sync=False
                )
            return rs, cs

        if use_threads:
            with ThreadPoolExecutor(max_workers=eff_jobs) as tpool:
                results = list(tpool.map(run_group, idx_groups))
        else:
            results = [run_group(g) for g in idx_groups]

        incremental.topology_version += 1
        if interference is not None:
            interference._mark_synced()

        for rs, cs in results:
            if rs is not None:
                repairs.append(rs)
            if cs is not None:
                conflict_repairs.append(cs)

        stats = BatchApplyStats(
            events=len(events),
            groups=len(idx_groups),
            group_sizes=tuple(len(g) for g in idx_groups),
            nodes_touched=sum(r.nodes_touched for r in repairs),
            edges_flipped=sum(r.edges_flipped for r in repairs),
            repairs=repairs,
            conflict_repairs=conflict_repairs,
            wall_time=time.perf_counter() - t0,
            backend="thread" if use_threads else "serial",
            jobs=eff_jobs if use_threads else 1,
        )
        sp.set(groups=stats.groups, nodes_touched=stats.nodes_touched)
    return stats
