"""Fault semantics for routing under churn.

A :class:`~repro.dynamic.events.FailStop` (or :class:`NodeLeave`) takes
a node out of the network *with its buffers*: every packet queued at it
is lost.  The routers themselves are fault-oblivious — the
(T, γ)-balancing router reroutes automatically, because zeroing a
failed node's buffer heights removes it from every potential gradient
and the repaired topology no longer offers its edges.  What this module
adds is the *accounting*: buffered packets at failed nodes are drained
and charged to :attr:`RoutingStats.churn_drops
<repro.sim.stats.RoutingStats.churn_drops>`, so delivery-under-churn
numbers stay conservation-exact
(``accepted == delivered + buffered + churn_drops`` at the end of a
run).

Works with every router the engine drives: height-matrix routers
(:class:`~repro.core.balancing.BalancingRouter`,
:class:`~repro.core.anycast.AnycastBalancingRouter`), FIFO-queue
routers (:class:`~repro.sim.baseline_routers.ShortestPathRouter`,
:class:`~repro.sim.geographic.GreedyGeographicRouter`, …), and
wrappers that delegate to an inner ``router`` attribute
(:class:`~repro.sim.tracking.TrackedBalancingRouter`).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["drop_buffered_packets", "filter_injections"]


def drop_buffered_packets(router, nodes: "Iterable[int]") -> int:
    """Discard every packet buffered at ``nodes``; return how many.

    The caller (normally :class:`repro.sim.engine.SimulationEngine`)
    charges the returned count to the run's stats via
    :meth:`RoutingStats.record_churn_drops
    <repro.sim.stats.RoutingStats.record_churn_drops>`.  Unknown router
    shapes raise so silent packet leaks cannot happen.
    """
    node_list = [int(v) for v in nodes]
    if not node_list:
        return 0
    heights = getattr(router, "heights", None)
    if heights is not None:
        idx = np.asarray(node_list, dtype=np.intp)
        idx = idx[idx < heights.shape[0]]
        lost = int(heights[idx].sum())
        heights[idx] = 0
        return lost
    queues = getattr(router, "queues", None)
    if queues is not None:
        lost = 0
        for v in node_list:
            if v < len(queues):
                lost += len(queues[v])
                queues[v].clear()
        return lost
    inner = getattr(router, "router", None)
    if inner is not None:
        # Delegating wrappers (e.g. TrackedBalancingRouter) keep shadow
        # packet records; let them clean those up if they know how.
        dropper = getattr(router, "drop_buffered_packets", None)
        if dropper is not None:
            return int(dropper(node_list))
        return drop_buffered_packets(inner, node_list)
    raise TypeError(
        f"don't know where {type(router).__name__} buffers packets; "
        "expected a 'heights' array, 'queues' list, or inner 'router'"
    )


def filter_injections(injections, alive) -> "tuple[list, int]":
    """Split a step's injections into deliverable and dead-on-arrival.

    An injection ``(node, dest, count)`` is only usable when both
    endpoints are currently up: a down source cannot inject, and a
    packet for a down destination can never be absorbed.  Returns
    ``(usable, refused)`` where ``refused`` is the packet count whose
    injection was refused (charged as offered-but-not-accepted drops).
    """
    alive_set = {int(v) for v in alive}
    usable = []
    refused = 0
    for node, dest, count in injections:
        if int(node) in alive_set and int(dest) in alive_set:
            usable.append((node, dest, count))
        else:
            refused += int(count)
    return usable, refused
