"""Incremental interference-set maintenance under churn (§2.4 made local).

:class:`repro.dynamic.incremental.IncrementalTheta` repairs the ΘALG
topology on a ≤2D dirty disk per event, but a routing step under the
guard-zone MAC still had to rebuild the CSR ``interference_sets`` from
scratch — ~10 s at n=30k, which made churned MAC experiments
rebuild-bound.  This module makes the conflict structure as local as
the topology repair:

* a conflict *row* I(e) only changes when an edge inside it flips or an
  endpoint inside its guard neighborhood moves.  Because the relation
  is symmetric (``e' ∈ I(e) ⟺ e ∈ I(e')``), recomputing the rows of
  exactly the *changed* edges — net added edges, net removed edges, and
  edges incident to a moved node — and splicing the diffs into their
  neighbors' rows repairs every affected row;
* each row recompute is a pair of grid queries
  (:class:`~repro.geometry.spatialindex.DynamicGridIndex`) at the
  maximum possible guard reach, filtered by the *bit-identical*
  predicate of the vectorized kernel
  (:func:`repro.interference.conflict.interference_sets`): squared hit
  distance ``≤`` squared shrunk guard radius
  ``((1+Δ)·len·(1−1e-12))²``, inclusive at ties.

The maintained rows materialize on demand into a CSR
:class:`~repro.interference.conflict.InterferenceSets` aligned with
``IncrementalTheta.edge_array()`` and **edge-for-edge identical** to a
from-scratch rebuild on the live topology — asserted after every event
of the acceptance traces in ``tests/test_dynamic_interference.py`` and
re-checked by claim E24.

:class:`DynamicMAC` closes the loop for the engine: §3.3 random edge
activation with probabilities ``1/(2·I_e)`` sampled from the
*maintained* conflict degrees, so a churned MAC step costs a local
repair instead of a global rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.interference.conflict import InterferenceSets, interference_sets
from repro.interference.model import InterferenceModel, interference_radius
from repro.obs import metrics, trace
from repro.utils.rng import as_rng

__all__ = [
    "ConflictRepairStats",
    "DynamicInterference",
    "DynamicMAC",
    "MacStep",
    "edge_uniforms",
]

_MASK = (1 << 32) - 1
_MASK64 = (1 << 64) - 1
_EMPTY: "frozenset[int]" = frozenset()


def _pack(lo: int, hi: int) -> int:
    """One int64 key per undirected edge ``(lo, hi)``, lex-order preserving."""
    return (lo << 32) | hi


def edge_uniforms(codes: np.ndarray, seed: int, step: int) -> np.ndarray:
    """Deterministic per-edge uniforms in ``[0, 1)`` for MAC activation.

    A SplitMix64-style integer finalizer over ``(edge code, seed, step)``.
    Unlike a sequential generator the draw is *order-independent*: any
    process can evaluate any edge subset in any order and agree
    bit-for-bit on every edge's uniform — which is what lets the tile
    worker pool activate edges per tile interior while staying identical
    to :meth:`DynamicMAC.deterministic_step` in the parent.
    """
    salt = (
        ((int(seed) + 1) * 0x9E3779B97F4A7C15) ^ (int(step) * 0xD1B54A32D192ED03)
    ) & _MASK64
    z = np.asarray(codes, dtype=np.int64).astype(np.uint64)
    with np.errstate(over="ignore"):
        z = (z ^ np.uint64(salt)) * np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    # Top 53 bits → the double-precision lattice of [0, 1).
    return (z >> np.uint64(11)).astype(np.float64) * float(2.0**-53)


@dataclass(frozen=True)
class MacStep:
    """One resolved deterministic MAC step (§3.3 activate + resolve).

    ``edges`` are the activated undirected pairs sorted by packed code,
    ``ok`` marks the ones whose guard zones admit them (both endpoints
    clear of every other activated transmission), ``costs`` their
    ``length**kappa`` energy costs.  Pool-side and serial evaluation
    produce identical instances.
    """

    edges: np.ndarray
    costs: np.ndarray
    ok: np.ndarray

    @property
    def activated(self) -> int:
        return int(len(self.edges))

    @property
    def succeeded(self) -> int:
        return int(np.count_nonzero(self.ok))


@dataclass(frozen=True)
class ConflictRepairStats:
    """Per-event (or per-batch) conflict-repair accounting (E24 measurands).

    Attributes
    ----------
    rows_recomputed:
        Conflict rows rebuilt from geometry (added edges plus persisting
        edges incident to a moved node).
    entries_changed:
        Row entries spliced in or out across the whole structure,
        counting both sides of each symmetric pair.
    edges_added / edges_removed:
        Net topology edges this repair reacted to.
    wall_time:
        Conflict-repair wall-clock seconds.
    """

    rows_recomputed: int
    entries_changed: int
    edges_added: int
    edges_removed: int
    wall_time: float


class DynamicInterference:
    """Maintain §2.4 interference sets I(e) over a churned ΘALG topology.

    Parameters
    ----------
    incremental:
        The :class:`~repro.dynamic.incremental.IncrementalTheta` whose
        topology the conflict structure tracks.  The initial rows are
        seeded from one vectorized from-scratch build.
    delta:
        Guard-zone parameter Δ of the interference model.

    Protocol: after every ``incremental.apply(event)`` call
    :meth:`update_event` with the returned
    :class:`~repro.dynamic.incremental.RepairStats` (whose net
    ``edges_added`` / ``edges_removed`` changelog drives the repair).
    :class:`~repro.dynamic.incremental.DynamicTopology` and
    :func:`repro.dynamic.batching.apply_events_parallel` do this
    automatically.  :meth:`interference_sets` raises if the topology
    advanced without a matching update, so a stale conflict structure
    can never be served silently.
    """

    def __init__(self, incremental, delta: float) -> None:
        self.inc = incremental
        self.delta = float(delta)
        self._index = incremental._index
        D = float(incremental.max_range)
        # Any topology edge satisfies d² ≤ D² + 1e-12 (the kernel's
        # in-range epsilon), so no guard radius exceeds (1+Δ)·√(D²+1e-12):
        # one candidate query radius covers both conflict directions.
        self._r_in = (1.0 + self.delta) * float(np.sqrt(D * D + 1e-12))
        self._rows: "dict[int, set[int]]" = {}
        self._incident: "dict[int, set[int]]" = {}
        self._rad2: "dict[int, float]" = {}
        self._csr: "InterferenceSets | None" = None
        self._synced_version = -1
        self._seed_from_scratch()

    # ------------------------------------------------------------------
    # Seeding and introspection
    # ------------------------------------------------------------------
    def _seed_from_scratch(self) -> None:
        """Build rows/incident maps from one vectorized full build."""
        graph = self.inc.snapshot_graph()
        sets = interference_sets(graph, self.delta)
        edges = graph.edges
        codes = (edges[:, 0].astype(np.int64) << 32) | edges[:, 1].astype(np.int64)
        lengths = graph.edge_lengths
        indptr, indices = sets.indptr, sets.indices
        rows: "dict[int, set[int]]" = {}
        incident: "dict[int, set[int]]" = {}
        rad2: "dict[int, float]" = {}
        code_list = codes.tolist()
        for k, code in enumerate(code_list):
            rows[code] = set(codes[indices[indptr[k] : indptr[k + 1]]].tolist())
            r = float(interference_radius(lengths[k], self.delta) * (1.0 - 1e-12))
            rad2[code] = r * r
        for (lo, hi), code in zip(edges.tolist(), code_list):
            incident.setdefault(lo, set()).add(code)
            incident.setdefault(hi, set()).add(code)
        self._rows, self._incident, self._rad2 = rows, incident, rad2
        self._csr = sets
        self._synced_version = self.inc.topology_version

    @property
    def n_edges(self) -> int:
        return len(self._rows)

    def edge_codes(self) -> np.ndarray:
        """Sorted packed ``(lo << 32) | hi`` keys of the tracked edges."""
        return np.fromiter(sorted(self._rows), dtype=np.int64, count=len(self._rows))

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------
    def update_event(self, stats) -> ConflictRepairStats:
        """Repair conflict rows after one serial ``IncrementalTheta.apply``.

        ``stats`` is the event's :class:`RepairStats`; a surviving mover
        additionally forces a recompute of its persisting incident rows
        (their guard radii moved with it).
        """
        moved: "list[int]" = []
        if stats.kind == "move" and self._index.is_alive(stats.node):
            moved.append(int(stats.node))
        return self.update(stats.edges_added, stats.edges_removed, moved)

    def update(
        self,
        added,
        removed,
        moved_nodes,
        *,
        _sync: bool = True,
        collect_diff: bool = False,
    ):
        """Splice a net topology diff into the maintained conflict rows.

        Parameters
        ----------
        added / removed:
            Net undirected global-id edge changes (``(lo, hi)`` pairs).
        moved_nodes:
            Live nodes whose position changed: their persisting incident
            edges get recomputed rows too.
        collect_diff:
            Return ``(stats, row_diff)`` where ``row_diff`` replays the
            same splice on an in-sync replica (:meth:`apply_row_diff`)
            without touching geometry.
        """
        t0 = time.perf_counter()
        with trace.span(
            "dynamic.conflict_repair", added=len(added), removed=len(removed)
        ) as sp:
            removed_codes = [_pack(int(lo), int(hi)) for lo, hi in removed]
            added_codes = [_pack(int(lo), int(hi)) for lo, hi in added]

            entries = self._retract(removed_codes)
            self._register(added_codes)

            # Rows to rebuild from geometry: added edges, plus the
            # persisting edges whose guard zones moved with a mover.
            recompute: "set[int]" = set(added_codes)
            for nd in moved_nodes:
                recompute.update(self._incident.get(int(nd), _EMPTY))
            rad2_diff: "dict[int, float]" = {}
            for c in recompute:
                rad2_diff[c] = self._rad2[c] = self._edge_rad2(c)
            row_diff: "dict[int, list[int]]" = {}
            for c in sorted(recompute):
                new_row = self._recompute_row(c)
                if collect_diff:
                    row_diff[c] = sorted(new_row)
                entries += self._splice_row(c, new_row)

            self._csr = None
            if _sync:
                self._synced_version = self.inc.topology_version
            stats = ConflictRepairStats(
                rows_recomputed=len(recompute),
                entries_changed=entries,
                edges_added=len(added_codes),
                edges_removed=len(removed_codes),
                wall_time=time.perf_counter() - t0,
            )
            sp.set(rows=stats.rows_recomputed, entries=entries)
        reg = metrics.active()
        if reg is not None:
            reg.counter("dynamic.conflict_repairs").inc()
            reg.counter("dynamic.conflict_rows_recomputed").inc(stats.rows_recomputed)
        if collect_diff:
            diff = {
                "removed": removed_codes,
                "added": added_codes,
                "rad2": rad2_diff,
                "rows": row_diff,
            }
            return stats, diff
        return stats

    def apply_row_diff(self, diff: dict, *, _sync: bool = True) -> ConflictRepairStats:
        """Replay an :meth:`update` ``collect_diff`` delta on a replica.

        The replica must hold the exact pre-update rows (same ``_rows``,
        ``_incident``, ``_rad2``).  Performs the identical retract /
        register / splice sequence with the *recorded* recomputed rows
        instead of geometry queries, so the resulting state — and the
        returned stats, bar ``wall_time`` — match the originating
        worker's bit for bit.
        """
        t0 = time.perf_counter()
        removed_codes = diff["removed"]
        added_codes = diff["added"]
        entries = self._retract(removed_codes)
        self._register(added_codes)
        self._rad2.update(diff["rad2"])
        for c, new_list in diff["rows"].items():
            entries += self._splice_row(c, set(new_list))
        self._csr = None
        if _sync:
            self._synced_version = self.inc.topology_version
        return ConflictRepairStats(
            rows_recomputed=len(diff["rows"]),
            entries_changed=entries,
            edges_added=len(added_codes),
            edges_removed=len(removed_codes),
            wall_time=time.perf_counter() - t0,
        )

    def _retract(self, removed_codes: "list[int]") -> int:
        """Drop removed edges' rows and their membership in neighbors'
        rows (symmetry gives the exact affected set for free)."""
        rows = self._rows
        incident = self._incident
        entries = 0
        for c in removed_codes:
            row = rows.pop(c, None)
            self._rad2.pop(c, None)
            for nd in (c >> 32, c & _MASK):
                s = incident.get(nd)
                if s is not None:
                    s.discard(c)
                    if not s:
                        del incident[nd]
            if row:
                entries += 2 * len(row)
                for nb in row:
                    nb_row = rows.get(nb)
                    if nb_row is not None:
                        nb_row.discard(c)
        return entries

    def _register(self, added_codes: "list[int]") -> None:
        """Register added edges so row recomputes can see them."""
        incident = self._incident
        for c in added_codes:
            incident.setdefault(c >> 32, set()).add(c)
            incident.setdefault(c & _MASK, set()).add(c)

    def _splice_row(self, c: int, new_row: "set[int]") -> int:
        """Install ``new_row`` as I(c), mirroring each change into the
        symmetric neighbor rows; returns entries changed (both sides)."""
        rows = self._rows
        entries = 0
        old_row = rows.get(c, _EMPTY)
        for nb in old_row - new_row:
            nb_row = rows.get(nb)
            if nb_row is not None:
                nb_row.discard(c)
            entries += 2
        for nb in new_row - old_row:
            nb_row = rows.get(nb)
            if nb_row is not None:
                nb_row.add(c)
            entries += 2
        rows[c] = new_row
        return entries

    def _mark_synced(self) -> None:
        """Batch applier hook: declare the structure current again."""
        self._synced_version = self.inc.topology_version

    def _edge_rad2(self, code: int) -> float:
        """Squared shrunk guard radius of one edge, kernel arithmetic."""
        pab = self._index.positions_of(np.array([code >> 32, code & _MASK], dtype=np.intp))
        length = np.hypot(pab[0, 0] - pab[1, 0], pab[0, 1] - pab[1, 1])
        r = float(interference_radius(length, self.delta) * (1.0 - 1e-12))
        return r * r

    def _recompute_row(self, code: int) -> "set[int]":
        """I(code) from current geometry, bit-identical to the kernel.

        Two grid queries (one per endpoint) at the shared maximum guard
        reach produce a candidate superset; the exact kernel predicate —
        squared hit distance ``≤`` squared shrunk radius, inclusive at
        ties — then decides both conflict directions:

        * ``d²(u, p) ≤ r²(code)``: every edge at node ``u`` has an
          endpoint inside *code*'s guard zone (out-direction);
        * ``d²(u, p) ≤ r²(k)`` for ``k`` incident to ``u``: *code*'s
          endpoint ``p`` lies inside ``k``'s guard zone (in-direction).
        """
        idx = self._index
        pab = idx.positions_of(np.array([code >> 32, code & _MASK], dtype=np.intp))
        r2_own = self._rad2[code]
        incident = self._incident
        rad2 = self._rad2
        row: "set[int]" = set()
        for p in pab:
            cand = idx.query_radius(p, self._r_in)
            if len(cand) == 0:
                continue
            d = idx.positions_of(cand) - p
            d2s = d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1]
            for u, d2 in zip(cand.tolist(), d2s.tolist()):
                edges_u = incident.get(u)
                if not edges_u:
                    continue
                if d2 <= r2_own:
                    row.update(edges_u)
                else:
                    for k in edges_u:
                        if k not in row and d2 <= rad2[k]:
                            row.add(k)
        row.discard(code)
        return row

    # ------------------------------------------------------------------
    # Materialization and backstop
    # ------------------------------------------------------------------
    def _check_synced(self) -> None:
        if self._synced_version != self.inc.topology_version:
            raise RuntimeError(
                "DynamicInterference is out of sync with its topology "
                f"(synced at version {self._synced_version}, topology at "
                f"{self.inc.topology_version}); call update() after every event"
            )

    def degree_array(self) -> np.ndarray:
        """``|I(e)|`` aligned with ``edge_array()``, *without* CSR.

        The MAC hot path only needs conflict degrees for its activation
        bounds; reading row sizes straight off the maintained sets skips
        the O(nnz) CSR materialization (nnz is ~10⁷ at n=10⁴).
        """
        self._check_synced()
        rows = self._rows
        return np.fromiter(
            (len(rows[c]) for c in sorted(rows)), dtype=np.int64, count=len(rows)
        )

    def interference_sets(self) -> InterferenceSets:
        """The maintained conflict structure as a CSR ``InterferenceSets``.

        Rows align with ``IncrementalTheta.edge_array()`` (sorted
        undirected global-id edges).  Materialization is cached until
        the next :meth:`update`; a topology that advanced without a
        matching update raises instead of serving stale rows.
        """
        self._check_synced()
        if self._csr is None:
            rows = self._rows
            codes = sorted(rows)
            keys = np.fromiter(codes, dtype=np.int64, count=len(codes))
            self._csr = InterferenceSets.from_rows(keys, [rows[c] for c in codes])
        return self._csr

    def degrees(self) -> np.ndarray:
        """``|I(e)|`` aligned with ``edge_array()`` (shared, read-only)."""
        return self.interference_sets().degrees

    def check_full_equivalence(self) -> int:
        """Rows differing from a from-scratch rebuild (0 = bit-identical).

        The E24 correctness backstop: rebuilds ``interference_sets`` on
        the maintained topology snapshot and compares row-for-row.
        """
        ref = interference_sets(self.inc.snapshot_graph(), self.delta)
        mine = self.interference_sets()
        if mine == ref:
            return 0
        mism = abs(len(ref) - len(mine))
        for k in range(min(len(ref), len(mine))):
            if not np.array_equal(np.asarray(ref[k]), np.asarray(mine[k])):
                mism += 1
        return max(mism, 1)


class DynamicMAC:
    """§3.3 random edge activation over a *maintained* churned topology.

    The static :class:`~repro.core.interference_mac.RandomActivationMAC`
    computes interference sets once per graph; under churn that means a
    full rebuild per step.  This wrapper samples activation probabilities
    ``1/(2·I_e)`` from a :class:`DynamicInterference`'s maintained
    degrees — refreshed per topology version, so a step after k events
    costs k local conflict repairs plus one CSR materialization.

    The per-step interface matches ``RandomActivationMAC``
    (:meth:`active_edges` / :meth:`success_mask`), so
    :class:`repro.sim.engine.SimulationEngine` drives either through the
    same ``mac=`` hook.
    """

    def __init__(
        self,
        interference: DynamicInterference,
        *,
        rng=None,
        bound_mode: str = "own",
    ) -> None:
        from repro.core.interference_mac import estimate_edge_interference

        if bound_mode not in ("own", "neighborhood"):
            raise ValueError(f"mode must be 'own' or 'neighborhood', got {bound_mode!r}")
        self.interference = interference
        self.inc = interference.inc
        self.delta = interference.delta
        self.bound_mode = bound_mode
        self.rng = as_rng(rng)
        self._estimate = estimate_edge_interference
        self._model = InterferenceModel(self.delta)
        self._cache_version = -1
        self._edges = np.empty((0, 2), dtype=np.intp)
        self._costs = np.empty(0)
        self._probs = np.empty(0)

    def _refresh(self) -> None:
        """Re-derive edges/costs/activation probs once per topology version."""
        v = self.inc.topology_version
        if v == self._cache_version:
            return
        edges = self.inc.edge_array()
        if self.bound_mode == "own":
            # Degrees straight off the maintained rows — no CSR build.
            bounds = np.maximum(self.interference.degree_array().astype(np.float64), 1.0)
        else:
            sets = self.interference.interference_sets()
            bounds = self._estimate(None, self.delta, mode=self.bound_mode, sets=sets)
        d = self.inc.position_array(edges[:, 0]) - self.inc.position_array(edges[:, 1])
        lengths = np.hypot(d[:, 0], d[:, 1])
        self._edges = edges
        self._costs = lengths**self.inc.kappa
        self._probs = 1.0 / (2.0 * bounds)
        self._cache_version = v

    @property
    def interference_number(self) -> int:
        """``I`` — max interference-set size of the current topology."""
        arr = self.interference.degree_array()
        return int(arr.max()) if len(arr) else 0

    def active_edges(self) -> "tuple[np.ndarray, np.ndarray]":
        """Sample this step's active edges (both orientations + costs)."""
        self._refresh()
        m = len(self._edges)
        if m == 0:
            return np.empty((0, 2), dtype=np.intp), np.empty(0)
        with trace.span("mac.activate", edges=m) as sp:
            mask = self.rng.random(m) < self._probs
            e = self._edges[mask]
            c = self._costs[mask]
            directed = np.vstack([e, e[:, ::-1]]) if len(e) else np.empty((0, 2), dtype=np.intp)
            costs = np.concatenate([c, c]) if len(c) else np.empty(0)
            sp.set(activated=len(e))
        reg = metrics.active()
        if reg is not None:
            reg.counter("mac.activation_rounds").inc()
            reg.counter("mac.activated_edges").inc(len(e))
        return directed, costs

    def success_mask(self, transmissions) -> np.ndarray:
        """Resolve guard-zone interference among the attempts.

        Same semantics as ``RandomActivationMAC.success_mask``, evaluated
        on the *live* maintained positions (global-id space).
        """
        k = len(transmissions)
        if k == 0:
            return np.ones(0, dtype=bool)
        with trace.span("mac.resolve", attempts=k) as sp:
            und = np.asarray(
                [(min(t.src, t.dst), max(t.src, t.dst)) for t in transmissions], dtype=np.intp
            )
            uniq, inverse = np.unique(und, axis=0, return_inverse=True)
            mat = self._model.interference_matrix(self.inc.all_positions(), uniq)
            if mat.size:
                edge_ok = ~mat.any(axis=1)
            else:
                edge_ok = np.ones(len(uniq), dtype=bool)
            ok = edge_ok[inverse]
            sp.set(succeeded=int(np.count_nonzero(ok)))
        reg = metrics.active()
        if reg is not None:
            reg.counter("mac.resolved_attempts").inc(k)
            reg.counter("mac.collision_failures").inc(k - int(np.count_nonzero(ok)))
        return ok

    def deterministic_step(self, *, seed: int, step: int) -> MacStep:
        """One activate+resolve round with hash-derived randomness.

        The serial reference of the pool-side MAC
        (:meth:`repro.parallel.pool.TileWorkerPool.mac_step`): activation
        draws come from :func:`edge_uniforms` instead of the sequential
        ``rng``, so the same ``(seed, step)`` yields the same step
        whether evaluated here or sharded across tile workers.
        Resolution matches :meth:`success_mask` — an activated edge
        succeeds iff no other activated edge's guard region touches one
        of its endpoints.
        """
        self._refresh()
        m = len(self._edges)
        empty = MacStep(
            edges=np.empty((0, 2), dtype=np.int64),
            costs=np.empty(0),
            ok=np.empty(0, dtype=bool),
        )
        if m == 0:
            return empty
        with trace.span("mac.deterministic_step", edges=m, step=step) as sp:
            edges = np.asarray(self._edges, dtype=np.int64)
            codes = (edges[:, 0] << 32) | edges[:, 1]
            active = edge_uniforms(codes, seed, step) < self._probs
            e = edges[active]
            c = self._costs[active]
            if len(e) == 0:
                return empty
            mat = self._model.interference_matrix(self.inc.all_positions(), e)
            ok = ~mat.any(axis=1) if mat.size else np.ones(len(e), dtype=bool)
            sp.set(activated=len(e), succeeded=int(np.count_nonzero(ok)))
        reg = metrics.active()
        if reg is not None:
            reg.counter("mac.activation_rounds").inc()
            reg.counter("mac.activated_edges").inc(len(e))
            reg.counter("mac.resolved_attempts").inc(len(e))
            reg.counter("mac.collision_failures").inc(len(e) - int(np.count_nonzero(ok)))
        return MacStep(edges=e, costs=c, ok=ok)
