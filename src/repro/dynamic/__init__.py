"""Dynamic networks: typed churn events, incremental ΘALG maintenance,
incremental interference-set maintenance, disjoint-region parallel
event application, and fault injection (see ``docs/dynamics.md`` and
experiments E23/E24)."""

from repro.dynamic.batching import (
    BatchApplyStats,
    apply_events_parallel,
    group_events,
    independence_radius,
)
from repro.dynamic.events import (
    Event,
    EventTrace,
    FailStop,
    LiveEventSchedule,
    NodeJoin,
    NodeLeave,
    NodeMove,
    Recover,
    event_from_dict,
    event_kind,
    event_to_dict,
    event_trace_from_dict,
    event_trace_to_dict,
    failstop_trace,
    merge_traces,
    mobility_trace,
    poisson_churn_trace,
    random_event_trace,
)
from repro.dynamic.faults import drop_buffered_packets, filter_injections
from repro.dynamic.incremental import (
    DynamicTopology,
    IncrementalTheta,
    RepairStats,
    StepChurn,
)
from repro.dynamic.interference import (
    ConflictRepairStats,
    DynamicInterference,
    DynamicMAC,
    MacStep,
    edge_uniforms,
)

__all__ = [
    "Event",
    "EventTrace",
    "LiveEventSchedule",
    "NodeJoin",
    "NodeLeave",
    "NodeMove",
    "FailStop",
    "Recover",
    "event_kind",
    "event_to_dict",
    "event_from_dict",
    "event_trace_to_dict",
    "event_trace_from_dict",
    "poisson_churn_trace",
    "failstop_trace",
    "mobility_trace",
    "random_event_trace",
    "merge_traces",
    "IncrementalTheta",
    "DynamicTopology",
    "RepairStats",
    "StepChurn",
    "DynamicInterference",
    "DynamicMAC",
    "MacStep",
    "edge_uniforms",
    "ConflictRepairStats",
    "BatchApplyStats",
    "apply_events_parallel",
    "group_events",
    "independence_radius",
    "drop_buffered_packets",
    "filter_injections",
]
