"""Retained naive reference implementations of the vectorized kernels.

Every hot-path kernel that was rewritten with batched/array operations
keeps its original straightforward implementation here, verbatim in
spirit: explicit Python loops over numpy data, one query at a time.
The golden-equivalence suite (``tests/test_kernel_equivalence.py``)
pins each vectorized kernel edge-for-edge against these, and the
property tests reuse them as oracles.  They are *not* exported through
the public API and are never on a hot path.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.graphs.base import GeometricGraph
from repro.interference.model import interference_radius
from repro.sim.packets import Transmission

__all__ = [
    "all_pairs_within_reference",
    "balancing_decide_reference",
    "interference_sets_reference",
    "max_edge_stretch_reference",
    "theta_edges_reference",
    "yao_out_edges_reference",
]


def all_pairs_within_reference(points: np.ndarray, radius: float) -> np.ndarray:
    """All index pairs ``(i, j), i < j`` with distance ≤ radius, O(n²) scan.

    Uses the same inclusive epsilon as ``GridIndex.all_pairs_within``.
    """
    pts = as_points(points)
    n = len(pts)
    pairs: list[tuple[int, int]] = []
    r2 = radius * radius + 1e-12
    for i in range(n):
        for j in range(i + 1, n):
            d = pts[j] - pts[i]
            if d[0] * d[0] + d[1] * d[1] <= r2:
                pairs.append((i, j))
    if not pairs:
        return np.empty((0, 2), dtype=np.intp)
    return np.asarray(pairs, dtype=np.intp)


def yao_out_edges_reference(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    offset: float = 0.0,
) -> np.ndarray:
    """Per-node loop Yao phase 1 (the pre-vectorization implementation)."""
    pts = as_points(points)
    part = SectorPartition(theta, offset)
    n = len(pts)
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    out: list[tuple[int, int]] = []
    r2 = max_range * max_range + 1e-12
    for u in range(n):
        d_all = pts - pts[u]
        dist2 = d_all[:, 0] ** 2 + d_all[:, 1] ** 2
        cand = np.nonzero(dist2 <= r2)[0]
        cand = cand[cand != u]
        if len(cand) == 0:
            continue
        d = pts[cand] - pts[u]
        dist = np.hypot(d[:, 0], d[:, 1])
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec = part.index_of_angle(ang)
        order = np.lexsort((cand, dist, sec))
        sec_sorted = sec[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = sec_sorted[1:] != sec_sorted[:-1]
        for k in order[first]:
            out.append((u, int(cand[k])))
    if not out:
        return np.empty((0, 2), dtype=np.intp)
    return np.asarray(out, dtype=np.intp)


def theta_edges_reference(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    offset: float = 0.0,
) -> "tuple[dict[tuple[int, int], int], dict[tuple[int, int], int], list[tuple[int, int]]]":
    """Dict-building ΘALG phases 1–2 (the pre-vectorization implementation).

    Returns ``(yao_nearest, admitted, kept_edges)`` exactly as the old
    ``theta_algorithm`` inner loops produced them.
    """
    pts = as_points(points)
    part = SectorPartition(theta, offset)
    directed = yao_out_edges_reference(pts, theta, max_range, offset=offset)

    yao_nearest: dict[tuple[int, int], int] = {}
    if len(directed):
        d = pts[directed[:, 1]] - pts[directed[:, 0]]
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec = np.atleast_1d(part.index_of_angle(ang))
        for (u, v), s in zip(directed, sec):
            yao_nearest[(int(u), int(s))] = int(v)

    admitted: dict[tuple[int, int], int] = {}
    if len(directed):
        src, dst = directed[:, 0], directed[:, 1]
        d = pts[src] - pts[dst]
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
        sec_in = np.atleast_1d(part.index_of_angle(ang))
        dist = np.hypot(d[:, 0], d[:, 1])
        order = np.lexsort((src, dist, sec_in, dst))
        prev_key: "tuple[int, int] | None" = None
        for k in order:
            key = (int(dst[k]), int(sec_in[k]))
            if key != prev_key:
                admitted[key] = int(src[k])
                prev_key = key

    kept_edges = [(w, x) for (x, _), w in admitted.items()]
    return yao_nearest, admitted, kept_edges


def interference_sets_reference(graph: GeometricGraph, delta: float) -> list[np.ndarray]:
    """Per-edge KD-tree loop I(e) (the pre-vectorization implementation)."""
    pts = graph.points
    edges = graph.edges
    m = len(edges)
    if m == 0:
        return []
    tree = cKDTree(pts)
    incident: list[list[int]] = [[] for _ in range(graph.n_nodes)]
    for k, (i, j) in enumerate(edges):
        incident[i].append(k)
        incident[j].append(k)

    radii = interference_radius(graph.edge_lengths, delta)
    sets: list[set[int]] = [set() for _ in range(m)]
    for k in range(m):
        i, j = edges[k]
        r = radii[k]
        # Open-disk semantics: shrink the inclusive KD-tree radius by an
        # epsilon relative to r so boundary points are excluded.
        rq = r * (1.0 - 1e-12)
        victims: set[int] = set()
        for node in tree.query_ball_point(pts[i], rq) + tree.query_ball_point(pts[j], rq):
            victims.update(incident[node])
        victims.discard(k)
        for v in victims:
            sets[k].add(v)
            sets[v].add(k)
    return [np.asarray(sorted(s), dtype=np.intp) for s in sets]


def max_edge_stretch_reference(
    d_sub: np.ndarray,
    sources: np.ndarray,
    ref: GeometricGraph,
    edge_weights: np.ndarray,
) -> float:
    """Per-edge Python loop over reference edges (Theorem 2.2 reduction)."""
    max_edge_stretch = 1.0
    if ref.n_edges:
        src_pos = {int(s): k for k, s in enumerate(sources)}
        for (u, v), w in zip(ref.edges, edge_weights):
            row = src_pos.get(int(u))
            if row is None:
                row = src_pos.get(int(v))
                if row is None:
                    continue
                target = int(u)
            else:
                target = int(v)
            dsub = d_sub[row, target]
            if np.isfinite(dsub) and w > 0:
                max_edge_stretch = max(max_edge_stretch, float(dsub / w))
    return max_edge_stretch


def balancing_decide_reference(
    heights: np.ndarray,
    destinations: np.ndarray,
    threshold: float,
    gamma: float,
    directed_edges: np.ndarray,
    costs: np.ndarray,
) -> list[Transmission]:
    """Per-candidate loop of ``BalancingRouter.decide`` (pre-vectorization).

    ``heights`` is the ``(n_nodes, n_destinations)`` buffer matrix at
    the beginning of the step; it is not modified.
    """
    edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
    costs = np.asarray(costs, dtype=np.float64).reshape(-1)
    if len(edges) == 0:
        return []
    h0 = heights
    avail = h0.copy()

    diff = h0[edges[:, 0], :] - h0[edges[:, 1], :] - gamma * costs[:, None]
    best_col = np.argmax(diff, axis=1)
    best_val = diff[np.arange(len(edges)), best_col]
    candidates = np.nonzero(best_val > threshold)[0]

    out: list[Transmission] = []
    for k in candidates:
        v, w = int(edges[k, 0]), int(edges[k, 1])
        row = h0[v, :] - h0[w, :] - gamma * costs[k]
        usable = avail[v, :] > 0
        if not usable.any():
            continue
        masked = np.where(usable, row, -np.inf)
        col = int(np.argmax(masked))
        if masked[col] <= threshold:
            continue
        avail[v, col] -= 1
        out.append(
            Transmission(src=v, dst=w, dest=int(destinations[col]), cost=float(costs[k]))
        )
    return out
