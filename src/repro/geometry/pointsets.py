"""Node-distribution generators.

The paper's results are quantified over *arbitrary* node distributions
(Theorem 2.2), *civilized* (λ-precision) distributions (Theorem 2.7),
and *uniform random* distributions in the unit square (Lemma 2.10,
Corollary 3.5).  This module provides generators for all of those plus
several adversarial configurations used in tests and benchmarks:

* :func:`uniform_points` — i.i.d. uniform in a square;
* :func:`grid_points` / :func:`perturbed_grid_points` — lattice layouts;
* :func:`clustered_points` — Gaussian-mixture clusters (non-uniform);
* :func:`ring_points`, :func:`line_points` — 1-D-ish layouts that stress
  the degree/stretch analysis;
* :func:`civilized_points` / :func:`poisson_disk_points` — λ-precision
  sets where all pairwise distances are ≥ λ·D;
* :func:`star_points` — the classic Ω(n)-degree adversarial input for
  the Yao graph (many nodes on a tight arc around a hub);
* :func:`two_cluster_bridge_points` — two dense blobs joined by one long
  edge, exercising the long-edge cases of the stretch proof.

All generators return float64 arrays of shape ``(n, 2)`` and take a
``rng`` argument per :func:`repro.utils.rng.as_rng`.  Generators never
return duplicate points (ΘALG assumes unique pairwise distances; exact
duplicates would make sectors undefined).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import as_points, pairwise_sq_distances
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "uniform_points",
    "grid_points",
    "perturbed_grid_points",
    "clustered_points",
    "ring_points",
    "line_points",
    "civilized_points",
    "poisson_disk_points",
    "star_points",
    "two_cluster_bridge_points",
    "min_pairwise_distance",
    "precision_lambda",
    "DISTRIBUTIONS",
]


def _require_n(n: int) -> int:
    if int(n) != n or n < 1:
        raise ValueError(f"n must be a positive integer, got {n!r}")
    return int(n)


def uniform_points(n: int, *, side: float = 1.0, rng=None) -> np.ndarray:
    """``n`` i.i.d. uniform points in the square ``[0, side]^2``."""
    n = _require_n(n)
    check_positive("side", side)
    gen = as_rng(rng)
    return gen.uniform(0.0, side, size=(n, 2))


def grid_points(n: int, *, side: float = 1.0) -> np.ndarray:
    """The densest ``ceil(sqrt(n))``-per-side lattice, truncated to ``n`` points."""
    n = _require_n(n)
    check_positive("side", side)
    k = int(math.ceil(math.sqrt(n)))
    xs = np.linspace(0.0, side, k)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    pts = np.column_stack([gx.ravel(), gy.ravel()])
    return pts[:n]


def perturbed_grid_points(n: int, *, side: float = 1.0, jitter: float = 0.25, rng=None) -> np.ndarray:
    """Lattice points jittered by ``jitter`` × cell size (breaks distance ties)."""
    n = _require_n(n)
    check_in_range("jitter", jitter, 0.0, 0.49)
    k = int(math.ceil(math.sqrt(n)))
    cell = side / max(k - 1, 1)
    pts = grid_points(n, side=side)
    gen = as_rng(rng)
    return pts + gen.uniform(-jitter * cell, jitter * cell, size=pts.shape)


def clustered_points(
    n: int,
    *,
    n_clusters: int = 5,
    side: float = 1.0,
    spread: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Gaussian-mixture layout: ``n_clusters`` centers, isotropic ``spread``.

    Points are clipped to ``[0, side]^2`` so the transmission-graph
    geometry stays comparable to the uniform case.
    """
    n = _require_n(n)
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    check_positive("spread", spread)
    gen = as_rng(rng)
    centers = gen.uniform(0.15 * side, 0.85 * side, size=(n_clusters, 2))
    labels = gen.integers(0, n_clusters, size=n)
    pts = centers[labels] + gen.normal(0.0, spread * side, size=(n, 2))
    return np.clip(pts, 0.0, side)


def ring_points(
    n: int, *, radius: float = 0.5, center=(0.5, 0.5), jitter: float = 0.0, rng=None
) -> np.ndarray:
    """``n`` points evenly spaced on a circle, optionally jittered radially."""
    n = _require_n(n)
    check_positive("radius", radius)
    ang = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    r = np.full(n, radius)
    if jitter > 0:
        r = r + as_rng(rng).uniform(-jitter, jitter, size=n) * radius
    c = np.asarray(center, dtype=np.float64)
    return np.column_stack([c[0] + r * np.cos(ang), c[1] + r * np.sin(ang)])


def line_points(n: int, *, length: float = 1.0, jitter: float = 0.0, rng=None) -> np.ndarray:
    """``n`` points on a horizontal segment, optionally jittered vertically.

    A worst case for hop counts: the transmission graph of a line is a
    path when D is small.
    """
    n = _require_n(n)
    check_positive("length", length)
    xs = np.linspace(0.0, length, n)
    ys = np.zeros(n)
    if jitter > 0:
        ys = as_rng(rng).uniform(-jitter, jitter, size=n)
    return np.column_stack([xs, ys])


def poisson_disk_points(
    n: int,
    *,
    min_dist: float,
    side: float = 1.0,
    rng=None,
    max_tries: int = 200,
) -> np.ndarray:
    """Up to ``n`` points in ``[0, side]^2`` with pairwise distance ≥ ``min_dist``.

    Dart-throwing with a uniform grid for neighbor rejection (cell size
    ``min_dist/√2`` so each cell holds at most one point).  Raises
    ``RuntimeError`` if ``n`` points cannot be placed — callers should
    keep ``n · min_dist²`` comfortably below ``side²``.
    """
    n = _require_n(n)
    check_positive("min_dist", min_dist)
    check_positive("side", side)
    gen = as_rng(rng)
    cell = min_dist / math.sqrt(2.0)
    n_cells = max(1, int(math.ceil(side / cell)))
    occupancy: dict[tuple[int, int], int] = {}
    pts = np.empty((n, 2), dtype=np.float64)
    count = 0
    md2 = min_dist * min_dist
    tries = 0
    while count < n:
        tries += 1
        if tries > max_tries * n:
            raise RuntimeError(
                f"could not place {n} points at min_dist={min_dist} in side={side}; "
                f"placed {count}"
            )
        p = gen.uniform(0.0, side, size=2)
        cx, cy = int(p[0] / cell), int(p[1] / cell)
        ok = True
        for dx in range(-2, 3):
            for dy in range(-2, 3):
                j = occupancy.get((cx + dx, cy + dy))
                if j is not None:
                    q = pts[j]
                    if (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2 < md2:
                        ok = False
                        break
            if not ok:
                break
        if ok:
            pts[count] = p
            occupancy[(cx, cy)] = count
            count += 1
    del n_cells  # documented sizing hint only
    return pts


def civilized_points(
    n: int,
    *,
    lam: float = 0.5,
    max_range: float | None = None,
    side: float = 1.0,
    rng=None,
) -> np.ndarray:
    """λ-precision ("civilized") point set per §2.3.

    All pairwise distances are ≥ ``lam * max_range`` where ``max_range``
    is the maximum transmission range D.  The ratio of the longest
    possible edge (≤ D) to the shortest pairwise distance is then
    ≤ 1/λ, a constant — the civilized-graph property.

    The default ``max_range`` is the capacity-critical spacing
    ``0.875·side/√n``: dart-throwing then places points at packing
    fraction ≈ 0.6·λ², safely below the random sequential adsorption
    jamming limit for λ ≤ 0.8.  Larger λ (or an explicit, larger
    ``max_range``) may make placement infeasible, in which case
    :func:`poisson_disk_points` raises ``RuntimeError``.
    """
    check_in_range("lam", lam, 0.0, 1.0, inclusive=(False, True))
    if max_range is None:
        max_range = 0.875 * side / math.sqrt(n)
    min_dist = lam * max_range
    return poisson_disk_points(n, min_dist=min_dist, side=side, rng=rng)


def critical_range(n: int, *, side: float = 1.0, safety: float = 2.0) -> float:
    """Connectivity-critical radius for n uniform points in ``[0, side]^2``.

    Random geometric graphs become connected whp around
    ``r = sqrt(ln n / (π n))``; ``safety`` scales above that threshold.
    """
    n = _require_n(n)
    if n == 1:
        return side
    return min(float(side * safety * math.sqrt(math.log(n) / (math.pi * n))), side * math.sqrt(2.0))


def star_points(n: int, *, arc: float = 0.05, radius: float = 1.0, rng=None) -> np.ndarray:
    """Hub at the origin plus ``n-1`` points packed on a tight arc.

    This is the classic adversarial input on which the plain Yao graph
    has Ω(n) in-degree at the hub: every arc point's cone toward the
    origin contains only the origin, so all of them pick the hub as a
    Yao neighbor.  ΘALG's phase 2 must prune these down to O(1).

    Points sit at slightly increasing radii so all pairwise distances
    are unique.
    """
    n = _require_n(n)
    check_positive("radius", radius)
    gen = as_rng(rng)
    m = n - 1
    pts = np.zeros((n, 2), dtype=np.float64)
    if m:
        ang = np.linspace(0.0, arc, m) + gen.uniform(0, arc * 1e-3, size=m)
        # Tiny radius stagger for unique hub distances; it must stay far
        # below the angular spacing arc/m, or the inward direction from
        # one arc point to the previous one falls into the same sector
        # as the hub and steals the Yao choice.
        r = radius * (1.0 + 1e-9 * np.arange(m))
        pts[1:, 0] = r * np.cos(ang)
        pts[1:, 1] = r * np.sin(ang)
    return pts


def two_cluster_bridge_points(
    n: int,
    *,
    gap: float = 0.8,
    spread: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Two dense blobs separated by ``gap``, connected only by a long hop.

    Exercises the long-edge branches (Case 2) of the Theorem 2.2 stretch
    proof: the minimum-energy path between clusters must cross the gap.
    """
    n = _require_n(n)
    check_positive("gap", gap)
    gen = as_rng(rng)
    half = n // 2
    a = gen.normal(0.0, spread, size=(half, 2))
    b = gen.normal(0.0, spread, size=(n - half, 2)) + np.array([gap, 0.0])
    return np.vstack([a, b])


def min_pairwise_distance(points: np.ndarray) -> float:
    """Smallest pairwise distance of a point set (∞ for a single point)."""
    pts = as_points(points)
    if len(pts) < 2:
        return math.inf
    d2 = pairwise_sq_distances(pts)
    np.fill_diagonal(d2, np.inf)
    return float(math.sqrt(d2.min()))


def precision_lambda(points: np.ndarray, max_range: float) -> float:
    """λ such that the point set is λ-precision w.r.t. ``max_range``.

    Per §2.3 a set is civilized when the ratio of minimum pairwise
    distance to the maximum edge length (≤ max_range) is bounded below
    by a constant λ.
    """
    check_positive("max_range", max_range)
    return min_pairwise_distance(points) / max_range


#: Registry used by experiment sweeps: name → generator(n, rng=...) closure.
DISTRIBUTIONS = {
    "uniform": lambda n, rng=None: uniform_points(n, rng=rng),
    "clustered": lambda n, rng=None: clustered_points(n, rng=rng),
    "perturbed_grid": lambda n, rng=None: perturbed_grid_points(n, rng=rng),
    "ring": lambda n, rng=None: ring_points(n, jitter=0.05, rng=rng),
    "civilized": lambda n, rng=None: civilized_points(n, rng=rng),
    "two_cluster": lambda n, rng=None: two_cluster_bridge_points(n, rng=rng),
}
