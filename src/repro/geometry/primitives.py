"""Vectorized 2-D geometric primitives.

All functions accept ``(n, 2)`` float arrays of point coordinates and
return NumPy arrays; nothing here loops in Python over points.  Angles
are in radians and normalized to ``[0, 2π)`` unless stated otherwise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "pairwise_distances",
    "pairwise_sq_distances",
    "distances_from",
    "angles_from",
    "angle_between",
    "normalize_angle",
    "polygon_area",
    "TWO_PI",
]

TWO_PI = 2.0 * np.pi


def as_points(points: np.ndarray) -> np.ndarray:
    """Validate and coerce ``points`` into a float64 ``(n, 2)`` array."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    if not np.all(np.isfinite(pts)):
        raise ValueError("points must be finite")
    return pts


def pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of squared Euclidean distances.

    Computed by direct coordinate differencing (chunked over rows to
    bound peak memory) rather than the Gram-matrix expansion
    ``|a|² + |b|² − 2a·b``: the expansion loses all significant digits
    when two points are much closer together than their distance to the
    origin, and nearest-neighbor geometry is exactly where that matters.
    """
    pts = as_points(points)
    n = len(pts)
    d2 = np.empty((n, n), dtype=np.float64)
    chunk = max(1, min(n, 8_388_608 // max(n, 1)))  # ≤ ~64 MiB per temp
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dx = pts[start:stop, None, 0] - pts[None, :, 0]
        dy = pts[start:stop, None, 1] - pts[None, :, 1]
        d2[start:stop] = dx * dx + dy * dy
    np.fill_diagonal(d2, 0.0)
    return d2


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of Euclidean distances."""
    return np.sqrt(pairwise_sq_distances(points))


def distances_from(points: np.ndarray, origin: np.ndarray) -> np.ndarray:
    """Euclidean distance from each of ``points`` to a single ``origin``."""
    pts = as_points(points)
    o = np.asarray(origin, dtype=np.float64).reshape(2)
    return np.hypot(pts[:, 0] - o[0], pts[:, 1] - o[1])


def angles_from(points: np.ndarray, origin: np.ndarray) -> np.ndarray:
    """Polar angle in ``[0, 2π)`` of each point as seen from ``origin``.

    The angle of a point coincident with ``origin`` is reported as 0.
    """
    pts = as_points(points)
    o = np.asarray(origin, dtype=np.float64).reshape(2)
    ang = np.arctan2(pts[:, 1] - o[1], pts[:, 0] - o[0])
    return np.mod(ang, TWO_PI)


def normalize_angle(angle: "float | np.ndarray") -> "float | np.ndarray":
    """Map angles onto ``[0, 2π)``."""
    return np.mod(angle, TWO_PI)


def angle_between(a: np.ndarray, apex: np.ndarray, b: np.ndarray) -> float:
    """Unsigned angle ``∠ a-apex-b`` in ``[0, π]``.

    Raises ``ValueError`` if either arm is degenerate (zero length),
    since the angle is then undefined.
    """
    a = np.asarray(a, dtype=np.float64).reshape(2)
    o = np.asarray(apex, dtype=np.float64).reshape(2)
    b = np.asarray(b, dtype=np.float64).reshape(2)
    u = a - o
    v = b - o
    nu = np.hypot(u[0], u[1])
    nv = np.hypot(v[0], v[1])
    if nu == 0.0 or nv == 0.0:
        raise ValueError("angle undefined: an arm of the angle has zero length")
    c = np.clip(np.dot(u, v) / (nu * nv), -1.0, 1.0)
    return float(np.arccos(c))


def polygon_area(vertices: np.ndarray) -> float:
    """Signed area of a simple polygon (positive for CCW orientation).

    Used by the hex-grid tests to confirm tiles partition the plane.
    """
    v = as_points(vertices)
    x, y = v[:, 0], v[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))
