"""2-D Euclidean geometry substrate.

Everything in the paper lives in the 2-dimensional plane: node
positions, the sector (cone) partition used by ΘALG, the guard-zone
disks of the interference model, and the hexagonal tiling of the
honeycomb algorithm.  This package provides those primitives in a
vectorized, NumPy-first style:

* :mod:`repro.geometry.primitives` — distances, angles, pairwise kernels;
* :mod:`repro.geometry.sectors` — the ΘALG cone partition;
* :mod:`repro.geometry.pointsets` — node-distribution generators
  (uniform, clustered, grid, ring, line, λ-precision/civilized, …);
* :mod:`repro.geometry.spatialindex` — a uniform-grid index for range
  queries, used to build transmission graphs in near-linear time;
* :mod:`repro.geometry.hexgrid` — the honeycomb tiling of §3.4.
"""

from repro.geometry.primitives import (
    pairwise_distances,
    pairwise_sq_distances,
    distances_from,
    angles_from,
    angle_between,
    normalize_angle,
    polygon_area,
)
from repro.geometry.sectors import (
    SectorPartition,
    sector_index,
    sector_of,
)
from repro.geometry.pointsets import (
    uniform_points,
    grid_points,
    clustered_points,
    ring_points,
    line_points,
    civilized_points,
    poisson_disk_points,
    star_points,
    two_cluster_bridge_points,
    perturbed_grid_points,
    min_pairwise_distance,
    precision_lambda,
)
from repro.geometry.spatialindex import GridIndex
from repro.geometry.hexgrid import HexGrid

__all__ = [
    "pairwise_distances",
    "pairwise_sq_distances",
    "distances_from",
    "angles_from",
    "angle_between",
    "normalize_angle",
    "polygon_area",
    "SectorPartition",
    "sector_index",
    "sector_of",
    "uniform_points",
    "grid_points",
    "clustered_points",
    "ring_points",
    "line_points",
    "civilized_points",
    "poisson_disk_points",
    "star_points",
    "two_cluster_bridge_points",
    "perturbed_grid_points",
    "min_pairwise_distance",
    "precision_lambda",
    "GridIndex",
    "HexGrid",
]
