"""Hexagonal tiling of the plane for the honeycomb algorithm (§3.4).

The honeycomb algorithm partitions the plane into regular hexagons of
side length ``3 + 2Δ`` (diameter ``2(3+2Δ)``) and assigns each
sender-receiver pair to the hexagon containing the sender.  The key
geometric facts the algorithm relies on are:

* any two points in the same hexagon are within the hexagon diameter;
* each hexagon has exactly 6 neighbors, so a transmission (range ≤ 1)
  can only interfere with transmissions assigned to a bounded number of
  nearby hexagons.

We use "pointy-top" axial coordinates: hexagon ``(q, r)`` has center
``(s·√3·(q + r/2), s·3/2·r)`` for side length ``s``.  Point-to-hex
assignment uses the standard fractional axial-coordinate rounding to
cube coordinates, which exactly matches the Voronoi regions of the
centers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.validation import check_positive

__all__ = ["HexGrid"]

_SQRT3 = math.sqrt(3.0)


class HexGrid:
    """Regular hexagonal tiling with a given side length.

    Parameters
    ----------
    side:
        Hexagon side length ``s``.  §3.4 uses ``s = 3 + 2Δ`` for guard
        zone parameter Δ, via :meth:`for_guard_zone`.
    """

    def __init__(self, side: float) -> None:
        self.side = check_positive("side", side)

    @classmethod
    def for_guard_zone(cls, delta: float) -> "HexGrid":
        """The §3.4 tiling: hexagons of side ``3 + 2Δ``."""
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        return cls(3.0 + 2.0 * delta)

    @property
    def diameter(self) -> float:
        """Hexagon diameter (corner-to-corner), ``2·side``."""
        return 2.0 * self.side

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Axial coordinates ``(q, r)`` of the hexagon containing each point.

        Parameters
        ----------
        points:
            ``(n, 2)`` array (or a single ``(2,)`` point).

        Returns
        -------
        ``(n, 2)`` int64 array of axial coordinates (``(2,)`` for a
        single point).
        """
        single = np.asarray(points).ndim == 1
        pts = as_points(np.atleast_2d(np.asarray(points, dtype=np.float64)))
        s = self.side
        # Fractional axial coordinates (pointy-top orientation).
        qf = (_SQRT3 / 3.0 * pts[:, 0] - 1.0 / 3.0 * pts[:, 1]) / s
        rf = (2.0 / 3.0 * pts[:, 1]) / s
        q, r = _axial_round(qf, rf)
        out = np.column_stack([q, r])
        return out[0] if single else out

    def center_of(self, cells: np.ndarray) -> np.ndarray:
        """Cartesian centers of axial cells ``(q, r)``."""
        single = np.asarray(cells).ndim == 1
        c = np.atleast_2d(np.asarray(cells, dtype=np.float64))
        x = self.side * _SQRT3 * (c[:, 0] + c[:, 1] / 2.0)
        y = self.side * 1.5 * c[:, 1]
        out = np.column_stack([x, y])
        return out[0] if single else out

    def vertices_of(self, cell: np.ndarray) -> np.ndarray:
        """The six corner points of a hexagon, CCW starting at angle 90°."""
        cx, cy = self.center_of(np.asarray(cell))
        ang = np.deg2rad(60.0 * np.arange(6) + 90.0)
        return np.column_stack([cx + self.side * np.cos(ang), cy + self.side * np.sin(ang)])

    def neighbors_of(self, cell) -> np.ndarray:
        """Axial coordinates of the six adjacent hexagons."""
        q, r = int(cell[0]), int(cell[1])
        offs = np.array([(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)], dtype=np.int64)
        return offs + np.array([q, r], dtype=np.int64)

    def group_by_cell(self, points: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        """Map each occupied cell to the indices of the points inside it."""
        cells = self.cell_of(points)
        if cells.ndim == 1:
            cells = cells[None, :]
        out: dict[tuple[int, int], list[int]] = {}
        for i, (q, r) in enumerate(cells):
            out.setdefault((int(q), int(r)), []).append(i)
        return {k: np.asarray(v, dtype=np.intp) for k, v in out.items()}

    def cell_distance(self, a, b) -> int:
        """Hex (grid) distance between two axial cells."""
        dq = int(a[0]) - int(b[0])
        dr = int(a[1]) - int(b[1])
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def _axial_round(qf: np.ndarray, rf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Round fractional axial coordinates to the nearest hex center.

    Standard cube-coordinate rounding: convert to cube (x=q, z=r,
    y=-x-z), round each, then fix the coordinate with the largest
    rounding error so x+y+z == 0 holds exactly.
    """
    xf = qf
    zf = rf
    yf = -xf - zf
    rx = np.round(xf)
    ry = np.round(yf)
    rz = np.round(zf)
    dx = np.abs(rx - xf)
    dy = np.abs(ry - yf)
    dz = np.abs(rz - zf)
    fix_x = (dx > dy) & (dx > dz)
    fix_z = ~fix_x & (dz > dy)
    rx = np.where(fix_x, -ry - rz, rx)
    rz = np.where(fix_z, -rx - ry, rz)
    return rx.astype(np.int64), rz.astype(np.int64)
