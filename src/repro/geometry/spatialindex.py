"""Uniform-grid spatial index for fixed-radius neighbor queries.

Building the transmission graph G* requires, for every node, all nodes
within the maximum transmission range D.  A uniform grid with cell size
D answers each query by scanning the 3×3 block of cells around the query
point, which is O(1 + output) for bounded-density inputs and never worse
than the brute-force scan.

The index is built once over a static point set (node positions are
snapshotted per simulation step; mobility re-builds the index, which at
the n ≤ few-thousand scale of the experiments is cheap and keeps the
code allocation-free inside queries).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.validation import check_positive

__all__ = ["GridIndex"]


class GridIndex:
    """Bucket points of a static set into square cells of size ``cell``.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of positions.
    cell:
        Cell side length; choose the query radius for O(1) queries.
    """

    def __init__(self, points: np.ndarray, cell: float) -> None:
        pts = as_points(points)
        check_positive("cell", cell)
        self._points = pts
        self._cell = float(cell)
        if len(pts):
            self._origin = pts.min(axis=0)
        else:
            self._origin = np.zeros(2)
        keys = self._cell_keys(pts)
        order = np.lexsort((keys[:, 1], keys[:, 0]))
        self._order = order
        sorted_keys = keys[order]
        # Group boundaries of equal (cx, cy) runs in the sorted order.
        if len(pts):
            change = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
            starts = np.concatenate([[0], np.nonzero(change)[0] + 1])
            ends = np.concatenate([starts[1:], [len(pts)]])
            self._buckets = {
                (int(sorted_keys[s, 0]), int(sorted_keys[s, 1])): (int(s), int(e))
                for s, e in zip(starts, ends)
            }
        else:
            self._buckets = {}

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        v = self._points.view()
        v.flags.writeable = False
        return v

    @property
    def cell(self) -> float:
        """Cell side length."""
        return self._cell

    def __len__(self) -> int:
        return len(self._points)

    def _cell_keys(self, pts: np.ndarray) -> np.ndarray:
        return np.floor((pts - self._origin) / self._cell).astype(np.int64)

    def _candidates(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points in cells intersecting the query disk."""
        reach = int(math.ceil(radius / self._cell))
        c = np.floor((np.asarray(center, dtype=np.float64) - self._origin) / self._cell).astype(int)
        chunks = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                rng = self._buckets.get((c[0] + dx, c[1] + dy))
                if rng is not None:
                    chunks.append(self._order[rng[0] : rng[1]])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)

    def query_radius(self, center: np.ndarray, radius: float, *, exclude: int | None = None) -> np.ndarray:
        """Indices of points within ``radius`` of ``center`` (inclusive).

        Parameters
        ----------
        exclude:
            Optional point index to omit (the query point itself).
        """
        check_positive("radius", radius)
        center = np.asarray(center, dtype=np.float64).reshape(2)
        cand = self._candidates(center, radius)
        if len(cand) == 0:
            return cand
        d = self._points[cand] - center
        mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= radius * radius + 1e-12
        out = cand[mask]
        if exclude is not None:
            out = out[out != exclude]
        return np.sort(out)

    def all_pairs_within(self, radius: float) -> np.ndarray:
        """All index pairs ``(i, j), i < j`` with distance ≤ ``radius``.

        Returns an ``(m, 2)`` intp array.  This is the workhorse for
        transmission-graph construction.
        """
        check_positive("radius", radius)
        n = len(self._points)
        pairs: list[np.ndarray] = []
        r2 = radius * radius + 1e-12
        for i in range(n):
            cand = self._candidates(self._points[i], radius)
            cand = cand[cand > i]
            if len(cand) == 0:
                continue
            d = self._points[cand] - self._points[i]
            mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= r2
            hits = cand[mask]
            if len(hits):
                pairs.append(np.column_stack([np.full(len(hits), i, dtype=np.intp), hits]))
        if not pairs:
            return np.empty((0, 2), dtype=np.intp)
        return np.vstack(pairs)
