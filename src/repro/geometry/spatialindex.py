"""Uniform-grid spatial index for fixed-radius neighbor queries.

Building the transmission graph G* requires, for every node, all nodes
within the maximum transmission range D.  A uniform grid with cell size
D answers each query by scanning the 3×3 block of cells around the query
point, which is O(1 + output) for bounded-density inputs and never worse
than the brute-force scan.

The index is built once over a static point set (node positions are
snapshotted per simulation step; mobility re-builds the index).  The
bulk entry points — :meth:`GridIndex.all_pairs_within` and
:meth:`GridIndex.query_radius_many` — process whole cells against their
neighborhoods with broadcasted distance blocks instead of looping one
Python iteration per point, which is what lets transmission-graph
construction scale to tens of thousands of nodes (see
``docs/performance.md``).
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.arrays import ragged_arange
from repro.utils.validation import check_positive

__all__ = ["GridIndex", "DynamicGridIndex"]

#: Cap on candidate pairs materialized per broadcast block (memory bound).
_PAIR_BUDGET = 1 << 22


class GridIndex:
    """Bucket points of a static set into square cells of size ``cell``.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of positions.
    cell:
        Cell side length; choose the query radius for O(1) queries.
    """

    def __init__(self, points: np.ndarray, cell: float) -> None:
        pts = as_points(points)
        check_positive("cell", cell)
        self._points = pts
        self._cell = float(cell)
        if len(pts):
            self._origin = pts.min(axis=0)
        else:
            self._origin = np.zeros(2)
        keys = self._cell_keys(pts)
        order = np.lexsort((keys[:, 1], keys[:, 0]))
        self._order = order
        self._sorted_points = pts[order] if len(pts) else pts
        sorted_keys = keys[order]
        if len(pts):
            # Unique occupied cells with the start/count of their runs in
            # the sorted order.  Cells are encoded as a single int64 code
            # cx * ny + cy (both shifted non-negative), which preserves
            # the (cx, cy) lexicographic order of the sort above.
            change = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
            starts = np.concatenate([[0], np.nonzero(change)[0] + 1]).astype(np.intp)
            counts = np.diff(np.concatenate([starts, [len(pts)]])).astype(np.intp)
            cells = sorted_keys[starts]
            self._key_min = keys.min(axis=0)
            self._key_max = keys.max(axis=0)
            self._ny = int(self._key_max[1] - self._key_min[1] + 1)
            self._cell_codes = self._encode(cells)
            self._cell_starts = starts
            self._cell_counts = counts
            self._buckets = {
                (int(cx), int(cy)): (int(s), int(s + c))
                for (cx, cy), s, c in zip(cells, starts, counts)
            }
        else:
            self._key_min = np.zeros(2, dtype=np.int64)
            self._key_max = np.zeros(2, dtype=np.int64)
            self._ny = 1
            self._cell_codes = np.empty(0, dtype=np.int64)
            self._cell_starts = np.empty(0, dtype=np.intp)
            self._cell_counts = np.empty(0, dtype=np.intp)
            self._buckets = {}

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        v = self._points.view()
        v.flags.writeable = False
        return v

    @property
    def cell(self) -> float:
        """Cell side length."""
        return self._cell

    def __len__(self) -> int:
        return len(self._points)

    def _cell_keys(self, pts: np.ndarray) -> np.ndarray:
        return np.floor((pts - self._origin) / self._cell).astype(np.int64)

    def _encode(self, keys: np.ndarray) -> np.ndarray:
        """Map (cx, cy) cell keys to sorted scalar codes (see __init__)."""
        return (keys[:, 0] - self._key_min[0]) * np.int64(self._ny) + (
            keys[:, 1] - self._key_min[1]
        )

    def _lookup_cells(self, keys: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Per query cell key, the (start, count) of its sorted run.

        Unoccupied (or out-of-range) cells get count 0.
        """
        starts = np.zeros(len(keys), dtype=np.intp)
        counts = np.zeros(len(keys), dtype=np.intp)
        if len(self._cell_codes) == 0 or len(keys) == 0:
            return starts, counts
        # cy outside the indexed strip would alias another cell's code.
        valid = (
            (keys[:, 1] >= self._key_min[1])
            & (keys[:, 1] <= self._key_max[1])
            & (keys[:, 0] >= self._key_min[0])
            & (keys[:, 0] <= self._key_max[0])
        )
        codes = self._encode(keys[valid])
        pos = np.searchsorted(self._cell_codes, codes)
        pos[pos == len(self._cell_codes)] = 0
        found = self._cell_codes[pos] == codes
        vidx = np.nonzero(valid)[0][found]
        starts[vidx] = self._cell_starts[pos[found]]
        counts[vidx] = self._cell_counts[pos[found]]
        return starts, counts

    def _candidates(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points in cells intersecting the query disk."""
        reach = int(math.ceil(radius / self._cell))
        c = np.floor((np.asarray(center, dtype=np.float64) - self._origin) / self._cell).astype(int)
        chunks = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                rng = self._buckets.get((c[0] + dx, c[1] + dy))
                if rng is not None:
                    chunks.append(self._order[rng[0] : rng[1]])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)

    def query_radius(self, center: np.ndarray, radius: float, *, exclude: int | None = None) -> np.ndarray:
        """Indices of points within ``radius`` of ``center`` (inclusive).

        Parameters
        ----------
        exclude:
            Optional point index to omit (the query point itself).
        """
        check_positive("radius", radius)
        center = np.asarray(center, dtype=np.float64).reshape(2)
        cand = self._candidates(center, radius)
        if len(cand) == 0:
            return cand
        d = self._points[cand] - center
        mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= radius * radius + 1e-12
        out = cand[mask]
        if exclude is not None:
            out = out[out != exclude]
        return np.sort(out)

    def query_radius_many(
        self, centers: np.ndarray, radius: float
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Batched :meth:`query_radius` over many centers at once.

        Parameters
        ----------
        centers:
            ``(q, 2)`` array of query positions.
        radius:
            Shared query radius (inclusive, same epsilon as
            :meth:`query_radius`).

        Returns
        -------
        ``(indptr, indices)`` in CSR layout: the hits of query ``k`` are
        ``indices[indptr[k]:indptr[k + 1]]``, sorted ascending — exactly
        what ``query_radius`` returns for that center (no ``exclude``).
        """
        check_positive("radius", radius)
        centers = as_points(np.atleast_2d(centers))
        q = len(centers)
        indptr = np.zeros(q + 1, dtype=np.intp)
        if q == 0 or len(self._points) == 0:
            return indptr, np.empty(0, dtype=np.intp)
        reach = int(math.ceil(radius / self._cell))
        ckeys = self._cell_keys(centers)
        r2 = radius * radius + 1e-12
        qid_chunks: list[np.ndarray] = []
        hit_chunks: list[np.ndarray] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                starts, counts = self._lookup_cells(ckeys + np.array([dx, dy]))
                occupied = np.nonzero(counts)[0]
                if len(occupied) == 0:
                    continue
                qids = np.repeat(occupied, counts[occupied])
                spos = ragged_arange(starts[occupied], counts[occupied])
                d = self._sorted_points[spos] - centers[qids]
                mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= r2
                qid_chunks.append(qids[mask])
                hit_chunks.append(self._order[spos[mask]])
        if not qid_chunks:
            return indptr, np.empty(0, dtype=np.intp)
        qids = np.concatenate(qid_chunks)
        hits = np.concatenate(hit_chunks)
        order = np.lexsort((hits, qids))
        np.cumsum(np.bincount(qids, minlength=q), out=indptr[1:])
        return indptr, hits[order]

    def all_pairs_within(self, radius: float) -> np.ndarray:
        """All index pairs ``(i, j), i < j`` with distance ≤ ``radius``.

        Returns an ``(m, 2)`` intp array sorted lexicographically.  This
        is the workhorse for transmission-graph construction: instead of
        one query per point, each occupied cell is compared against the
        half of its neighborhood with a larger cell code (plus itself),
        so every unordered cell pair is broadcast exactly once.
        """
        check_positive("radius", radius)
        n = len(self._points)
        if n < 2 or len(self._cell_codes) == 0:
            return np.empty((0, 2), dtype=np.intp)
        reach = int(math.ceil(radius / self._cell))
        cells = np.column_stack(
            [
                self._cell_codes // self._ny + self._key_min[0],
                self._cell_codes % self._ny + self._key_min[1],
            ]
        )
        # Half neighborhood: (0, 0) handles intra-cell pairs; the rest
        # covers each unordered cell pair once.
        offsets = [(0, 0)]
        offsets += [(0, dy) for dy in range(1, reach + 1)]
        offsets += [
            (dx, dy) for dx in range(1, reach + 1) for dy in range(-reach, reach + 1)
        ]
        r2 = radius * radius + 1e-12
        chunks: list[np.ndarray] = []
        for off in offsets:
            nb_starts, nb_counts = self._lookup_cells(cells + np.array(off))
            pair_counts = self._cell_counts * nb_counts
            live = np.nonzero(pair_counts)[0]
            if len(live) == 0:
                continue
            # Chunk cell pairs so one broadcast block stays within budget.
            cum = np.cumsum(pair_counts[live])
            lo = 0
            while lo < len(live):
                base = cum[lo - 1] if lo else 0
                hi = int(np.searchsorted(cum, base + _PAIR_BUDGET))
                hi = max(hi, lo + 1)
                block = live[lo:hi]
                lo = hi
                a_starts = self._cell_starts[block]
                a_counts = self._cell_counts[block]
                b_starts = nb_starts[block]
                b_counts = nb_counts[block]
                # Left side: every point of cell A, each repeated |B| times.
                a_pos = ragged_arange(a_starts, a_counts)
                reps = np.repeat(b_counts, a_counts)
                left = np.repeat(a_pos, reps)
                # Right side: the full B block per A point.
                right = ragged_arange(np.repeat(b_starts, a_counts), reps)
                d = self._sorted_points[left] - self._sorted_points[right]
                mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= r2
                li = self._order[left[mask]]
                ri = self._order[right[mask]]
                keep = li < ri if off == (0, 0) else li != ri
                # off == (0, 0) broadcasts A×A, so keep each unordered
                # pair once; other offsets see each pair exactly once but
                # in arbitrary orientation.
                lo_idx = np.minimum(li[keep], ri[keep])
                hi_idx = np.maximum(li[keep], ri[keep])
                if len(lo_idx):
                    chunks.append(np.column_stack([lo_idx, hi_idx]))
        if not chunks:
            return np.empty((0, 2), dtype=np.intp)
        pairs = np.vstack(chunks)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return pairs[order]

class DynamicGridIndex:
    """Incrementally updatable uniform grid over a mutable point set.

    :class:`GridIndex` is built once over a frozen array; the dynamic
    subsystem (:mod:`repro.dynamic`) instead needs a structure that
    survives joins, leaves, and moves without an O(n) rebuild per
    event.  This index keeps a growable position array plus per-cell
    Python sets of live node ids: every mutation touches exactly one or
    two cells, and a radius query scans the same O((r/cell)²) cell
    block as the static index with the same inclusive epsilon
    (``d² ≤ r² + 1e-12``), so query results agree bit-for-bit with
    ``GridIndex`` built on the live snapshot.

    Node ids are stable small integers.  :meth:`insert` accepts either
    the next unused id (the set grows) or a previously removed id (the
    slot is re-populated); :meth:`remove` keeps the position so a
    failed node can recover in place.
    """

    def __init__(self, points: np.ndarray, cell: float) -> None:
        pts = as_points(points)
        check_positive("cell", cell)
        self._cell = float(cell)
        cap = max(len(pts), 16)
        self._pos = np.zeros((cap, 2), dtype=np.float64)
        self._pos[: len(pts)] = pts
        self._alive = np.zeros(cap, dtype=bool)
        self._alive[: len(pts)] = True
        self._size = len(pts)  # ids ever seen are 0..size-1
        self._n_alive = len(pts)
        self._buckets: "dict[tuple[int, int], set[int]]" = {}
        for i in range(len(pts)):
            self._buckets.setdefault(self._key(pts[i]), set()).add(i)

    def _key(self, p: np.ndarray) -> "tuple[int, int]":
        return (int(math.floor(p[0] / self._cell)), int(math.floor(p[1] / self._cell)))

    def cell_key(self, p: np.ndarray) -> "tuple[int, int]":
        """Grid-cell key ``(cx, cy)`` containing position ``p``.

        Exposed for the dynamic batching layer, which unions events by
        the cells their dirty disks can reach (see
        :mod:`repro.dynamic.batching`).
        """
        p = np.asarray(p, dtype=np.float64).reshape(2)
        return self._key(p)

    def __len__(self) -> int:
        """Number of live nodes."""
        return self._n_alive

    @property
    def size(self) -> int:
        """One past the highest node id ever inserted."""
        return self._size

    @property
    def cell(self) -> float:
        """Cell side length."""
        return self._cell

    def is_alive(self, node: int) -> bool:
        return 0 <= node < self._size and bool(self._alive[node])

    def position(self, node: int) -> np.ndarray:
        """Last known position of ``node`` (also valid while removed)."""
        if not 0 <= node < self._size:
            raise KeyError(f"unknown node id {node}")
        return self._pos[node].copy()

    def alive_ids(self) -> np.ndarray:
        """Sorted array of live node ids."""
        return np.nonzero(self._alive[: self._size])[0]

    def positions_of(self, ids: np.ndarray) -> np.ndarray:
        """Positions of the given node ids (vectorized, no copy checks)."""
        return self._pos[np.asarray(ids, dtype=np.intp)]

    def live_points(self) -> np.ndarray:
        """Positions of live nodes, in :meth:`alive_ids` order."""
        return self._pos[: self._size][self._alive[: self._size]].copy()

    def all_positions(self) -> np.ndarray:
        """``(size, 2)`` positions of every id ever seen (read-only view).

        Dead slots keep their last known position; callers that need a
        stable snapshot must copy (the buffer mutates on later events).
        """
        v = self._pos[: self._size].view()
        v.flags.writeable = False
        return v

    def bounds(self) -> "tuple[float, float, float, float]":
        """``(x0, y0, x1, y1)`` bounding box of the live positions.

        The tile layer (:mod:`repro.parallel`) covers this box with a
        worker-owned grid; an empty index yields a degenerate origin box.
        """
        live = self._pos[: self._size][self._alive[: self._size]]
        if len(live) == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            float(live[:, 0].min()),
            float(live[:, 1].min()),
            float(live[:, 0].max()),
            float(live[:, 1].max()),
        )

    def share_buffers(self, arena, capacity: int) -> "tuple[object, object]":
        """Move ``_pos`` / ``_alive`` into shared memory (pre-fork).

        The tile worker pool calls this *before* forking so parent and
        workers see one physical copy of the coordinate state: the
        parent applies every position/alive mutation, workers replay
        only the private bucket bookkeeping
        (:meth:`apply_shared_mutation`).  Returns the two
        :class:`~repro.parallel.shm.ShmHandle` objects.  ``capacity``
        is a hard ceiling — shared buffers cannot be reallocated across
        processes, so growth beyond it raises instead of silently
        forking the state.
        """
        capacity = int(capacity)
        if capacity < len(self._alive):
            raise ValueError(
                f"shared capacity {capacity} below current capacity {len(self._alive)}"
            )
        pos = arena.empty((capacity, 2), np.float64)
        alive = arena.empty((capacity,), np.bool_)
        pos[: len(self._alive)] = self._pos[: len(self._alive)]
        alive[: len(self._alive)] = self._alive[: len(self._alive)]
        self._pos, self._alive = pos, alive
        self._shared = True
        return arena.handle(pos), arena.handle(alive)

    def unshare_buffers(self) -> None:
        """Copy shared buffers back to private arrays (pre-unlink).

        Must run before the owning arena unmaps its segments: the index
        would otherwise keep numpy views into unmapped pages and the
        next position read would fault.  Idempotent; a no-op when the
        buffers were never shared.
        """
        if not getattr(self, "_shared", False):
            return
        self._pos = self._pos.copy()
        self._alive = self._alive.copy()
        self._shared = False

    def apply_shared_mutation(
        self,
        op: str,
        node: int,
        old_key: "tuple[int, int] | None",
        new_key: "tuple[int, int] | None",
    ) -> None:
        """Replay one mutation's *bucket* bookkeeping (worker side).

        With :meth:`share_buffers` active, the parent already wrote the
        new position/alive flag into the shared arrays before this
        record arrives; only the per-process bucket sets, size, and
        live count remain to update.  ``op`` is ``"insert"``,
        ``"remove"``, ``"move"``, or ``"noop"`` (dead-slot position
        update — fully covered by the shared buffers).
        """
        node = int(node)
        if op == "insert":
            self._size = max(self._size, node + 1)
            self._n_alive += 1
            self._buckets.setdefault(new_key, set()).add(node)
        elif op == "remove":
            bucket = self._buckets[old_key]
            bucket.discard(node)
            if not bucket:
                del self._buckets[old_key]
            self._n_alive -= 1
        elif op == "move":
            if new_key != old_key:
                bucket = self._buckets[old_key]
                bucket.discard(node)
                if not bucket:
                    del self._buckets[old_key]
                self._buckets.setdefault(new_key, set()).add(node)
        elif op != "noop":  # pragma: no cover - protocol error
            raise ValueError(f"unknown shared mutation op {op!r}")

    def _grow_to(self, node: int) -> None:
        if node < len(self._alive):
            return
        if getattr(self, "_shared", False):
            cap = len(self._alive)
            need = (node + 1) * (2 * self._pos.itemsize + self._alive.itemsize)
            have = cap * (2 * self._pos.itemsize + self._alive.itemsize)
            raise RuntimeError(
                f"node id {node} exceeds the shared-buffer capacity {cap} "
                f"(would need {need:,} bytes, segments hold {have:,} bytes, "
                f"owner pid {os.getpid()}); shared buffers cannot grow "
                "across processes — size the pool's capacity above the "
                "trace's highest node id"
            )
        cap = max(2 * len(self._alive), node + 1)
        pos = np.zeros((cap, 2), dtype=np.float64)
        pos[: len(self._alive)] = self._pos[: len(self._alive)]
        alive = np.zeros(cap, dtype=bool)
        alive[: len(self._alive)] = self._alive[: len(self._alive)]
        self._pos, self._alive = pos, alive

    def insert(self, node: int, p: np.ndarray) -> None:
        """Add ``node`` at position ``p`` (new id or re-populated slot)."""
        node = int(node)
        if node < 0 or node > self._size:
            raise ValueError(f"node id {node} skips ids (next unused is {self._size})")
        if node < self._size and self._alive[node]:
            raise ValueError(f"node {node} is already present")
        p = np.asarray(p, dtype=np.float64).reshape(2)
        self._grow_to(node)
        self._pos[node] = p
        self._alive[node] = True
        self._size = max(self._size, node + 1)
        self._n_alive += 1
        self._buckets.setdefault(self._key(p), set()).add(node)

    def remove(self, node: int) -> None:
        """Remove ``node`` (position retained for a later re-insert)."""
        node = int(node)
        if not self.is_alive(node):
            raise ValueError(f"node {node} is not present")
        key = self._key(self._pos[node])
        bucket = self._buckets[key]
        bucket.discard(node)
        if not bucket:
            del self._buckets[key]
        self._alive[node] = False
        self._n_alive -= 1

    def move(self, node: int, p: np.ndarray) -> None:
        """Move live ``node`` to position ``p``."""
        node = int(node)
        if not self.is_alive(node):
            raise ValueError(f"node {node} is not present")
        p = np.asarray(p, dtype=np.float64).reshape(2)
        old_key = self._key(self._pos[node])
        new_key = self._key(p)
        if new_key != old_key:
            bucket = self._buckets[old_key]
            bucket.discard(node)
            if not bucket:
                del self._buckets[old_key]
            self._buckets.setdefault(new_key, set()).add(node)
        self._pos[node] = p

    def set_dead_position(self, node: int, p: np.ndarray) -> None:
        """Update the retained position of a dead ``node`` (no buckets)."""
        node = int(node)
        if node >= self._size or self._alive[node]:
            raise ValueError(f"node {node} is not a dead slot")
        self._pos[node] = np.asarray(p, dtype=np.float64).reshape(2)

    def query_radius(
        self, center: np.ndarray, radius: float, *, exclude: "int | None" = None
    ) -> np.ndarray:
        """Sorted live node ids within ``radius`` of ``center`` (inclusive).

        Matches :meth:`GridIndex.query_radius` on the live snapshot,
        including the ``+1e-12`` epsilon on the squared distance.
        """
        check_positive("radius", radius)
        center = np.asarray(center, dtype=np.float64).reshape(2)
        reach = int(math.ceil(radius / self._cell))
        cx = int(math.floor(center[0] / self._cell))
        cy = int(math.floor(center[1] / self._cell))
        cand: "list[int]" = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self._buckets.get((cx + dx, cy + dy))
                if bucket:
                    cand.extend(bucket)
        if not cand:
            return np.empty(0, dtype=np.intp)
        idx = np.asarray(cand, dtype=np.intp)
        d = self._pos[idx] - center
        mask = d[:, 0] ** 2 + d[:, 1] ** 2 <= radius * radius + 1e-12
        out = idx[mask]
        if exclude is not None:
            out = out[out != exclude]
        return np.sort(out)
