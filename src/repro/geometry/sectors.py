"""The sector (cone) partition used by ΘALG.

Each node ``u`` divides the ``2π`` of directions around itself into
``k = ceil(2π/θ)`` equal cones.  ``S(u, v)`` — "the sector of ``u``
containing ``v``" in the paper's notation — is then just the index of
the cone that the direction ``u → v`` falls into.

The partition is *anchored*: cone ``i`` covers directions
``[offset + i·w, offset + (i+1)·w)`` where ``w = 2π/k``.  The paper
implicitly anchors at 0; we expose the offset so the anchor-sensitivity
ablation (DESIGN.md §4) can randomize it per node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.primitives import TWO_PI, angles_from
from repro.utils.validation import check_in_range

__all__ = ["SectorPartition", "sector_index", "sector_of"]


@dataclass(frozen=True)
class SectorPartition:
    """A partition of direction space into equal cones of width ≤ θ.

    Parameters
    ----------
    theta:
        Target cone angle in radians; must lie in ``(0, π/3]`` as required
        by the paper's analysis (Lemma 2.1 needs ``θ ≤ π/3``).
    offset:
        Anchor direction of cone 0, in radians.

    Notes
    -----
    The actual cone width is ``2π / ceil(2π/θ) ≤ θ`` so that the cones
    tile direction space exactly.
    """

    theta: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("theta", self.theta, 0.0, math.pi / 3.0, inclusive=(False, True))

    @property
    def n_sectors(self) -> int:
        """Number of cones, ``ceil(2π/θ)``."""
        return int(math.ceil(TWO_PI / self.theta - 1e-12))

    @property
    def width(self) -> float:
        """Actual cone width ``2π / n_sectors`` (≤ theta)."""
        return TWO_PI / self.n_sectors

    def index_of_angle(self, angle: "float | np.ndarray") -> "int | np.ndarray":
        """Cone index for direction(s) ``angle`` (radians, any range)."""
        rel = np.mod(np.asarray(angle, dtype=np.float64) - self.offset, TWO_PI)
        # np.mod can return exactly TWO_PI after round-off (e.g. for a
        # tiny negative input); 2π ≡ 0, so fold that back to 0 before
        # the floor division.
        rel = np.where(rel >= TWO_PI, 0.0, rel)
        idx = np.floor_divide(rel, self.width).astype(np.intp)
        idx = np.where(idx >= self.n_sectors, 0, idx)
        if idx.ndim == 0:
            return int(idx)
        return idx

    def indices_from(self, points: np.ndarray, origin: np.ndarray) -> np.ndarray:
        """Cone index of every point as seen from ``origin`` (vectorized)."""
        return self.index_of_angle(angles_from(points, origin))

    def bounds(self, index: int) -> tuple[float, float]:
        """``(low, high)`` direction bounds of cone ``index`` (low inclusive)."""
        if not 0 <= index < self.n_sectors:
            raise IndexError(f"sector index {index} out of range [0, {self.n_sectors})")
        lo = (self.offset + index * self.width) % TWO_PI
        return lo, (lo + self.width) % TWO_PI


def sector_index(theta: float, angle: "float | np.ndarray", offset: float = 0.0) -> "int | np.ndarray":
    """Convenience wrapper: cone index of ``angle`` under cone width θ."""
    return SectorPartition(theta, offset).index_of_angle(angle)


def sector_of(theta: float, u: np.ndarray, v: np.ndarray, offset: float = 0.0) -> int:
    """``S(u, v)`` — index of the cone of ``u`` containing node ``v``."""
    u = np.asarray(u, dtype=np.float64).reshape(2)
    v = np.asarray(v, dtype=np.float64).reshape(2)
    if np.allclose(u, v):
        raise ValueError("S(u, v) undefined for coincident points")
    ang = math.atan2(v[1] - u[1], v[0] - u[0]) % TWO_PI
    return int(SectorPartition(theta, offset).index_of_angle(ang))
