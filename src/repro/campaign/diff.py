"""Diff two campaign result stores cell-for-cell.

Stores are content-addressed: a cell's id is the digest of its claim,
profile, seed, and overrides, so two stores built from the same spec
(or overlapping specs) join for free on cell id — no fuzzy matching.
Each joined cell gets a status:

``same``
    present in both, same pass/fail verdict, no watched metric drifted
    beyond tolerance;
``improved``
    B passes where A failed, or a watched metric moved in the good
    direction by more than the tolerance;
``regressed``
    A passes where B fails, or a watched metric moved in the bad
    direction by more than the tolerance;
``only_a`` / ``only_b``
    cell completed in one store only (spec drift or partial runs).

Watched metrics come from ``--metric`` (repeatable); drift is relative
(``|b-a| / max(|a|, eps)``) and compared against ``--tolerance``.
Metrics are *lower-is-better* by default (runtime, violations); prefix
with ``+`` (e.g. ``+n_rows``) for higher-is-better.

``python -m repro campaign diff A B`` renders the join as a table, CSV,
or JSON and exits non-zero when any cell regressed — the piece that
makes a store pair usable as a CI regression gate.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.campaign.query import QueryError, flatten_cells, format_rows
from repro.campaign.store import CampaignStore

__all__ = [
    "DiffError",
    "diff_records",
    "run_diff",
]

_EPS = 1e-12

#: statuses that make ``run_diff`` report a non-zero exit.
REGRESSION_STATUSES = ("regressed",)


class DiffError(QueryError):
    """Malformed diff input (bad metric name, non-numeric values)."""


def _parse_metric(spec: str) -> "tuple[str, bool]":
    """``name`` or ``+name`` → (name, higher_is_better)."""
    if spec.startswith("+"):
        return spec[1:], True
    return spec, False


def _metric_value(row: "dict[str, Any]", name: str) -> "float | None":
    if name not in row:
        return None
    val = row[name]
    if isinstance(val, bool):
        return float(val)
    try:
        return float(val)
    except (TypeError, ValueError):
        raise DiffError(
            f"metric {name!r} is not numeric in cell {row.get('cell')!r} "
            f"(got {val!r})"
        ) from None


def diff_records(
    records_a: "Iterable[dict]",
    records_b: "Iterable[dict]",
    *,
    metrics: "list[str] | None" = None,
    tolerance: float = 0.0,
) -> "list[dict]":
    """Join two stores' cell records on cell id; one output row per cell.

    ``metrics`` are flattened-cell column names (``runtime_seconds``,
    ``violations``, any override, ...), lower-is-better unless prefixed
    with ``+``.  A relative drift beyond ``tolerance`` in the bad
    direction marks the cell ``regressed``; in the good direction,
    ``improved``.  Pass/fail flips always dominate metric drift.
    """
    parsed = [_parse_metric(m) for m in (metrics or [])]
    rows_a = {r["cell"]: r for r in flatten_cells(records_a)}
    rows_b = {r["cell"]: r for r in flatten_cells(records_b)}
    out: "list[dict]" = []
    for cell in sorted(set(rows_a) | set(rows_b)):
        a, b = rows_a.get(cell), rows_b.get(cell)
        ref = b if a is None else a
        row: "dict[str, Any]" = {
            "cell": cell,
            "claim": ref.get("claim"),
            "profile": ref.get("profile"),
            "seed": ref.get("seed"),
        }
        if a is None or b is None:
            row["status"] = "only_b" if a is None else "only_a"
            row["passed_a"] = a.get("passed") if a else ""
            row["passed_b"] = b.get("passed") if b else ""
            out.append(row)
            continue
        row["passed_a"] = a.get("passed")
        row["passed_b"] = b.get("passed")
        status = "same"
        if a.get("passed") and not b.get("passed"):
            status = "regressed"
        elif b.get("passed") and not a.get("passed"):
            status = "improved"
        for name, higher_better in parsed:
            va, vb = _metric_value(a, name), _metric_value(b, name)
            row[f"{name}_a"] = va if va is not None else ""
            row[f"{name}_b"] = vb if vb is not None else ""
            if va is None or vb is None:
                continue
            drift = (vb - va) / max(abs(va), _EPS)
            row[f"{name}_drift"] = round(drift, 6)
            if status != "same":
                continue  # pass/fail flips dominate metric drift
            worse = drift < -tolerance if higher_better else drift > tolerance
            better = drift > tolerance if higher_better else drift < -tolerance
            if worse:
                status = "regressed"
            elif better:
                status = "improved"
        row["status"] = status
        out.append(row)
    return out


def _columns(rows: "list[dict]") -> "list[str]":
    seen: "list[str]" = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    # status reads best as the last column
    if "status" in seen:
        seen.remove("status")
        seen.append("status")
    return seen


def run_diff(
    store_a_dir: str,
    store_b_dir: str,
    *,
    metrics: "list[str] | None" = None,
    tolerance: float = 0.0,
    fmt: str = "table",
    only_changed: bool = False,
) -> "tuple[str, int]":
    """The pipeline behind ``python -m repro campaign diff``.

    Returns ``(rendered_text, n_regressed)``; callers exit non-zero when
    the second element is positive.  Raises
    :class:`~repro.campaign.store.StoreError` for unopenable stores and
    :class:`DiffError` for bad metric input.
    """
    store_a = CampaignStore.open(store_a_dir)
    store_b = CampaignStore.open(store_b_dir)
    rows = diff_records(
        store_a.cell_records(),
        store_b.cell_records(),
        metrics=metrics,
        tolerance=tolerance,
    )
    n_regressed = sum(1 for r in rows if r["status"] in REGRESSION_STATUSES)
    counts: "dict[str, int]" = {}
    for r in rows:
        counts[r["status"]] = counts.get(r["status"], 0) + 1
    if only_changed:
        rows = [r for r in rows if r["status"] != "same"]
    if not rows:
        return ("(no cells to compare)" if not counts else "(no cells changed)", n_regressed)
    summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    title = (
        f"campaign diff {store_a.spec.name!r} vs {store_b.spec.name!r} — {summary}"
    )
    return format_rows(rows, _columns(rows), fmt, title=title), n_regressed
