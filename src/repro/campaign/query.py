"""Query a campaign store: filter, project, and render any slice.

The percell-style query pipeline: load every completed cell record,
flatten each to one row (or one row per experiment-table row with
``include_rows``), apply ``--where`` predicates, project ``--columns``,
and render as an aligned text table, CSV, or JSON — all without
re-running anything.

``--where`` accepts ``key OP value`` with ``OP`` one of
``= != >= <= > <``; repeated conditions AND together.  Values compare
numerically when both sides parse as floats (so ``n>=96`` works), as
strings otherwise.  Rows missing the key never match.
"""

from __future__ import annotations

import csv
import io
import json
import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.analysis import tables
from repro.campaign.store import CampaignStore
from repro.harness.results import jsonify

__all__ = [
    "QueryError",
    "Where",
    "flatten_cells",
    "format_rows",
    "parse_where",
    "run_query",
    "select_columns",
]

FORMATS = ("table", "csv", "json")


class QueryError(ValueError):
    """Malformed --where / --columns / --format input."""


def flatten_cells(records: "Iterable[dict]", *, include_rows: bool = False) -> "list[dict]":
    """One flat dict per cell (or per experiment-table row).

    Cell-level columns come first (id, claim, profile, seed, then the
    spec overrides), followed by outcome columns; with ``include_rows``
    each of the cell's experiment rows contributes one output row with
    the row's own fields merged last (row fields win on collision,
    being the more specific value).
    """
    out: "list[dict]" = []
    for rec in records:
        base = {
            "cell": rec.get("cell"),
            "claim": rec.get("claim"),
            "profile": rec.get("profile"),
            "seed": rec.get("seed"),
            **rec.get("overrides", {}),
            "passed": rec.get("passed"),
            "violations": len(rec.get("failures", [])),
            "n_rows": rec.get("n_rows"),
            "runtime_seconds": rec.get("runtime_seconds"),
        }
        if include_rows:
            for i, row in enumerate(rec.get("rows", [])):
                out.append({**base, "row": i, **row})
        else:
            out.append(base)
    return out


@dataclass(frozen=True)
class Where:
    """One parsed ``--where`` condition."""

    key: str
    op: str
    value: str

    def matches(self, row: "dict[str, Any]") -> bool:
        if self.key not in row:
            return False
        have = row[self.key]
        want: Any = self.value
        try:
            have_f, want_f = float(have), float(want)
        except (TypeError, ValueError):
            have_f = want_f = math.nan
        numeric = not (math.isnan(have_f) or math.isnan(want_f))
        if numeric:
            have, want = have_f, want_f
        else:
            have, want = _canon(have), want
        cmp: "dict[str, Callable[[Any, Any], bool]]" = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            ">=": lambda a, b: numeric and a >= b,
            "<=": lambda a, b: numeric and a <= b,
            ">": lambda a, b: numeric and a > b,
            "<": lambda a, b: numeric and a < b,
        }
        return cmp[self.op](have, want)


def _canon(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


_WHERE_RE = re.compile(r"^\s*([^=<>!\s]+)\s*(>=|<=|!=|=|>|<)\s*(.*?)\s*$")


def parse_where(condition: str) -> Where:
    m = _WHERE_RE.match(condition)
    if not m:
        raise QueryError(
            f"malformed --where {condition!r}; expected KEY OP VALUE "
            "with OP one of = != >= <= > <"
        )
    key, op, value = m.groups()
    return Where(key=key, op=op, value=value)


def select_columns(rows: "list[dict]", columns: "list[str] | None") -> "list[str]":
    """Validated display columns: the union in first-seen order by default."""
    seen: "list[str]" = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    if not columns:
        return seen
    unknown = [c for c in columns if c not in seen]
    if unknown:
        raise QueryError(
            f"unknown column(s): {', '.join(unknown)}; "
            f"available: {', '.join(seen)}"
        )
    return columns


def format_rows(rows: "list[dict]", columns: "list[str]", fmt: str, *, title: str = "") -> str:
    """Render ``rows`` restricted to ``columns`` as table, csv, or json."""
    if fmt not in FORMATS:
        raise QueryError(f"unknown format {fmt!r}; expected one of {', '.join(FORMATS)}")
    projected = [{c: row.get(c, "") for c in columns} for row in rows]
    if fmt == "table":
        return tables.render_table(projected, title=title)
    if fmt == "csv":
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(columns)
        for row in projected:
            writer.writerow([row[c] for c in columns])
        return buf.getvalue().rstrip("\n")
    # jsonify keeps the output strict JSON (inf/nan as strings again)
    return json.dumps(jsonify(projected), indent=2, allow_nan=False)


def run_query(
    store_dir: str,
    *,
    where: "list[str] | None" = None,
    columns: "list[str] | None" = None,
    fmt: str = "table",
    include_rows: bool = False,
) -> str:
    """The full pipeline behind ``python -m repro query``."""
    store = CampaignStore.open(store_dir)
    conditions = [parse_where(c) for c in (where or [])]
    rows = flatten_cells(store.cell_records(), include_rows=include_rows)
    rows = [r for r in rows if all(c.matches(r) for c in conditions)]
    if not rows:
        return "(no cells match)"
    cols = select_columns(rows, columns)
    title = (
        f"campaign {store.spec.name!r} — {len(rows)} "
        f"{'rows' if include_rows else 'cells'}"
    )
    return format_rows(rows, cols, fmt, title=title)
