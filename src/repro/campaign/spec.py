"""Campaign specs: a declarative parameter grid over registry claims.

A campaign spec (``repro-campaign-spec/v1``) names a cartesian grid of
axes plus fixed overrides, and expands into *cells* — one concrete
(claim, profile, seed, parameter overrides) combination each.  JSON:

.. code-block:: json

    {
      "schema": "repro-campaign-spec/v1",
      "name": "smoke",
      "profile": "quick",
      "grid": {"claim": ["e1", "e2"], "n": [48, 96], "seed": [0, 1]},
      "fixed": {"distributions": ["uniform"]}
    }

TOML specs carry the same keys (loaded through :mod:`tomllib` where the
interpreter ships it, Python ≥ 3.11; on older interpreters a ``.toml``
spec raises with a clear message — JSON always works).

Axis semantics
--------------
``claim``
    Registry id (``e1`` … ``e24``); may be a grid axis or fixed.
``seed``
    Replaces the claim's registered RNG seed.  Optional (grid or
    fixed); defaults to the registry seed.
``profile``
    ``"full"`` or ``"quick"`` — selects the base parameter set the
    overrides are applied to.  Top-level key, grid axis, or fixed.
anything else
    A keyword override for the claim's harness function, applied on
    top of the profile's registered parameters.  As a convenience the
    scalar axis ``n`` adapts to harnesses that sweep ``ns=(...)``
    instead: ``n=96`` becomes ``ns=(96,)`` when the harness accepts
    ``ns`` but not ``n``.  Overrides a harness does not accept fail
    expansion with the offending cell named — a malformed sweep dies
    before any work is scheduled.

Cell identity
-------------
``Cell.cell_id`` is a stable content digest of the resolved
(claim, profile, seed, overrides) tuple, so the same spec always
expands to the same ids — that is what makes the store's completion
manifest resumable across runs and robust to axis reordering.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.harness.registry import REGISTRY

SPEC_SCHEMA = "repro-campaign-spec/v1"

#: keys with reserved meaning — everything else is a harness override.
_RESERVED = ("claim", "seed", "profile")

__all__ = [
    "SPEC_SCHEMA",
    "CampaignSpec",
    "Cell",
    "SpecError",
    "load_spec",
]


class SpecError(ValueError):
    """The campaign spec is malformed (bad schema, axis, or override)."""


@dataclass(frozen=True)
class Cell:
    """One concrete grid point: a claim run under resolved parameters."""

    claim: str
    profile: str
    seed: int
    #: axis/fixed overrides as declared in the spec (pre-adaptation).
    overrides: "tuple[tuple[str, Any], ...]"
    #: harness kwargs after applying overrides to the profile params.
    params: "Mapping[str, Any]" = field(compare=False)

    @property
    def cell_id(self) -> str:
        """Stable content id: claim plus a digest of the resolved run."""
        payload = json.dumps(
            {
                "claim": self.claim,
                "profile": self.profile,
                "seed": self.seed,
                "overrides": sorted(self.overrides),
            },
            sort_keys=True,
            default=str,
        )
        return f"{self.claim}-{hashlib.sha1(payload.encode()).hexdigest()[:10]}"

    def describe(self) -> dict:
        """Flat summary row (used by ``campaign cells`` and records)."""
        return {
            "cell": self.cell_id,
            "claim": self.claim,
            "profile": self.profile,
            "seed": self.seed,
            **dict(self.overrides),
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign declaration."""

    name: str
    profile: str
    grid: "Mapping[str, tuple]"
    fixed: "Mapping[str, Any]"
    check: bool = True
    source: "dict | None" = None

    def axes(self) -> "list[str]":
        return list(self.grid)

    def n_cells(self) -> int:
        out = 1
        for values in self.grid.values():
            out *= len(values)
        return out

    def cells(self) -> "list[Cell]":
        """Expand the grid into validated cells, in axis-major order."""
        axes = self.axes()
        cells = []
        for combo in itertools.product(*(self.grid[a] for a in axes)):
            assignment = dict(self.fixed)
            assignment.update(dict(zip(axes, combo)))
            cells.append(_build_cell(assignment, self.profile))
        return cells

    def to_json(self) -> dict:
        """Canonical spec document (what the store pins at creation)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "profile": self.profile,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "fixed": dict(self.fixed),
            "check": self.check,
        }


def _build_cell(assignment: "dict[str, Any]", default_profile: str) -> Cell:
    claim_id = assignment.get("claim")
    if not isinstance(claim_id, str) or claim_id.lower() not in REGISTRY:
        raise SpecError(
            f"cell names unknown claim {claim_id!r}; "
            f"valid ids: {', '.join(REGISTRY)}"
        )
    claim = REGISTRY[claim_id.lower()]
    profile = assignment.get("profile", default_profile)
    if profile not in ("full", "quick"):
        raise SpecError(f"cell profile must be 'full' or 'quick', got {profile!r}")
    seed = assignment.get("seed", claim.seed)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise SpecError(f"cell seed must be an integer, got {seed!r}")
    overrides = {
        k: v for k, v in assignment.items() if k not in _RESERVED
    }
    params = _resolve_params(claim, profile, overrides)
    return Cell(
        claim=claim.id,
        profile=profile,
        seed=int(seed),
        overrides=tuple(sorted(overrides.items(), key=lambda kv: kv[0])),
        params=params,
    )


def _resolve_params(claim, profile: str, overrides: "dict[str, Any]") -> dict:
    """Profile params + overrides, adapted and validated against the harness."""
    sig = inspect.signature(claim.harness())
    accepted = {
        name
        for name, p in sig.parameters.items()
        if p.kind in (p.KEYWORD_ONLY, p.POSITIONAL_OR_KEYWORD) and name != "rng"
    }
    params = dict(claim.params(profile))
    for key, value in overrides.items():
        if key == "n" and "n" not in accepted and "ns" in accepted:
            # scalar-n convenience for harnesses that sweep ns=(...)
            params["ns"] = (value,)
            continue
        if key not in accepted:
            raise SpecError(
                f"claim {claim.id} does not accept override {key!r}; "
                f"harness parameters: {', '.join(sorted(accepted))}"
            )
        params[key] = tuple(value) if isinstance(value, list) else value
    return params


def _spec_from_doc(doc: "dict[str, Any]", *, origin: str) -> CampaignSpec:
    if not isinstance(doc, dict):
        raise SpecError(f"{origin}: spec must be a mapping, got {type(doc).__name__}")
    schema = doc.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise SpecError(f"{origin}: unsupported spec schema {schema!r} (want {SPEC_SCHEMA})")
    name = doc.get("name")
    if not name or not isinstance(name, str):
        raise SpecError(f"{origin}: spec needs a non-empty string 'name'")
    grid = doc.get("grid")
    if not isinstance(grid, dict) or not grid:
        raise SpecError(f"{origin}: spec needs a non-empty 'grid' mapping of axes")
    norm_grid: "dict[str, tuple]" = {}
    for axis, values in grid.items():
        if not isinstance(values, list) or not values:
            raise SpecError(f"{origin}: grid axis {axis!r} must be a non-empty list")
        norm_grid[axis] = tuple(values)
    fixed = doc.get("fixed", {})
    if not isinstance(fixed, dict):
        raise SpecError(f"{origin}: 'fixed' must be a mapping")
    if "claim" not in norm_grid and "claim" not in fixed:
        raise SpecError(f"{origin}: spec must place 'claim' on the grid or in 'fixed'")
    profile = doc.get("profile", "quick")
    spec = CampaignSpec(
        name=name,
        profile=profile,
        grid=norm_grid,
        fixed=dict(fixed),
        check=bool(doc.get("check", True)),
        source=doc,
    )
    spec.cells()  # validate every cell up front; dies before any work runs
    return spec


def load_spec(path: "str | Path") -> CampaignSpec:
    """Load and validate a JSON or TOML campaign spec from disk."""
    path = Path(path)
    if not path.is_file():
        raise SpecError(f"no such campaign spec: {path}")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11: JSON specs still work
            raise SpecError(
                f"{path}: TOML specs need Python >= 3.11 (tomllib); "
                "use a JSON spec on this interpreter"
            ) from exc
        doc = tomllib.loads(path.read_text())
    else:
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: not valid JSON ({exc})") from exc
    return _spec_from_doc(doc, origin=str(path))
