"""Campaign orchestration: declarative sweeps over the claim registry.

``repro.campaign`` turns the one-shot ``verify``/experiment CLI into a
sweep layer: a JSON/TOML spec declares a parameter grid over claims,
the runner fans the expanded cells across the warm-worker process pool
with resumable progress, and results persist into a versioned store
(``repro-campaign-store/v1``) that ``python -m repro query`` slices
without re-running anything.  See ``docs/campaigns.md``.
"""

from repro.campaign.diff import diff_records, run_diff
from repro.campaign.query import flatten_cells, run_query
from repro.campaign.runner import CampaignReport, run_campaign, run_cell
from repro.campaign.spec import CampaignSpec, Cell, SpecError, load_spec
from repro.campaign.store import CampaignStore, StoreError, unjsonify

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "CampaignStore",
    "Cell",
    "SpecError",
    "StoreError",
    "diff_records",
    "flatten_cells",
    "load_spec",
    "run_campaign",
    "run_cell",
    "run_diff",
    "run_query",
    "unjsonify",
]
