"""The versioned, resumable campaign result store.

Layout of ``repro-campaign-store/v1``::

    <store>/
      store.json        # schema marker + the pinned spec + cell count
      manifest.jsonl    # one line per COMPLETED cell (append-only)
      telemetry.jsonl   # repro-telemetry/v1 progress snapshots (append-only)
      cells/<id>.json   # one repro-campaign-cell/v1 record per cell

The manifest is the resume contract: a cell id appears on it only
after its record file has been fully written and atomically renamed
into place, so a run killed at any instant leaves either (a) no trace
of an in-flight cell or (b) a complete record plus its manifest line.
``--resume`` therefore only ever re-runs cells whose ids are absent
from the manifest — completed cells are never re-executed.

Records reuse :func:`repro.harness.results.jsonify`, so non-finite
floats serialize as the strings ``"inf"``/``"-inf"``/``"nan"`` and the
files stay strict JSON; :func:`repro.campaign.store.unjsonify` restores
them on read so queries compare real floats.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.campaign.spec import CampaignSpec, _spec_from_doc
from repro.harness.results import jsonify

STORE_SCHEMA = "repro-campaign-store/v1"
CELL_SCHEMA = "repro-campaign-cell/v1"

__all__ = [
    "CELL_SCHEMA",
    "STORE_SCHEMA",
    "CampaignStore",
    "StoreError",
    "unjsonify",
]


class StoreError(ValueError):
    """The store directory is missing, malformed, or spec-incompatible."""


def unjsonify(obj: Any) -> Any:
    """Inverse of :func:`jsonify` for the non-finite string encodings."""
    if isinstance(obj, dict):
        return {k: unjsonify(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [unjsonify(v) for v in obj]
    if obj == "nan":
        return math.nan
    if obj == "inf":
        return math.inf
    if obj == "-inf":
        return -math.inf
    return obj


@dataclass
class CampaignStore:
    """Handle to one store directory (create via :meth:`create`/:meth:`open`)."""

    root: Path
    spec: CampaignSpec

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, root: "str | Path", spec: CampaignSpec) -> "CampaignStore":
        """Initialise a fresh store for ``spec`` (errors if one exists)."""
        root = Path(root)
        if (root / "store.json").exists():
            raise StoreError(
                f"campaign store already exists at {root}; "
                "pass --resume to continue it"
            )
        (root / "cells").mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": STORE_SCHEMA,
            "name": spec.name,
            "n_cells": spec.n_cells(),
            "spec": spec.to_json(),
        }
        _atomic_write(root / "store.json", json.dumps(doc, indent=2) + "\n")
        return cls(root=root, spec=spec)

    @classmethod
    def open(cls, root: "str | Path", spec: "CampaignSpec | None" = None) -> "CampaignStore":
        """Open an existing store; with ``spec``, insist it matches the pin.

        A resume against a *different* spec would silently mix sweeps,
        so the pinned spec document must be identical.
        """
        root = Path(root)
        path = root / "store.json"
        if not path.is_file():
            raise StoreError(f"no campaign store at {root} (missing store.json)")
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}: corrupt store.json ({exc})") from exc
        if doc.get("schema") != STORE_SCHEMA:
            raise StoreError(
                f"{path}: unsupported store schema {doc.get('schema')!r} "
                f"(want {STORE_SCHEMA})"
            )
        pinned = _spec_from_doc(doc["spec"], origin=f"{path}:spec")
        if spec is not None and spec.to_json() != pinned.to_json():
            raise StoreError(
                f"store at {root} was created from a different spec "
                f"({pinned.name!r}); refusing to mix campaigns"
            )
        return cls(root=root, spec=pinned)

    # -- completion manifest ----------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.jsonl"

    @property
    def telemetry_path(self) -> Path:
        """The ``repro-telemetry/v1`` snapshot stream ``campaign run`` appends."""
        return self.root / "telemetry.jsonl"

    def completed_ids(self) -> "set[str]":
        """Cell ids marked complete (tolerates a torn trailing line)."""
        done: "set[str]" = set()
        if not self.manifest_path.is_file():
            return done
        for line in self.manifest_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed run; the cell re-runs
            cell = entry.get("cell")
            if cell and (self.root / "cells" / f"{cell}.json").is_file():
                done.add(cell)
        return done

    # -- records -----------------------------------------------------------

    def write_cell(self, record: dict) -> Path:
        """Persist one cell record, then mark it complete (in that order)."""
        cell_id = record["cell"]
        path = self.root / "cells" / f"{cell_id}.json"
        payload = jsonify({"schema": CELL_SCHEMA, **record})
        _atomic_write(path, json.dumps(payload, indent=2, allow_nan=False) + "\n")
        mark = json.dumps(
            {
                "cell": cell_id,
                "claim": record.get("claim"),
                "passed": record.get("passed"),
                "runtime_seconds": record.get("runtime_seconds"),
            }
        )
        with self.manifest_path.open("a") as fh:
            fh.write(mark + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return path

    def load_cell(self, cell_id: str) -> dict:
        path = self.root / "cells" / f"{cell_id}.json"
        if not path.is_file():
            raise StoreError(f"no record for cell {cell_id} in {self.root}")
        return unjsonify(json.loads(path.read_text()))

    def cell_records(self) -> "Iterator[dict]":
        """Every completed cell record, in stable (cell-id) order."""
        for cell_id in sorted(self.completed_ids()):
            yield self.load_cell(cell_id)

    def is_complete(self) -> bool:
        return self.completed_ids() >= {c.cell_id for c in self.spec.cells()}


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so a kill never leaves a partial file in place."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
