"""Fan a campaign's cells out across the warm-worker process pool.

Reuses the claim harness machinery end to end: cells execute the same
registered harness functions as ``repro verify``, workers come from
:func:`repro.harness.runner.pool_context` (long-lived fork workers, so
the per-process substrate cache of :mod:`repro.harness.cache` stays
warm across the cells each worker executes), and records carry the
same cache hit/miss deltas the claim records do.

Resumability: the parent writes each record + manifest mark as results
arrive (``imap_unordered``), never ahead of completion, so killing the
run at any point loses at most the in-flight cells.  ``resume=True``
skips every cell already on the manifest.

Telemetry: every cell record carries a ``worker`` resource sample (pid,
RSS, CPU time — :func:`repro.obs.telemetry.resource_sample`), and the
parent appends ``repro-telemetry/v1`` progress snapshots to the store's
``telemetry.jsonl`` as cells complete (throttled; always one final
forced snapshot).  ``live=True`` additionally renders those snapshots
in place (``campaign run --live``); ``python -m repro top STORE`` reads
the same stream after the fact.  When the parent traces
(``--trace DIR``), workers ship their span events and metrics deltas
back inside each record and the parent merges them, so one exported
trace covers the whole fan-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.campaign.spec import Cell, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.harness import cache
from repro.harness.registry import REGISTRY
from repro.harness.runner import pool_context
from repro.obs import metrics, telemetry, trace

__all__ = ["CampaignReport", "run_campaign", "run_cell"]


@dataclass
class CampaignReport:
    """What one ``run_campaign`` invocation did."""

    store: Path
    n_cells: int
    n_skipped: int  # already complete when this run started
    n_run: int
    n_failed: int
    wall_seconds: float
    stopped_early: bool = False
    rows: "list[dict]" = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.n_skipped + self.n_run >= self.n_cells and not self.stopped_early


def run_cell(cell: Cell, *, check: bool = True) -> dict:
    """Execute one cell in-process and return its (pre-jsonify) record.

    The record always carries a ``worker`` resource sample of the
    executing process.  When the process traces (the parent enabled
    ``--trace`` before forking the pool), a ``telemetry`` key carries
    the cell's span events and — in pool workers — the worker registry's
    metrics delta; :func:`run_campaign` merges and strips it before the
    record is stored.
    """
    claim = REGISTRY[cell.claim]
    tracer = telemetry.worker_tracer()
    mark = tracer.total_appended if tracer is not None else 0
    stats_before = cache.cache_stats()
    t0 = time.perf_counter()
    with trace.span("campaign.cell", cell=cell.cell_id, claim=cell.claim):
        rows = claim.harness()(**dict(cell.params), rng=cell.seed)
    runtime = time.perf_counter() - t0
    failures: "list[str]" = []
    if check:
        try:
            failures = list(claim.check(rows, cell.profile))
        except Exception as exc:  # a crashed predicate fails the cell, not the run
            failures = [f"predicate raised {type(exc).__name__}: {exc}"]
    record = {
        "cell": cell.cell_id,
        "claim": cell.claim,
        "title": claim.title,
        "paper_ref": claim.paper_ref,
        "profile": cell.profile,
        "seed": cell.seed,
        "overrides": dict(cell.overrides),
        "params": dict(cell.params),
        "rows": rows,
        "n_rows": len(rows),
        "passed": not failures,
        "failures": failures,
        "runtime_seconds": round(runtime, 3),
        "cache": {k: cache.cache_stats()[k] - stats_before[k] for k in stats_before},
        "worker": telemetry.resource_sample(),
    }
    events, _ = telemetry.drain_events(tracer, mark)
    if tracer is not None and tracer.foreign:
        tele: dict = {"events": events}
        reg = metrics.active()
        if reg is not None:
            tele["metrics"] = reg.snapshot()
            reg.clear()  # next cell in this worker ships its own delta
        record["telemetry"] = tele
    return record


def _worker(task: "tuple[Cell, bool]") -> dict:
    cell, check = task
    return run_cell(cell, check=check)


def run_campaign(
    spec: CampaignSpec,
    store_dir: "str | Path",
    *,
    jobs: int = 1,
    resume: bool = False,
    max_cells: "int | None" = None,
    progress: "Callable[[str], None] | None" = None,
    live: bool = False,
    live_stream=None,
) -> CampaignReport:
    """Run (or resume) ``spec`` into the store at ``store_dir``.

    ``max_cells`` stops after that many cells have completed in *this*
    invocation, leaving the store resumable — the deterministic
    mid-run interruption CI and the tests lean on.  ``live`` renders
    in-place progress panels to ``live_stream`` (default stdout).
    """
    say = progress or (lambda _msg: None)
    store_dir = Path(store_dir)
    if resume and (store_dir / "store.json").exists():
        store = CampaignStore.open(store_dir, spec)
    else:
        store = CampaignStore.create(store_dir, spec)
    cells = spec.cells()
    done = store.completed_ids() if resume else set()
    todo = [c for c in cells if c.cell_id not in done]
    if max_cells is not None:
        todo = todo[: max(0, max_cells)]
    say(
        f"campaign {spec.name!r}: {len(cells)} cells "
        f"({len(done)} already complete, {len(todo)} to run, jobs={jobs})"
    )

    t0 = time.perf_counter()
    n_run = n_failed = 0
    summary_rows: "list[dict]" = []
    tasks = [(cell, spec.check) for cell in todo]
    writer = telemetry.TelemetryWriter(store.telemetry_path)
    sampler = telemetry.ResourceSampler()
    view = telemetry.LiveView(stream=live_stream) if live else None
    #: per-worker-pid throughput + latest resource sample
    workers: "dict[str, dict]" = {}

    def _snapshot() -> dict:
        elapsed = time.perf_counter() - t0
        n_done = len(done) + n_run
        return {
            "kind": "campaign",
            "ts": time.time(),
            "name": spec.name,
            "cells": {
                "total": len(cells),
                "done": n_done,
                "failed": n_failed,
                "remaining": len(cells) - n_done,
            },
            "workers": workers,
            "parent": sampler.sample(),
            "elapsed_s": elapsed,
            "rate_cells_per_s": n_run / elapsed if elapsed > 0 else 0.0,
        }

    def _consume(record: dict) -> None:
        nonlocal n_run, n_failed
        # Merge (and strip) worker-shipped trace events and metrics
        # deltas before the record hits disk — they belong in the
        # parent's export, not in every cell file.
        tele = record.pop("telemetry", None)
        if tele:
            tracer = trace.active()
            if tracer is not None and tele.get("events"):
                tracer.ingest(tele["events"])
            reg = metrics.active()
            if reg is not None and tele.get("metrics"):
                reg.merge(tele["metrics"])
        w = record.get("worker") or {}
        slot = workers.setdefault(
            str(w.get("pid", "?")), {"cells": 0, "cell_seconds": 0.0}
        )
        slot["cells"] += 1
        slot["cell_seconds"] += float(record.get("runtime_seconds", 0.0))
        for key in ("rss_bytes", "cpu_user_s", "cpu_sys_s"):
            if key in w:
                slot[key] = w[key]
        store.write_cell(record)
        n_run += 1
        if not record["passed"]:
            n_failed += 1
        status = "ok" if record["passed"] else "FAIL"
        snap = _snapshot()
        writer.write(snap)
        if view is not None:
            view.update(snap, title=f"campaign {spec.name!r}")
        say(
            f"[{len(done) + n_run}/{len(cells)}] {record['cell']} "
            f"{status} ({record['runtime_seconds']:.2f}s)"
        )
        summary_rows.append(
            {
                "cell": record["cell"],
                "claim": record["claim"],
                **record["overrides"],
                "passed": record["passed"],
                "violations": len(record["failures"]),
                "seconds": record["runtime_seconds"],
            }
        )

    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            _consume(_worker(task))
    else:
        ctx = pool_context()
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            for record in pool.imap_unordered(_worker, tasks, chunksize=1):
                _consume(record)

    final_snap = _snapshot()
    writer.write(final_snap, force=True)
    if view is not None:
        view.close(final_snap, title=f"campaign {spec.name!r}")
    stopped_early = max_cells is not None and len(todo) < len(cells) - len(done)
    return CampaignReport(
        store=store_dir,
        n_cells=len(cells),
        n_skipped=len(done),
        n_run=n_run,
        n_failed=n_failed,
        wall_seconds=time.perf_counter() - t0,
        stopped_early=stopped_early,
        rows=summary_rows,
    )
