"""The SINR *physical* interference model (extension).

§2.4 adopts the pairwise protocol model and notes it is "a simplified
version of the *physical* model [Gupta-Kumar], which considers a
combined interference from all other simultaneous transmissions".  This
module implements that physical model so the simplification can be
quantified (ablation bench E13):

A transmission ``X_i → Y_i`` at fixed power P succeeds iff its
signal-to-interference-plus-noise ratio clears the threshold β:

    SINR_i  =  (P / |X_i Y_i|^κ) / (N₀ + Σ_{j≠i} P / |X_j Y_i|^κ)  ≥  β.

With power control (each sender using just enough power to reach its
receiver at the detection threshold), ``P_i = P₀·|X_i Y_i|^κ`` and the
received signal is constant while interference scales with the
interferers' chosen powers.

The class mirrors :class:`repro.interference.model.InterferenceModel`'s
``successful_mask`` interface so the MAC layers can swap models.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["PhysicalInterferenceModel"]


class PhysicalInterferenceModel:
    """SINR-based success decisions for sets of simultaneous transmissions.

    Parameters
    ----------
    beta:
        SINR threshold β (≈ 1–10 in practice).
    kappa:
        Path-loss exponent κ ∈ [2, 4].
    noise:
        Ambient noise power N₀ ≥ 0 (same units as received power).
    power_control:
        If True (default) each sender transmits at ``|X_i Y_i|^κ`` —
        just enough for unit received power at its own receiver, the
        §2 power-adjustment assumption.  If False all senders use unit
        power, the fixed-strength setting of §3.4.
    """

    def __init__(
        self,
        beta: float = 2.0,
        *,
        kappa: float = 2.0,
        noise: float = 0.0,
        power_control: bool = True,
    ) -> None:
        self.beta = check_positive("beta", beta)
        self.kappa = check_positive("kappa", kappa)
        self.noise = check_nonnegative("noise", noise)
        self.power_control = bool(power_control)

    def __repr__(self) -> str:
        return (
            f"PhysicalInterferenceModel(beta={self.beta:g}, kappa={self.kappa:g}, "
            f"noise={self.noise:g}, power_control={self.power_control})"
        )

    def sinr(self, points: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """SINR of each simultaneous directed transmission ``(src, dst)``.

        A singleton transmission with zero noise has SINR = ∞.
        """
        pts = as_points(points)
        e = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
        k = len(e)
        if k == 0:
            return np.empty(0)
        senders = pts[e[:, 0]]
        receivers = pts[e[:, 1]]
        own = np.hypot(
            senders[:, 0] - receivers[:, 0], senders[:, 1] - receivers[:, 1]
        )
        if (own == 0).any():
            raise ValueError("sender and receiver coincide")
        if self.power_control:
            powers = own**self.kappa  # unit received power at own receiver
            signal = np.ones(k)
        else:
            powers = np.ones(k)
            signal = own ** (-self.kappa)
        # Interference at receiver i from sender j (j != i).
        dx = senders[:, None, 0] - receivers[None, :, 0]
        dy = senders[:, None, 1] - receivers[None, :, 1]
        dist = np.hypot(dx, dy)  # dist[j, i] = |X_j Y_i|
        with np.errstate(divide="ignore"):
            contrib = powers[:, None] * dist ** (-self.kappa)
        np.fill_diagonal(contrib, 0.0)
        interference = contrib.sum(axis=0)
        denom = self.noise + interference
        with np.errstate(divide="ignore"):
            return np.where(denom > 0, signal / denom, np.inf)

    def successful_mask(self, points: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Which of the simultaneous transmissions clear the β threshold."""
        s = self.sinr(points, edges)
        return s >= self.beta
