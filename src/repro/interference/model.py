"""Guard-zone interference primitives.

Definitions (paper §2.4, protocol model of Gupta-Kumar):

* ``IR(X, Y) = C(X, (1+Δ)|XY|) ∪ C(Y, (1+Δ)|XY|)`` with ``C`` the *open*
  disk — the interference region of the (bidirectional) exchange X ↔ Y;
* an edge ``e'`` *interferes with* ``e`` when IR(e') contains at least
  one endpoint of ``e``;
* simultaneous transmissions on e and e' both succeed only when neither
  interferes with the other.

Δ > 0 is the protocol guard-zone parameter.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.validation import check_nonnegative

__all__ = [
    "InterferenceModel",
    "interference_radius",
    "edges_interfere",
    "successful_transmissions",
]


def interference_radius(length: "float | np.ndarray", delta: float) -> "float | np.ndarray":
    """Radius ``(1+Δ)·length`` of the guard disks of a transmission."""
    return (1.0 + delta) * length


class InterferenceModel:
    """Pairwise guard-zone interference with parameter Δ.

    Parameters
    ----------
    delta:
        Guard zone parameter Δ ≥ 0.  Δ = 0 degenerates to "an endpoint
        strictly inside the transmission disk interferes"; the paper
        assumes Δ > 0 but the implementation tolerates 0 for ablations.
    """

    def __init__(self, delta: float = 0.5) -> None:
        self.delta = check_nonnegative("delta", delta)

    def __repr__(self) -> str:
        return f"InterferenceModel(delta={self.delta:g})"

    # ------------------------------------------------------------------
    def region_contains(
        self,
        points: np.ndarray,
        edge: tuple[int, int],
        query: np.ndarray,
    ) -> np.ndarray:
        """Whether each ``query`` point lies in IR(edge) (open disks).

        Parameters
        ----------
        points:
            Node coordinate array the edge indexes into.
        edge:
            ``(x, y)`` node indices of the transmitting pair.
        query:
            ``(k, 2)`` array of positions to test.
        """
        pts = as_points(points)
        q = as_points(np.atleast_2d(query))
        x, y = pts[edge[0]], pts[edge[1]]
        r = interference_radius(float(np.hypot(*(x - y))), self.delta)
        dx = np.hypot(q[:, 0] - x[0], q[:, 1] - x[1])
        dy = np.hypot(q[:, 0] - y[0], q[:, 1] - y[1])
        return (dx < r) | (dy < r)

    def pair_interferes(
        self,
        points: np.ndarray,
        e1: tuple[int, int],
        e2: tuple[int, int],
    ) -> bool:
        """Whether e1 interferes with e2 **or** vice versa (symmetric)."""
        pts = as_points(points)
        a = self.region_contains(pts, e1, pts[list(e2)]).any()
        b = self.region_contains(pts, e2, pts[list(e1)]).any()
        return bool(a or b)

    # ------------------------------------------------------------------
    def interference_matrix(self, points: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Dense boolean ``(m, m)`` matrix: entry (i, j) ⇔ edge j's region
        touches an endpoint of edge i (directional relation; symmetrize
        with ``M | M.T`` for the paper's I(e)).

        Intended for small m (tests, single schedule steps).  For whole
        topologies use :func:`repro.interference.conflict.interference_sets`,
        which is output-sensitive.
        """
        pts = as_points(points)
        e = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
        m = len(e)
        if m == 0:
            return np.zeros((0, 0), dtype=bool)
        ax, ay = pts[e[:, 0]], pts[e[:, 1]]
        lengths = np.hypot(ax[:, 0] - ay[:, 0], ax[:, 1] - ay[:, 1])
        radii = interference_radius(lengths, self.delta)

        def dist(p: np.ndarray, q: np.ndarray) -> np.ndarray:
            return np.hypot(p[:, None, 0] - q[None, :, 0], p[:, None, 1] - q[None, :, 1])

        # out[i, j]: an endpoint of edge i inside a guard disk of edge j.
        dmin = np.minimum.reduce(
            [dist(ax, ax), dist(ax, ay), dist(ay, ax), dist(ay, ay)]
        )
        out = dmin < radii[None, :]
        np.fill_diagonal(out, False)
        return out

    def successful_mask(self, points: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Success of each simultaneous transmission among ``edges``.

        Transmission i succeeds iff no other transmission's region
        contains an endpoint of i (§2.4's success condition).
        """
        mat = self.interference_matrix(points, edges)
        if mat.size == 0:
            return np.ones(0, dtype=bool)
        return ~mat.any(axis=1)


def edges_interfere(
    points: np.ndarray,
    e1: tuple[int, int],
    e2: tuple[int, int],
    delta: float,
) -> bool:
    """Convenience wrapper for :meth:`InterferenceModel.pair_interferes`."""
    return InterferenceModel(delta).pair_interferes(points, e1, e2)


def successful_transmissions(
    points: np.ndarray,
    edges: np.ndarray,
    delta: float,
) -> np.ndarray:
    """Convenience wrapper for :meth:`InterferenceModel.successful_mask`."""
    return InterferenceModel(delta).successful_mask(points, edges)
