"""The pairwise guard-zone interference model (§2.4).

A transmission ``X → Y`` at distance ``|XY|`` occupies the *interference
region* ``IR(X, Y)``: the union of the open disks of radius
``(1+Δ)·|XY|`` around both endpoints (message exchange is bidirectional,
covering data and acknowledgment).  A simultaneous transmission fails if
either of its endpoints lies inside another transmission's region.

* :mod:`repro.interference.model` — regions, pairwise interference
  predicates, success masks for sets of simultaneous transmissions;
* :mod:`repro.interference.conflict` — interference sets I(e), the
  interference number of a topology, the edge conflict graph, and a
  greedy colouring scheduler that turns a topology into non-interfering
  rounds.
"""

from repro.interference.model import (
    InterferenceModel,
    interference_radius,
    edges_interfere,
    successful_transmissions,
)
from repro.interference.conflict import (
    InterferenceSets,
    interference_sets,
    interference_degrees,
    interference_number,
    conflict_graph,
    greedy_interference_schedule,
)
from repro.interference.physical import PhysicalInterferenceModel

__all__ = [
    "InterferenceModel",
    "interference_radius",
    "edges_interfere",
    "successful_transmissions",
    "InterferenceSets",
    "interference_sets",
    "interference_degrees",
    "interference_number",
    "conflict_graph",
    "greedy_interference_schedule",
    "PhysicalInterferenceModel",
]
