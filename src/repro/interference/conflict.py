"""Interference sets, the interference number, and conflict scheduling.

Following §2.4 (and Meyer auf der Heide et al.), the *interference set*
of an edge e of a topology is

    I(e) = { e' ∈ E : e' interferes with e, or vice versa }

and the *interference number* of the topology is ``max_e |I(e)|``.
Lemma 2.10: for n uniform random nodes in the unit square the
interference number of ΘALG's output N is O(log n) whp — experiment E4.

The *conflict graph* has one vertex per topology edge and connects
mutually interfering edges; any proper colouring yields a TDMA-style
schedule of non-interfering rounds (used by the Theorem 2.8 simulation
and as a baseline MAC).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graphs.base import GeometricGraph
from repro.interference.model import InterferenceModel, interference_radius

__all__ = [
    "interference_sets",
    "interference_degrees",
    "interference_number",
    "conflict_graph",
    "greedy_interference_schedule",
]


def interference_sets(graph: GeometricGraph, delta: float) -> list[np.ndarray]:
    """I(e) for every edge of ``graph`` (symmetric closure), output-sensitive.

    For each edge e' with guard radius r' = (1+Δ)·len(e'), the edges it
    interferes with are exactly those having an endpoint within r' of
    either endpoint of e'.  We find those endpoint nodes with a KD-tree
    ball query and map them to incident edges, then symmetrize.

    Returns
    -------
    List (aligned with ``graph.edges``) of sorted arrays of edge ids.
    """
    pts = graph.points
    edges = graph.edges
    m = len(edges)
    if m == 0:
        return []
    tree = cKDTree(pts)
    # node -> incident edge ids
    incident: list[list[int]] = [[] for _ in range(graph.n_nodes)]
    for k, (i, j) in enumerate(edges):
        incident[i].append(k)
        incident[j].append(k)

    radii = interference_radius(graph.edge_lengths, delta)
    sets: list[set[int]] = [set() for _ in range(m)]
    for k in range(m):
        i, j = edges[k]
        r = radii[k]
        # Open-disk semantics: shrink the inclusive KD-tree radius by an
        # epsilon relative to r so boundary points are excluded.
        rq = r * (1.0 - 1e-12)
        victims: set[int] = set()
        for node in tree.query_ball_point(pts[i], rq) + tree.query_ball_point(pts[j], rq):
            victims.update(incident[node])
        victims.discard(k)
        # k interferes with each victim; relation is symmetrized.
        for v in victims:
            sets[k].add(v)
            sets[v].add(k)
    return [np.asarray(sorted(s), dtype=np.intp) for s in sets]


def interference_degrees(graph: GeometricGraph, delta: float) -> np.ndarray:
    """``|I(e)|`` for every edge."""
    return np.asarray([len(s) for s in interference_sets(graph, delta)], dtype=np.intp)


def interference_number(graph: GeometricGraph, delta: float) -> int:
    """The topology's interference number ``max_e |I(e)|`` (0 if no edges)."""
    deg = interference_degrees(graph, delta)
    return int(deg.max()) if len(deg) else 0


def conflict_graph(graph: GeometricGraph, delta: float):
    """The edge conflict graph as :class:`networkx.Graph`.

    Vertices are edge indices into ``graph.edges``; an edge joins two
    mutually interfering topology edges.
    """
    import networkx as nx

    sets = interference_sets(graph, delta)
    g = nx.Graph()
    g.add_nodes_from(range(len(sets)))
    for k, s in enumerate(sets):
        for v in s:
            if v > k:
                g.add_edge(k, int(v))
    return g


def greedy_interference_schedule(graph: GeometricGraph, delta: float) -> list[np.ndarray]:
    """Partition the edges into non-interfering rounds by greedy colouring.

    Uses networkx's ``greedy_color`` with largest-first ordering; the
    number of rounds is at most (interference number + 1).  Each round
    is an array of edge indices that can transmit simultaneously under
    the guard-zone model.
    """
    import networkx as nx

    cg = conflict_graph(graph, delta)
    if cg.number_of_nodes() == 0:
        return []
    coloring = nx.greedy_color(cg, strategy="largest_first")
    n_colors = max(coloring.values()) + 1
    rounds: list[list[int]] = [[] for _ in range(n_colors)]
    for edge_id, color in coloring.items():
        rounds[color].append(edge_id)
    out = [np.asarray(sorted(r), dtype=np.intp) for r in rounds]
    # Verification in debug spirit: rounds must be pairwise conflict-free.
    model = InterferenceModel(delta)
    for r in out:
        if len(r) > 1:
            mat = model.interference_matrix(graph.points, graph.edges[r])
            if mat.any():
                raise AssertionError("greedy schedule produced an interfering round")
    return out
