"""Interference sets, the interference number, and conflict scheduling.

Following §2.4 (and Meyer auf der Heide et al.), the *interference set*
of an edge e of a topology is

    I(e) = { e' ∈ E : e' interferes with e, or vice versa }

and the *interference number* of the topology is ``max_e |I(e)|``.
Lemma 2.10: for n uniform random nodes in the unit square the
interference number of ΘALG's output N is O(log n) whp — experiment E4.

The *conflict graph* has one vertex per topology edge and connects
mutually interfering edges; any proper colouring yields a TDMA-style
schedule of non-interfering rounds (used by the Theorem 2.8 simulation
and as a baseline MAC).

The construction is fully batched: one ``cKDTree.query_ball_point``
call per endpoint node (at its largest incident guard radius) finds
every guard-disk membership, a sparse matmul against the
node→incident-edge incidence matrix maps the node hits to edge ids
(deduplicating inside scipy's C kernel), and ``F + Fᵀ`` symmetrizes.
The result is a :class:`InterferenceSets` object — CSR
(indptr/indices) storage behind the original list-of-arrays accessor —
so downstream consumers (``interference_degrees``,
``estimate_edge_interference``, ``conflict_graph``) read the shared
arrays instead of re-deriving Python sets.
"""

from __future__ import annotations

import itertools
import operator
from collections.abc import Sequence
from typing import Iterator

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from repro.graphs.base import GeometricGraph
from repro.interference.model import InterferenceModel, interference_radius
from repro.utils.arrays import ragged_arange

__all__ = [
    "InterferenceSets",
    "interference_sets",
    "interference_degrees",
    "interference_number",
    "conflict_graph",
    "greedy_interference_schedule",
]


class InterferenceSets(Sequence):
    """CSR-backed interference sets, indexable like a list of arrays.

    ``sets[k]`` is the sorted array of edge ids interfering with edge
    ``k`` (the paper's I(e_k), symmetric closure included), served as a
    zero-copy slice of one shared ``indices`` array.  Equality against
    plain lists of arrays is element-wise, so existing call sites and
    tests that treated the result as ``list[np.ndarray]`` keep working.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        # Keep whatever integer dtype the kernel produced (int32 CSR from
        # scipy at typical sizes) — fancy indexing accepts it and the
        # copy to intp would cost more than it buys.
        self.indptr = np.ascontiguousarray(indptr)
        self.indices = np.ascontiguousarray(indices)
        self.indptr.flags.writeable = False
        self.indices.flags.writeable = False

    # -- sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.indptr) - 1

    def __getitem__(self, k):
        if isinstance(k, slice):
            return [self[i] for i in range(*k.indices(len(self)))]
        k = operator.index(k)
        if k < 0:
            k += len(self)
        if not 0 <= k < len(self):
            raise IndexError(f"edge index {k} out of range for {len(self)} edges")
        return self.indices[self.indptr[k] : self.indptr[k + 1]]

    def __iter__(self) -> "Iterator[np.ndarray]":
        for k in range(len(self)):
            yield self.indices[self.indptr[k] : self.indptr[k + 1]]

    def __eq__(self, other) -> bool:
        if isinstance(other, InterferenceSets):
            return np.array_equal(self.indptr, other.indptr) and np.array_equal(
                self.indices, other.indices
            )
        try:
            if len(other) != len(self):
                return False
            return all(np.array_equal(a, np.asarray(b)) for a, b in zip(self, other))
        except TypeError:
            return NotImplemented

    def __repr__(self) -> str:
        return f"<InterferenceSets m={len(self)} nnz={len(self.indices)}>"

    @classmethod
    def from_rows(cls, keys: np.ndarray, rows: "Sequence") -> "InterferenceSets":
        """Build from per-edge key sets (the incremental maintainer's form).

        ``keys`` is the sorted array of edge keys (one per edge, row
        order); ``rows[k]`` is an iterable of keys interfering with edge
        ``k``.  Keys are mapped to row indices by binary search, and each
        row comes out sorted — matching the CSR layout the vectorized
        kernel produces, so ``==`` against it is exact.
        """
        m = len(keys)
        counts = np.fromiter((len(r) for r in rows), dtype=np.intp, count=m)
        indptr = np.zeros(m + 1, dtype=np.intp)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        flat = np.fromiter(itertools.chain.from_iterable(rows), dtype=np.int64, count=nnz)
        indices = np.searchsorted(np.asarray(keys), flat)
        if m == 0 or nnz == 0:
            return cls(indptr, indices)
        # Per-row ascending order without a Python-level sort per row:
        # scipy's in-place C kernel sorts all rows in one pass.
        mat = sp.csr_matrix(
            (np.ones(nnz, dtype=np.int8), indices, indptr), shape=(m, m)
        )
        mat.sort_indices()
        return cls(indptr, mat.indices)

    # -- derived quantities --------------------------------------------
    @property
    def degrees(self) -> np.ndarray:
        """``|I(e)|`` for every edge (shared, read-only)."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """The interference number ``max_e |I(e)|`` (0 if no edges)."""
        deg = self.degrees
        return int(deg.max()) if len(deg) else 0

    def neighborhood_max(self, values: np.ndarray) -> np.ndarray:
        """Per edge e, ``max_{e' ∈ I(e)} values[e']`` (-inf for empty I(e))."""
        values = np.asarray(values, dtype=np.float64)
        out = np.full(len(self), -np.inf)
        deg = self.degrees
        nonempty = deg > 0
        if nonempty.any():
            gathered = values[self.indices]
            out[nonempty] = np.maximum.reduceat(gathered, self.indptr[:-1][nonempty])
        return out


def interference_sets(graph: GeometricGraph, delta: float) -> InterferenceSets:
    """I(e) for every edge of ``graph`` (symmetric closure), output-sensitive.

    For each edge e' with guard radius r' = (1+Δ)·len(e'), the edges it
    interferes with are exactly those having an endpoint within r' of
    either endpoint of e'.  One batched KD-tree ball query per *node*
    (at its largest incident guard radius) plus a merged distance /
    threshold lexsort builds the sparse hit matrix P (edge × node); the
    sparse product ``P @ Inc`` with the node→incident-edge incidence
    matrix expands node hits to edges — the dedup happens inside
    scipy's C matmul accumulator — and ``F + Fᵀ`` symmetrizes.  Every
    pass after the KD-tree query is O(hits + output) C code.

    Returns
    -------
    :class:`InterferenceSets`, indexable (aligned with ``graph.edges``)
    as sorted arrays of edge ids.
    """
    pts = graph.points
    edges = graph.edges
    m = len(edges)
    n = graph.n_nodes
    if m == 0:
        return InterferenceSets(np.zeros(1, dtype=np.intp), np.empty(0, dtype=np.intp))
    tree = cKDTree(pts)

    # Open-disk semantics: shrink the inclusive KD-tree radius by an
    # epsilon relative to r so boundary points are excluded.  A "slot"
    # is one endpoint of one edge: slots 2k and 2k+1 belong to edge k.
    radii = interference_radius(graph.edge_lengths, delta) * (1.0 - 1e-12)
    endpoints = edges.ravel()
    slot_r = np.repeat(radii, 2)

    # One KD-tree ball query per *node* (not per slot) at that node's
    # largest incident guard radius — endpoints shared by many edges
    # are queried once, which shrinks both the query count and the raw
    # hit volume by the average degree.
    uniq, iu = np.unique(endpoints, return_inverse=True)
    rmax = np.zeros(n)
    np.maximum.at(rmax, endpoints, slot_r)
    hits = tree.query_ball_point(pts[uniq], rmax[uniq], return_sorted=False)
    cnts = np.fromiter(map(len, hits), dtype=np.int64, count=len(uniq))
    tot = int(cnts.sum())
    idx_t = np.int32 if max(tot, 2 * m) < np.iinfo(np.int32).max else np.int64
    raw = np.fromiter(itertools.chain.from_iterable(hits), dtype=idx_t, count=tot)
    seg = np.zeros(len(uniq) + 1, dtype=np.int64)
    np.cumsum(cnts, out=seg[1:])

    # Per slot, the hits within its own (smaller) radius are a prefix
    # of the node's hits sorted by squared distance.  One merged
    # lexsort of hit distances and slot thresholds — hits first at
    # ties, matching the KD-tree's inclusive d² ≤ r² — ranks every
    # threshold inside its node segment exactly, with no per-slot loop.
    owner = np.repeat(np.arange(len(uniq), dtype=np.int64), cnts)
    diff = pts[raw] - pts[uniq[owner]]
    d2 = diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1]
    vals = np.concatenate([d2, slot_r * slot_r])
    owners_all = np.concatenate([owner, iu])
    is_thresh = np.zeros(tot + 2 * m, dtype=bool)
    is_thresh[tot:] = True
    order = np.lexsort((is_thresh, vals, owners_all))
    sorted_thresh = is_thresh[order]
    hits_before = np.cumsum(~sorted_thresh)
    tpos = np.nonzero(sorted_thresh)[0]
    slot_ids = order[tpos] - tot
    cnt_slot = np.empty(2 * m, dtype=np.int64)
    cnt_slot[slot_ids] = hits_before[tpos] - seg[iu[slot_ids]]
    raw_sorted = raw[order[~sorted_thresh]]  # grouped by node, ascending d²

    # P[k, u] = #{endpoints of k whose guard disk contains node u} (>0 ⇒ hit):
    # gather each slot's prefix, pairing slots 2k/2k+1 into row k.
    p_cols = raw_sorted[ragged_arange(seg[iu], cnt_slot)]
    p_indptr = np.zeros(m + 1, dtype=idx_t)
    np.cumsum(cnt_slot[0::2] + cnt_slot[1::2], out=p_indptr[1:])
    total = int(p_indptr[-1])
    ones = np.ones(max(total, 2 * m), dtype=np.int32)
    P = _raw_csr(ones[:total], p_cols, p_indptr, (m, n))

    # Inc[u, v] = 1 iff node u is an endpoint of edge v.  The stable
    # argsort of the flat endpoint list groups slots by node; slot s
    # belongs to edge s >> 1.
    endpoints = edges.ravel()
    inc_indices = (np.argsort(endpoints, kind="stable") >> 1).astype(idx_t)
    inc_indptr = np.zeros(n + 1, dtype=idx_t)
    np.cumsum(np.bincount(endpoints, minlength=n), out=inc_indptr[1:])
    Inc = _raw_csr(ones[: 2 * m], inc_indices, inc_indptr, (n, m))

    # F[k, v] > 0 iff v has an endpoint in k's guard zone (directed).
    F = P @ Inc

    # Drop the self-interference diagonal (every row has exactly one
    # diagonal entry: an edge's own endpoints lie in its guard zone),
    # then take the symmetric closure.  ``.T.tocsr()`` is a C counting
    # sort, so Ftr (and its re-transpose) come out with sorted indices
    # and the sum is the canonical CSR layout we hand out.
    rows = np.repeat(np.arange(m, dtype=F.indices.dtype), np.diff(F.indptr))
    off_diag = F.indices != rows
    f_indptr = F.indptr - np.arange(m + 1, dtype=F.indptr.dtype)
    nnz = int(f_indptr[-1])
    Fn = _raw_csr(np.ones(nnz, dtype=np.int32), F.indices[off_diag], f_indptr, (m, m))
    Ftr = Fn.T.tocsr()
    full = Ftr.T.tocsr() + Ftr
    return InterferenceSets(full.indptr, full.indices)


def _raw_csr(data, indices, indptr, shape) -> "sp.csr_matrix":
    """CSR from prebuilt arrays, skipping scipy's per-build validation."""
    out = sp.csr_matrix(shape, dtype=data.dtype)
    out.data, out.indices, out.indptr = data, indices, indptr
    return out


def interference_degrees(graph: GeometricGraph, delta: float) -> np.ndarray:
    """``|I(e)|`` for every edge."""
    return interference_sets(graph, delta).degrees


def interference_number(graph: GeometricGraph, delta: float) -> int:
    """The topology's interference number ``max_e |I(e)|`` (0 if no edges)."""
    return interference_sets(graph, delta).max_degree()


def conflict_graph(graph: GeometricGraph, delta: float):
    """The edge conflict graph as :class:`networkx.Graph`.

    Vertices are edge indices into ``graph.edges``; an edge joins two
    mutually interfering topology edges.
    """
    import networkx as nx

    sets = interference_sets(graph, delta)
    g = nx.Graph()
    g.add_nodes_from(range(len(sets)))
    rows = np.repeat(np.arange(len(sets), dtype=np.intp), sets.degrees)
    cols = sets.indices
    upper = cols > rows
    g.add_edges_from(zip(rows[upper].tolist(), cols[upper].tolist()))
    return g


def greedy_interference_schedule(graph: GeometricGraph, delta: float) -> list[np.ndarray]:
    """Partition the edges into non-interfering rounds by greedy colouring.

    Uses networkx's ``greedy_color`` with largest-first ordering; the
    number of rounds is at most (interference number + 1).  Each round
    is an array of edge indices that can transmit simultaneously under
    the guard-zone model.
    """
    import networkx as nx

    cg = conflict_graph(graph, delta)
    if cg.number_of_nodes() == 0:
        return []
    coloring = nx.greedy_color(cg, strategy="largest_first")
    n_colors = max(coloring.values()) + 1
    rounds: list[list[int]] = [[] for _ in range(n_colors)]
    for edge_id, color in coloring.items():
        rounds[color].append(edge_id)
    out = [np.asarray(sorted(r), dtype=np.intp) for r in rounds]
    # Verification in debug spirit: rounds must be pairwise conflict-free.
    model = InterferenceModel(delta)
    for r in out:
        if len(r) > 1:
            mat = model.interference_matrix(graph.points, graph.edges[r])
            if mat.any():
                raise AssertionError("greedy schedule produced an interfering round")
    return out
