"""Baseline routers for comparison against (T, γ)-balancing.

The paper notes (§1.2) that most deployed ad-hoc routing protocols are
shortest-path heuristics without worst-case guarantees.  These two
baselines anchor the E6/E12 comparisons:

* :class:`ShortestPathRouter` — static min-energy routing tables
  (Dijkstra on |uv|^κ), FIFO queues per node, one packet per usable
  directed edge per step, drop-on-full admission.  This is the
  "DSR/AODV-like" reference point.
* :class:`RandomWalkRouter` — forwards a random buffered packet to a
  random usable neighbor; the weakest sensible baseline (finite
  expected delivery on connected graphs, dreadful energy).

Both expose the same step interface as
:class:`repro.core.balancing.BalancingRouter` so the engine can drive
any of them interchangeably.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.graphs.base import GeometricGraph
from repro.sim.stats import RoutingStats
from repro.utils.rng import as_rng

__all__ = ["ShortestPathRouter", "RandomWalkRouter"]


class _QueueRouterBase:
    """Shared plumbing: FIFO queues of destination ids per node."""

    def __init__(self, graph: GeometricGraph, max_queue: int) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.graph = graph
        self.max_queue = int(max_queue)
        self.queues: list[deque[int]] = [deque() for _ in range(graph.n_nodes)]
        self.stats = RoutingStats()

    def inject(self, node: int, dest: int, count: int = 1) -> int:
        """Enqueue up to ``count`` packets at ``node`` bound for ``dest``."""
        accepted = 0
        for _ in range(int(count)):
            if len(self.queues[node]) >= self.max_queue:
                break
            self.queues[node].append(int(dest))
            accepted += 1
        self.stats.record_injection(int(count), accepted)
        return accepted

    def total_packets(self) -> int:
        return sum(len(q) for q in self.queues)

    def max_height(self) -> int:
        return max((len(q) for q in self.queues), default=0)

    def end_step(self, delivered: int) -> None:
        self.stats.end_step(self.max_height(), delivered)


class ShortestPathRouter(_QueueRouterBase):
    """Min-energy shortest-path routing with FIFO queues.

    Routing tables are computed once from the construction-time graph;
    if the usable edge set shrinks at some step, packets whose next hop
    is unavailable simply wait (the classic failure mode of
    table-driven protocols under churn that the balancing algorithm
    avoids).
    """

    def __init__(self, graph: GeometricGraph, *, max_queue: int = 10_000) -> None:
        super().__init__(graph, max_queue)
        _, pred = dijkstra(graph.cost_adjacency, directed=False, return_predecessors=True)
        self._pred = pred

    def next_hop(self, node: int, dest: int) -> int | None:
        """Successor of ``node`` on the min-energy path to ``dest``."""
        if node == dest:
            return None
        # Walk predecessors from dest back toward node.
        cur = int(dest)
        prev = cur
        while cur != node:
            nxt = self._pred[node, cur]
            if nxt < 0:
                return None
            prev = cur
            cur = int(nxt)
        return prev

    def run_step(
        self,
        directed_edges: np.ndarray,
        costs: np.ndarray,
        injections=None,
        success_fn=None,
    ) -> int:
        """One step: forward FIFO heads along their next-hop edges."""
        edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        usable: dict[tuple[int, int], float] = {
            (int(u), int(v)): float(c) for (u, v), c in zip(edges, costs)
        }
        delivered = 0
        moves: list[tuple[int, int, int, float]] = []
        sent_from: dict[int, int] = {}
        for (u, v), c in usable.items():
            q = self.queues[u]
            # One packet per directed edge; scan the queue for a packet
            # whose next hop is v (FIFO within that destination class).
            if sent_from.get(u, 0) >= len(q):
                continue
            for idx, dest in enumerate(q):
                if self.next_hop(u, dest) == v:
                    moves.append((u, v, idx, c))
                    break
        # Commit moves (recompute indices as queues mutate).
        claimed: set[tuple[int, int]] = set()
        for (u, v, idx, c) in moves:
            if (u, v) in claimed:
                continue
            q = self.queues[u]
            # Find the first packet still wanting this hop.
            pick = None
            for i, dest in enumerate(q):
                if self.next_hop(u, dest) == v:
                    pick = i
                    break
            if pick is None:
                continue
            dest = q[pick]
            del q[pick]
            claimed.add((u, v))
            self.stats.record_attempt(c, True)
            if v == dest:
                delivered += 1
                self.stats.record_delivery()
            else:
                self.queues[v].append(dest)
        for node, dest, count in injections or []:
            self.inject(node, dest, count)
        self.end_step(delivered)
        return delivered


class RandomWalkRouter(_QueueRouterBase):
    """Forward a random packet along each usable edge with probability ½.

    Deliberately naive: no state beyond the queues.  Used to show the
    gap between "anything that moves packets" and the balancing bound.
    """

    def __init__(self, graph: GeometricGraph, *, max_queue: int = 10_000, rng=None) -> None:
        super().__init__(graph, max_queue)
        self.rng = as_rng(rng)

    def run_step(
        self,
        directed_edges: np.ndarray,
        costs: np.ndarray,
        injections=None,
        success_fn=None,
    ) -> int:
        edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        delivered = 0
        for (u, v), c in zip(edges, costs):
            u, v = int(u), int(v)
            q = self.queues[u]
            if not q or self.rng.random() < 0.5:
                continue
            dest = q.popleft()
            self.stats.record_attempt(float(c), True)
            if v == dest:
                delivered += 1
                self.stats.record_delivery()
            else:
                if len(self.queues[v]) < self.max_queue:
                    self.queues[v].append(dest)
                # else: packet lost to overflow mid-flight (counted as drop)
                else:
                    self.stats.dropped += 1
        for node, dest, count in injections or []:
            self.inject(node, dest, count)
        self.end_step(delivered)
        return delivered
