"""Schedules and their validation (§3.1).

A *schedule* ``S = (t₀, (e₁, t₁), …, (e_ℓ, t_ℓ))`` certifies the
delivery of one packet: injected at ``t₀`` at the source, it crosses
edge ``e_i`` at time ``t_i`` with ``t₀ < t₁ < … < t_ℓ``, the edges
forming a path from source to destination, each edge active when used.
A *set* of schedules is feasible when no directed edge is used by two
schedules at the same time.

The experiments use schedule sets as **witnesses**: a lower bound on
what a best possible routing algorithm achieves, against which the
online algorithms are compared.  :func:`validate_schedule` and
:func:`schedules_conflict_free` make the witness property machine
checked rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Schedule",
    "validate_schedule",
    "schedules_conflict_free",
    "witness_buffer_usage",
]


@dataclass(frozen=True)
class Schedule:
    """Delivery certificate for one packet.

    Attributes
    ----------
    inject_time:
        t₀ — step at which the packet is injected at ``source``.
    hops:
        Tuple of ``((u, v), t)`` — directed edge and the step it is
        crossed; times strictly increasing and all > ``inject_time``.
    """

    inject_time: int
    hops: tuple[tuple[tuple[int, int], int], ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a schedule must contain at least one hop")

    @property
    def source(self) -> int:
        return self.hops[0][0][0]

    @property
    def dest(self) -> int:
        return self.hops[-1][0][1]

    @property
    def path(self) -> list[int]:
        """Node sequence source..dest."""
        nodes = [self.source]
        for (u, v), _ in self.hops:
            nodes.append(v)
        return nodes

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def finish_time(self) -> int:
        return self.hops[-1][1]

    def cost(self, cost_fn) -> float:
        """Total energy under ``cost_fn((u, v), t) → float``."""
        return float(sum(cost_fn(e, t) for e, t in self.hops))


def validate_schedule(
    schedule: Schedule,
    *,
    active_fn=None,
) -> None:
    """Raise ``ValueError`` unless ``schedule`` is internally consistent.

    Checks: path connectivity, strictly increasing times with
    ``t₀ < t₁``, and (when ``active_fn(edge, t) → bool`` is given) that
    every hop uses an edge active at its time.
    """
    prev_t = schedule.inject_time
    prev_node = schedule.source
    for (u, v), t in schedule.hops:
        if u == v:
            raise ValueError(f"self-loop hop at node {u}")
        if u != prev_node:
            raise ValueError(f"path broken: hop starts at {u}, expected {prev_node}")
        if t <= prev_t:
            raise ValueError(f"times not strictly increasing: {t} after {prev_t}")
        if active_fn is not None and not active_fn((u, v), t):
            raise ValueError(f"edge ({u}, {v}) not active at step {t}")
        prev_node = v
        prev_t = t


def schedules_conflict_free(schedules: "list[Schedule]") -> bool:
    """Whether no directed edge is used by two schedules at the same step."""
    seen: set[tuple[int, int, int]] = set()
    for s in schedules:
        for (u, v), t in s.hops:
            key = (u, v, t)
            if key in seen:
                return False
            seen.add(key)
    return True


def witness_buffer_usage(schedules: "list[Schedule]") -> int:
    """Maximum buffer height any (node, destination) pair reaches under
    the witness schedules (the B of the competitive comparison).

    A packet occupies ``Q_{v,d}`` from its arrival at v (injection time
    for the source) until the step it leaves v; it never occupies the
    destination buffer (absorption).
    """
    if not schedules:
        return 0
    events: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for s in schedules:
        d = s.dest
        arrive = s.inject_time
        node = s.source
        for (u, v), t in s.hops:
            # occupies Q_{node,d} during steps [arrive, t): +1 at arrive, -1 at t
            events.setdefault((node, d), []).append((arrive, +1))
            events.setdefault((node, d), []).append((t, -1))
            node, arrive = v, t
    peak = 0
    for evs in events.values():
        evs.sort(key=lambda e: (e[0], e[1]))  # departures before arrivals at same t
        cur = 0
        for _, delta in evs:
            cur += delta
            peak = max(peak, cur)
    return peak
