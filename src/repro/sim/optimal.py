"""Reference OPT bounds.

Competitive measurements bracket the unknown optimum:

* **lower bound** — the witness schedules emitted by the adversary
  generators (:mod:`repro.sim.adversary`);
* **upper bound** — :func:`time_expanded_max_throughput`, a max-flow
  over the time-expanded graph: one vertex per (node, step), holdover
  arcs of capacity B (the buffer bound), and one unit-capacity arc per
  usable directed edge per step.  Any feasible routing is a feasible
  flow into the super-sink, so the max-flow value upper-bounds the
  deliveries of *every* algorithm, including OPT.  (Relaxing packet
  destinations to a shared super-sink only enlarges the feasible set,
  preserving the upper-bound property for multi-destination traffic.)

Also here: min-energy path costs (the denominator of energy-stretch
style cost comparisons) and a witness cost summary helper.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.graphs.base import GeometricGraph
from repro.sim.schedules import Schedule, witness_buffer_usage

__all__ = [
    "time_expanded_max_throughput",
    "min_energy_cost_matrix",
    "witness_cost_summary",
]


def time_expanded_max_throughput(
    graph: GeometricGraph,
    injections: "dict[int, tuple[tuple[int, int, int], ...]]",
    duration: int,
    *,
    buffer_size: "int | None" = None,
    active_edges_fn=None,
) -> int:
    """Upper bound on deliveries of any routing algorithm.

    Parameters
    ----------
    injections:
        step → tuple of ``(node, dest, count)`` offers.
    duration:
        Steps 0..duration-1 are modelled.
    buffer_size:
        Capacity of the holdover arcs (B); ``None`` = unbounded buffers.
    active_edges_fn:
        ``t → (directed_edges, costs)``; defaults to all directed edges
        of ``graph`` every step.

    Returns
    -------
    The max-flow value (an integer; all capacities are integral).
    """
    if duration < 1:
        return 0
    n = graph.n_nodes
    dests = {d for offers in injections.values() for (_, d, _) in offers}
    if not dests:
        return 0

    g = nx.DiGraph()
    src, sink = "S", "T"
    hold_cap = float("inf") if buffer_size is None else int(buffer_size)

    def nid(v: int, t: int) -> tuple[int, int]:
        return (int(v), int(t))

    for t in range(duration):
        # Holdover arcs (v, t) -> (v, t+1).
        if t + 1 < duration:
            for v in range(n):
                g.add_edge(nid(v, t), nid(v, t + 1), capacity=hold_cap)
        # Transmission arcs for edges usable at step t.
        if active_edges_fn is None:
            directed = graph.directed_edge_array()
        else:
            directed, _ = active_edges_fn(t)
        if t + 1 < duration:
            for u, v in np.asarray(directed).reshape(-1, 2):
                g.add_edge(nid(int(u), t), nid(int(v), t + 1), capacity=1)

    # Injection arcs: packets become routable the step after injection.
    # Offers for the same (t, node, dest) are merged first — networkx
    # add_edge would otherwise overwrite the capacity instead of adding.
    merged: dict[tuple[int, int, int], int] = {}
    for t, offers in injections.items():
        for (node, dest, count) in offers:
            key = (int(t), int(node), int(dest))
            merged[key] = merged.get(key, 0) + int(count)
    total_injected = sum(merged.values())
    for (t, node, dest), count in merged.items():
        t_in = min(t + 1, duration - 1)
        key = ("inj", t, node, dest)
        g.add_edge(src, key, capacity=count)
        g.add_edge(key, nid(node, t_in), capacity=count)

    # Absorption arcs: a packet at its destination at any step is delivered.
    for d in dests:
        for t in range(duration):
            g.add_edge(nid(int(d), t), sink, capacity=float("inf"))

    if total_injected == 0:
        return 0
    value, _ = nx.maximum_flow(g, src, sink)
    return int(value)


def min_energy_cost_matrix(graph: GeometricGraph) -> np.ndarray:
    """All-pairs minimum-energy path costs on ``graph`` (∞ if unreachable)."""
    return dijkstra(graph.cost_adjacency, directed=False)


def witness_cost_summary(
    schedules: "list[Schedule]",
    graph: GeometricGraph,
) -> dict[str, float]:
    """B, L̄, C̄ and makespan of a witness schedule set."""
    if not schedules:
        return {
            "delivered": 0.0,
            "buffer": 1.0,
            "avg_path_length": 1.0,
            "avg_cost": 0.0,
            "makespan": 0.0,
        }
    total_cost = sum(
        s.cost(lambda e, t: graph.cost(int(e[0]), int(e[1]))) for s in schedules
    )
    return {
        "delivered": float(len(schedules)),
        "buffer": float(max(1, witness_buffer_usage(schedules))),
        "avg_path_length": float(np.mean([s.n_hops for s in schedules])),
        "avg_cost": float(total_cost / len(schedules)),
        "makespan": float(max(s.finish_time for s in schedules)),
    }
