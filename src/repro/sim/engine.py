"""The synchronous simulation loop (§3 model).

One engine step = one time step of the paper's model:

1. ask the scenario/MAC for the usable directed edges and costs;
2. the router decides transmissions from beginning-of-step heights;
3. interference (if modelled) determines which attempts succeed;
4. packets move / are absorbed;
5. the adversary's injections for the step arrive (drop-on-full).

The engine is agnostic to which router runs — (T, γ)-balancing, the
baselines, or the honeycomb router (which fuses steps 1–4 internally
and is driven through the same interface via a thin adapter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import RoutingStats

__all__ = ["SimulationEngine", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one engine run."""

    stats: RoutingStats
    steps: int
    leftover: int = 0
    """Packets still buffered somewhere when the run ended."""


class SimulationEngine:
    """Drive a router against a scenario for a fixed horizon.

    Parameters
    ----------
    router:
        Anything exposing ``run_step(directed_edges, costs, injections,
        success_fn)``, ``stats``, and ``total_packets()`` —
        :class:`repro.core.balancing.BalancingRouter` and the baseline
        routers qualify.
    active_edges_fn:
        ``t → (directed_edges, costs)``.
    injections_fn:
        ``t → iterable of (node, dest, count)``.
    success_fn:
        Optional ``transmissions → bool mask`` (interference layer).
    """

    def __init__(
        self,
        router,
        active_edges_fn,
        injections_fn,
        *,
        success_fn=None,
    ) -> None:
        self.router = router
        self.active_edges_fn = active_edges_fn
        self.injections_fn = injections_fn
        self.success_fn = success_fn

    @classmethod
    def for_scenario(cls, router, scenario, *, success_fn=None) -> "SimulationEngine":
        """Wire a :class:`~repro.sim.adversary.WitnessedScenario` in."""
        return cls(
            router,
            scenario.active_edges,
            scenario.injections,
            success_fn=success_fn,
        )

    def run(self, duration: int, *, drain: int = 0) -> SimulationResult:
        """Run ``duration`` adversarial steps plus ``drain`` injection-free
        steps (letting buffered packets finish), returning the result.

        ``drain`` mirrors the asymptotic flavour of the theorems: the
        competitive bounds hold up to an additive term r, realized here
        as packets still in flight when injections stop.
        """
        if duration < 0 or drain < 0:
            raise ValueError("duration and drain must be >= 0")
        for t in range(duration + drain):
            edges, costs = self.active_edges_fn(t)
            injections = list(self.injections_fn(t)) if t < duration else []
            self.router.run_step(edges, costs, injections, self.success_fn)
        return SimulationResult(
            stats=self.router.stats,
            steps=duration + drain,
            leftover=self.router.total_packets(),
        )
