"""The synchronous simulation loop (§3 model).

One engine step = one time step of the paper's model:

1. ask the scenario/MAC for the usable directed edges and costs;
2. the router decides transmissions from beginning-of-step heights;
3. interference (if modelled) determines which attempts succeed;
4. packets move / are absorbed;
5. the adversary's injections for the step arrive (drop-on-full).

The engine is agnostic to which router runs — (T, γ)-balancing, the
baselines, or the honeycomb router (which fuses steps 1–4 internally
and is driven through the same interface via a thin adapter).

Observability: each step runs under an ``engine.step`` span, and when
tracing is enabled (or a :class:`~repro.obs.metrics.StepSeries` is
passed explicitly) the engine snapshots the router's cumulative
``RoutingStats`` counters plus the two buffer gauges after every step.
Auto-created series register themselves with the active tracer, so a
``--trace`` run exports them for ``python -m repro report``.  All of
this collapses to a handful of no-op checks when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import metrics, trace
from repro.obs.metrics import StepSeries
from repro.sim.stats import RoutingStats

__all__ = ["SimulationEngine", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one engine run."""

    stats: RoutingStats
    steps: int
    leftover: int = 0
    """Packets still buffered somewhere when the run ended."""
    series: "StepSeries | None" = None
    """Per-step series, when recording was on for this run."""


class SimulationEngine:
    """Drive a router against a scenario for a fixed horizon.

    Parameters
    ----------
    router:
        Anything exposing ``run_step(directed_edges, costs, injections,
        success_fn)``, ``stats``, and ``total_packets()`` —
        :class:`repro.core.balancing.BalancingRouter` and the baseline
        routers qualify.
    active_edges_fn:
        ``t → (directed_edges, costs)``.
    injections_fn:
        ``t → iterable of (node, dest, count)``.
    success_fn:
        Optional ``transmissions → bool mask`` (interference layer).
    step_series:
        Optional explicit per-step recorder; when omitted one is created
        automatically for each :meth:`run` while tracing is enabled.
    """

    def __init__(
        self,
        router,
        active_edges_fn,
        injections_fn,
        *,
        success_fn=None,
        step_series: "StepSeries | None" = None,
    ) -> None:
        self.router = router
        self.active_edges_fn = active_edges_fn
        self.injections_fn = injections_fn
        self.success_fn = success_fn
        self.step_series = step_series

    @classmethod
    def for_scenario(cls, router, scenario, *, success_fn=None) -> "SimulationEngine":
        """Wire a :class:`~repro.sim.adversary.WitnessedScenario` in."""
        return cls(
            router,
            scenario.active_edges,
            scenario.injections,
            success_fn=success_fn,
        )

    def run(self, duration: int, *, drain: int = 0) -> SimulationResult:
        """Run ``duration`` adversarial steps plus ``drain`` injection-free
        steps (letting buffered packets finish), returning the result.

        ``drain`` mirrors the asymptotic flavour of the theorems: the
        competitive bounds hold up to an additive term r, realized here
        as packets still in flight when injections stop.
        """
        if duration < 0 or drain < 0:
            raise ValueError("duration and drain must be >= 0")
        tracer = trace.active()
        series = self.step_series
        if series is None and tracer is not None:
            series = StepSeries()
        router = self.router
        max_height_fn = getattr(router, "max_height", None) if series is not None else None
        with trace.span(
            "engine.run",
            router=type(router).__name__,
            duration=duration,
            drain=drain,
        ):
            for t in range(duration + drain):
                with trace.span("engine.step", step=t):
                    edges, costs = self.active_edges_fn(t)
                    injections = list(self.injections_fn(t)) if t < duration else []
                    router.run_step(edges, costs, injections, self.success_fn)
                if series is not None:
                    series.record_step(
                        router.stats,
                        total_buffer=router.total_packets(),
                        max_buffer=max_height_fn() if max_height_fn else router.stats.max_buffer_height,
                    )
        if series is not None and tracer is not None:
            tracer.add_series(
                tracer.next_run_label(type(router).__name__),
                series,
                final_stats=router.stats.to_dict(),
            )
        if tracer is not None:
            reg = metrics.active()
            if reg is not None:
                reg.counter("engine.runs").inc()
                reg.counter("engine.steps").inc(duration + drain)
        return SimulationResult(
            stats=router.stats,
            steps=duration + drain,
            leftover=router.total_packets(),
            series=series,
        )
