"""The synchronous simulation loop (§3 model).

One engine step = one time step of the paper's model:

1. ask the scenario/MAC for the usable directed edges and costs;
2. the router decides transmissions from beginning-of-step heights;
3. interference (if modelled) determines which attempts succeed;
4. packets move / are absorbed;
5. the adversary's injections for the step arrive (drop-on-full).

The engine is agnostic to which router runs — (T, γ)-balancing, the
baselines, or the honeycomb router (which fuses steps 1–4 internally
and is driven through the same interface via a thin adapter).

The loop is *resumable*: :meth:`SimulationEngine.step` advances one
step, :meth:`SimulationEngine.run_steps` advances ``k``, and callers —
the batch experiments and the long-running session server
(:mod:`repro.service`) alike — may interleave stepping with live event
injection and series streaming.  :meth:`SimulationEngine.run` is a
thin wrapper over the step API and produces bit-identical results
(pinned by ``tests/test_engine_step_api.py``).

Observability: each step runs under an ``engine.step`` span, and when
tracing is enabled (or a :class:`~repro.obs.metrics.StepSeries` is
passed explicitly) the engine snapshots the router's cumulative
``RoutingStats`` counters plus the two buffer gauges after every step.
Auto-created series register themselves with the active tracer, so a
``--trace`` run exports them for ``python -m repro report``.  All of
this collapses to a handful of no-op checks when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import metrics, trace
from repro.obs.metrics import StepSeries
from repro.sim.stats import RoutingStats

__all__ = ["SimulationEngine", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one engine run."""

    stats: RoutingStats
    steps: int
    leftover: int = 0
    """Packets still buffered somewhere when the run ended."""
    series: "StepSeries | None" = None
    """Per-step series, when recording was on for this run."""


class SimulationEngine:
    """Drive a router against a scenario for a fixed horizon.

    Parameters
    ----------
    router:
        Anything exposing ``run_step(directed_edges, costs, injections,
        success_fn)``, ``stats``, and ``total_packets()`` —
        :class:`repro.core.balancing.BalancingRouter` and the baseline
        routers qualify.
    active_edges_fn:
        ``t → (directed_edges, costs)``.  Optional when ``dynamic`` is
        given: the engine then derives both directions of the maintained
        topology with ``|uv|^κ`` costs.
    injections_fn:
        ``t → iterable of (node, dest, count)``; optional (no traffic).
    success_fn:
        Optional ``transmissions → bool mask`` (interference layer).
    step_series:
        Optional explicit per-step recorder; when omitted one is created
        automatically for each :meth:`run` while tracing is enabled.
    dynamic:
        Optional :class:`repro.dynamic.incremental.DynamicTopology`.
        When given, each step first applies the step's topology events
        via incremental maintenance (no full rebuild), drops packets
        buffered at nodes that failed or left (charged to
        ``stats.churn_drops``), and refuses injections whose source or
        destination is down (charged as drops).  The per-step series
        gains the cumulative churn columns.
    mac:
        Optional :class:`repro.dynamic.interference.DynamicMAC` (or any
        object with ``active_edges()`` / ``success_mask``).  Requires
        ``dynamic`` and replaces the plain maintained-topology edge
        derivation: each step's usable edges are the MAC's random
        activations over the *incrementally maintained* conflict
        structure, and ``success_fn`` defaults to the MAC's guard-zone
        ``success_mask``.
    tracer / registry:
        Optional per-engine :class:`repro.obs.trace.Tracer` /
        :class:`repro.obs.metrics.MetricsRegistry` handles.  When given
        they replace the process-global singletons for this engine's
        spans, auto-series registration, and counters — the isolation
        the session server needs to run many engines in one process
        without cross-talk.  When omitted the globals keep working
        exactly as before.
    """

    def __init__(
        self,
        router,
        active_edges_fn=None,
        injections_fn=None,
        *,
        success_fn=None,
        step_series: "StepSeries | None" = None,
        dynamic=None,
        mac=None,
        tracer=None,
        registry=None,
    ) -> None:
        if mac is not None:
            if dynamic is None:
                raise ValueError("mac requires a dynamic topology")
            if active_edges_fn is not None:
                raise ValueError("give either active_edges_fn or mac, not both")
            if success_fn is None:
                success_fn = mac.success_mask
        if active_edges_fn is None and dynamic is None:
            raise ValueError("need active_edges_fn or a dynamic topology")
        self.router = router
        self.active_edges_fn = active_edges_fn
        self.injections_fn = injections_fn
        self.success_fn = success_fn
        self.step_series = step_series
        self.dynamic = dynamic
        self.mac = mac
        self.tracer = tracer
        self.registry = registry
        #: index of the next step (== steps taken so far).
        self.t = 0
        self._series = step_series
        self._max_height_fn = getattr(router, "max_height", None)

    @classmethod
    def for_scenario(cls, router, scenario, *, success_fn=None) -> "SimulationEngine":
        """Wire a :class:`~repro.sim.adversary.WitnessedScenario` in."""
        return cls(
            router,
            scenario.active_edges,
            scenario.injections,
            success_fn=success_fn,
        )

    # ------------------------------------------------------------------
    # Observability handles (per-engine overrides falling back to the
    # process-global singletons)
    # ------------------------------------------------------------------
    def _active_tracer(self):
        return self.tracer if self.tracer is not None else trace.active()

    def _span(self, name: str, **args):
        tracer = self._active_tracer()
        return tracer.span(name, **args) if tracer is not None else trace.NOOP_SPAN

    def _ensure_series(self) -> "StepSeries | None":
        """The live recorder: explicit, already auto-created, or fresh
        when an observability sink is active (else ``None``)."""
        if self._series is None and self._active_tracer() is not None:
            self._series = StepSeries()
        return self._series

    @property
    def series(self) -> "StepSeries | None":
        """The per-step recorder this engine is feeding, if any."""
        return self._series

    # ------------------------------------------------------------------
    # The resumable step API
    # ------------------------------------------------------------------
    def step(self, *, inject: bool = True) -> int:
        """Advance the simulation by one step; returns the step index.

        ``inject=False`` runs an injection-free (drain) step.  Callers
        may freely interleave :meth:`step` with topology-event injection
        (via the dynamic topology's live schedule) and series reads —
        this is the primitive the session server drives.
        """
        t = self.t
        series = self._ensure_series()
        router = self.router
        dynamic = self.dynamic
        with self._span("engine.step", step=t):
            if dynamic is not None:
                self._apply_churn(dynamic, t)
            if self.active_edges_fn is not None:
                edges, costs = self.active_edges_fn(t)
            elif self.mac is not None:
                edges, costs = self.mac.active_edges()
            else:
                edges, costs = self._dynamic_edges(dynamic)
            injections = (
                list(self.injections_fn(t))
                if inject and self.injections_fn is not None
                else []
            )
            if dynamic is not None and injections:
                injections = self._filter_injections(dynamic, injections)
            router.run_step(edges, costs, injections, self.success_fn)
        self.t = t + 1
        if series is not None:
            max_height_fn = self._max_height_fn
            series.record_step(
                router.stats,
                total_buffer=router.total_packets(),
                max_buffer=max_height_fn() if max_height_fn else router.stats.max_buffer_height,
                events_applied=dynamic.events_applied if dynamic is not None else 0,
                repair_nodes_touched=dynamic.nodes_touched_total if dynamic is not None else 0,
                conflict_rows_touched=dynamic.conflict_rows_total if dynamic is not None else 0,
                batch_groups=getattr(dynamic, "batch_groups_total", 0) if dynamic is not None else 0,
                halo_nodes=getattr(dynamic, "halo_nodes_total", 0) if dynamic is not None else 0,
            )
        return t

    def run_steps(self, k: int, *, inject: bool = True) -> SimulationResult:
        """Advance ``k`` steps and return the cumulative result so far."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        for _ in range(int(k)):
            self.step(inject=inject)
        return self.result()

    def result(self) -> SimulationResult:
        """Snapshot of the run so far (no tracer bookkeeping)."""
        return SimulationResult(
            stats=self.router.stats,
            steps=self.t,
            leftover=self.router.total_packets(),
            series=self._series,
        )

    def run(self, duration: int, *, drain: int = 0) -> SimulationResult:
        """Run ``duration`` adversarial steps plus ``drain`` injection-free
        steps (letting buffered packets finish), returning the result.

        ``drain`` mirrors the asymptotic flavour of the theorems: the
        competitive bounds hold up to an additive term r, realized here
        as packets still in flight when injections stop.

        This is a thin wrapper over :meth:`step` — a stepped run with
        the same seeds produces the identical ``SimulationResult`` and
        ``StepSeries``.
        """
        if duration < 0 or drain < 0:
            raise ValueError("duration and drain must be >= 0")
        tracer = self._active_tracer()
        router = self.router
        if self.step_series is None:
            # Fresh auto-series per run() call (legacy batch behavior).
            self._series = None
        t0 = self.t
        with self._span(
            "engine.run",
            router=type(router).__name__,
            duration=duration,
            drain=drain,
        ):
            for _ in range(duration):
                self.step()
            for _ in range(drain):
                self.step(inject=False)
        series = self._series
        if series is not None and tracer is not None:
            tracer.add_series(
                tracer.next_run_label(type(router).__name__),
                series,
                final_stats=router.stats.to_dict(),
            )
        if tracer is not None:
            reg = self.registry if self.registry is not None else metrics.active()
            if reg is not None:
                reg.counter("engine.runs").inc()
                reg.counter("engine.steps").inc(duration + drain)
        return SimulationResult(
            stats=router.stats,
            steps=self.t - t0,
            leftover=router.total_packets(),
            series=series,
        )

    # ------------------------------------------------------------------
    # Dynamic-topology support
    # ------------------------------------------------------------------
    def _apply_churn(self, dynamic, t: int) -> None:
        """Apply step ``t``'s events; drain buffers at removed nodes."""
        from repro.dynamic.faults import drop_buffered_packets

        churn = dynamic.step(t)
        if churn.removed_nodes:
            lost = drop_buffered_packets(self.router, churn.removed_nodes)
            if lost:
                self.router.stats.record_churn_drops(lost)

    def _dynamic_edges(self, dynamic):
        """Both directions of the maintained topology with |uv|^κ costs."""
        import numpy as np

        undirected = dynamic.active_edges()
        if len(undirected) == 0:
            empty = np.empty((0, 2), dtype=np.intp)
            return empty, np.empty(0, dtype=np.float64)
        directed = np.vstack([undirected, undirected[:, ::-1]])
        inc = dynamic.incremental
        d = inc.position_array(directed[:, 1]) - inc.position_array(directed[:, 0])
        costs = np.hypot(d[:, 0], d[:, 1]) ** inc.kappa
        return directed, costs

    def _filter_injections(self, dynamic, injections):
        """Refuse injections with a down endpoint (charged as drops)."""
        from repro.dynamic.faults import filter_injections

        usable, refused = filter_injections(injections, dynamic.alive_ids())
        if refused:
            self.router.stats.record_injection(refused, 0)
        return usable
