"""Packet-identity tracking on top of the balancing router (extension).

The balancing analysis treats packets in one buffer as fungible, so the
core router stores integer heights.  For *delay* statistics (not a
measure the paper analyzes, but one every systems reader asks about)
this wrapper assigns identities: each buffer keeps a FIFO of injection
timestamps, moves mirror the height changes, and deliveries record the
end-to-end delay.

The wrapper delegates every decision to the wrapped
:class:`~repro.core.balancing.BalancingRouter`, so throughput/energy
numbers are identical — only bookkeeping is added.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime import would be circular (core imports sim)
    from repro.core.balancing import BalancingRouter

__all__ = ["TrackedBalancingRouter"]


class TrackedBalancingRouter:
    """Delay-tracking façade over a :class:`BalancingRouter`.

    FIFO identity assignment: when a packet moves out of ``Q_{v,d}``,
    the *oldest* timestamp in that buffer moves with it.  (Any
    assignment consistent with the heights yields the same throughput;
    FIFO gives the standard delay semantics.)
    """

    def __init__(self, router: "BalancingRouter") -> None:
        self.router = router
        n, k = router.heights.shape
        self._stamps: list[list[deque[int]]] = [
            [deque() for _ in range(k)] for _ in range(n)
        ]
        self._clock = 0
        self.delays: list[int] = []

    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.router.stats

    def total_packets(self) -> int:
        return self.router.total_packets()

    def _col(self, dest: int) -> int:
        return self.router._dest_col[int(dest)]

    # ------------------------------------------------------------------
    def run_step(self, directed_edges, costs, injections=None, success_fn=None) -> int:
        """One synchronous step with identity bookkeeping."""
        txs = self.router.decide(directed_edges, costs)
        mask = None if success_fn is None else np.asarray(success_fn(txs), dtype=bool)
        if mask is None:
            mask = np.ones(len(txs), dtype=bool)
        delivered = self.router.apply(txs, mask)
        for tx, ok in zip(txs, mask):
            if not ok:
                continue
            col = self._col(tx.dest)
            bucket = self._stamps[tx.src][col]
            if not bucket:
                raise AssertionError(
                    f"tracking drift at buffer ({tx.src}, dest {tx.dest}): "
                    "no timestamp for a departing packet — was the wrapped "
                    "router mutated directly?"
                )
            stamp = bucket.popleft()
            if tx.dst == tx.dest:
                self.delays.append(self._clock - stamp)
            else:
                self._stamps[tx.dst][col].append(stamp)
        for node, dest, count in injections or []:
            accepted = self.router.inject(node, dest, count)
            col = self._col(dest)
            for _ in range(accepted):
                self._stamps[node][col].append(self._clock)
        self.router.end_step(delivered)
        self._clock += 1
        self._check_consistency()
        return delivered

    def drop_buffered_packets(self, nodes) -> int:
        """Discard packets *and their timestamps* buffered at ``nodes``.

        Called by :func:`repro.dynamic.faults.drop_buffered_packets`
        when a tracked node fails or leaves; clearing both sides keeps
        the stamps-mirror-heights invariant intact.
        """
        h = self.router.heights
        lost = 0
        for v in (int(v) for v in nodes):
            if v < h.shape[0]:
                lost += int(h[v].sum())
                h[v] = 0
                for bucket in self._stamps[v]:
                    bucket.clear()
        return lost

    def _check_consistency(self) -> None:
        """Timestamps must mirror heights exactly (debug invariant)."""
        h = self.router.heights
        for v in range(h.shape[0]):
            for k in range(h.shape[1]):
                if len(self._stamps[v][k]) != h[v, k]:
                    raise AssertionError(
                        f"tracking drift at buffer ({v}, col {k}): "
                        f"{len(self._stamps[v][k])} stamps vs height {h[v, k]}"
                    )

    # ------------------------------------------------------------------
    def delay_summary(self) -> dict[str, float]:
        """Mean/median/p95/max end-to-end delay of delivered packets."""
        if not self.delays:
            return {"count": 0.0, "mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
        d = np.asarray(self.delays, dtype=np.float64)
        return {
            "count": float(len(d)),
            "mean": float(d.mean()),
            "median": float(np.median(d)),
            "p95": float(np.percentile(d, 95)),
            "max": float(d.max()),
        }
