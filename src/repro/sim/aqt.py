"""(w, ρ)-bounded adversaries from adversarial queuing theory (§1.2).

The paper's routing results build on the AQT line (Borodin et al.;
Aiello et al.; Awerbuch-Leighton): there, the adversary must keep the
injected load *feasible* — in every window of w steps, the paths
required by injected packets use each edge at most ρ·w times (ρ ≤ 1).
Under such an adversary nothing needs to be dropped, and the classical
question is *stability* (bounded queues) rather than throughput.

This module implements the bounded adversary as a witnessed scenario
generator, bridging the two models: the witness schedules double as the
AQT "paths revealed to the system", and the load constraint is checked
explicitly.  Experiments can then ask the classical stability question
of the (T, γ)-balancing algorithm: do buffer heights stay bounded for
ρ < 1?
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import GeometricGraph
from repro.sim.adversary import (
    WitnessedScenario,
    _build_scenario,
    _reconstruct,
    _shortest_path_table,
)
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range

__all__ = ["bounded_adversary_scenario", "edge_load_profile", "max_window_load"]


def edge_load_profile(scenario: WitnessedScenario) -> dict[tuple[int, int], list[int]]:
    """Per directed edge, the sorted injection times of packets whose
    witness path uses that edge (the AQT load bookkeeping)."""
    loads: dict[tuple[int, int], list[int]] = {}
    for s in scenario.witness_schedules:
        for (u, v), _t in s.hops:
            loads.setdefault((u, v), []).append(s.inject_time)
    return {e: sorted(ts) for e, ts in loads.items()}


def max_window_load(scenario: WitnessedScenario, window: int) -> float:
    """max over edges and windows of (path-uses injected per window)/window.

    A scenario is (w, ρ)-bounded iff this value is ≤ ρ for ``window=w``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    worst = 0.0
    for _e, times in edge_load_profile(scenario).items():
        ts = np.asarray(times)
        for t0 in ts:
            cnt = int(((ts >= t0) & (ts < t0 + window)).sum())
            worst = max(worst, cnt / window)
    return worst


def bounded_adversary_scenario(
    graph: GeometricGraph,
    *,
    rho: float,
    window: int,
    duration: int,
    rng=None,
    max_attempts_per_step: int = 20,
) -> WitnessedScenario:
    """Random (w, ρ)-bounded injections with a reservation witness.

    Each step the adversary draws random source-destination pairs and
    admits one only if adding its min-energy path keeps every directed
    edge's use count within ρ·w per w-window (leaky-bucket check on the
    trailing window).  The result is validated by
    :func:`max_window_load`.
    """
    check_in_range("rho", rho, 0.0, 1.0, inclusive=(False, True))
    if window < 1 or duration < 1:
        raise ValueError("window and duration must be >= 1")
    gen = as_rng(rng)
    n = graph.n_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    _dist, pred = _shortest_path_table(graph, "cost")
    budget = max(1, int(np.floor(rho * window)))
    # Trailing-window use times per directed edge.
    recent: dict[tuple[int, int], list[int]] = {}
    requests: list[tuple[int, int, int]] = []
    for t in range(duration):
        admitted_this_step = 0
        for _ in range(max_attempts_per_step):
            s, d = gen.choice(n, size=2, replace=False)
            path = _reconstruct(pred, int(s), int(d))
            if path is None or len(path) < 2:
                continue
            hops = list(zip(path[:-1], path[1:]))
            ok = True
            for h in hops:
                uses = [x for x in recent.get(h, []) if x > t - window]
                if len(uses) >= budget:
                    ok = False
                    break
            if not ok:
                continue
            for h in hops:
                recent.setdefault(h, []).append(t)
            requests.append((t, int(s), int(d)))
            admitted_this_step += 1
            if admitted_this_step >= max(1, budget):
                break
    if not requests:
        raise RuntimeError("adversary admitted no packets; increase rho or window")
    scenario = _build_scenario(
        graph,
        requests,
        activate_all=True,
        name=f"aqt(rho={rho:g}, w={window}, T={duration})",
    )
    return scenario
