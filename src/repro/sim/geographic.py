"""Greedy geographic routing — the §1.2 geometric-routing baseline.

The related work cites GPSR (Karp-Kung [30]) and other protocols "that
exploit the underlying geometry of the network".  The greedy mode of
those protocols forwards each packet to the neighbor geographically
closest to the destination; it is stateless and local, but strands
packets at *local minima* — nodes with no neighbor closer to the
destination.  (Full GPSR escapes minima by perimeter routing on a
planar subgraph; the greedy mode alone is the standard baseline and the
reason planar structures like the Gabriel graph matter in this
literature.)

The router exposes the same step interface as the other routers plus a
``local_minimum_drops`` counter, so experiments can compare greedy
deliverability across topologies (ΘALG vs Gabriel vs G*) — sparser
graphs have more minima.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.base import GeometricGraph
from repro.sim.stats import RoutingStats

__all__ = ["GreedyGeographicRouter", "greedy_geographic_path"]


def greedy_geographic_path(
    graph: GeometricGraph,
    src: int,
    dst: int,
    *,
    max_hops: int | None = None,
) -> "tuple[list[int], bool]":
    """Offline greedy-forwarding trace from ``src`` toward ``dst``.

    Returns ``(node_path, delivered)``; the path ends either at ``dst``
    or at the local minimum where greedy forwarding gets stuck.  Greedy
    progress is strict (the chosen neighbor must be closer to ``dst``
    than the current node), which also guarantees termination.
    """
    pts = graph.points
    if max_hops is None:
        max_hops = graph.n_nodes + 1
    path = [int(src)]
    cur = int(src)
    for _ in range(max_hops):
        if cur == dst:
            return path, True
        here = float(np.hypot(*(pts[cur] - pts[dst])))
        nbrs = graph.neighbors(cur)
        if len(nbrs) == 0:
            return path, False
        d = pts[nbrs] - pts[dst]
        dist = np.hypot(d[:, 0], d[:, 1])
        k = int(np.argmin(dist))
        if dist[k] >= here - 1e-15:
            return path, False  # local minimum
        cur = int(nbrs[k])
        path.append(cur)
    return path, path[-1] == dst


class GreedyGeographicRouter:
    """Stateless greedy geographic forwarding with FIFO queues.

    Per step, for each usable directed edge (v, w): if w is v's best
    greedy next hop for some buffered packet (strictly closer to that
    packet's destination than v), forward one such packet.  Packets at
    a local minimum are dropped immediately and counted — greedy mode
    has no recovery, which is the measured phenomenon.
    """

    def __init__(self, graph: GeometricGraph, *, max_queue: int = 10_000) -> None:
        self.graph = graph
        self.max_queue = int(max_queue)
        self.queues: list[deque[int]] = [deque() for _ in range(graph.n_nodes)]
        self.stats = RoutingStats()
        self.local_minimum_drops = 0

    # ------------------------------------------------------------------
    def _greedy_next(self, node: int, dest: int) -> "int | None":
        pts = self.graph.points
        here = float(np.hypot(*(pts[node] - pts[dest])))
        nbrs = self.graph.neighbors(node)
        if len(nbrs) == 0:
            return None
        d = pts[nbrs] - pts[dest]
        dist = np.hypot(d[:, 0], d[:, 1])
        k = int(np.argmin(dist))
        if dist[k] >= here - 1e-15:
            return None
        return int(nbrs[k])

    def inject(self, node: int, dest: int, count: int = 1) -> int:
        """Enqueue packets; ones already at a local minimum are dropped."""
        accepted = 0
        for _ in range(int(count)):
            if len(self.queues[node]) >= self.max_queue:
                break
            if node != dest and self._greedy_next(node, dest) is None:
                self.local_minimum_drops += 1
                continue
            self.queues[node].append(int(dest))
            accepted += 1
        self.stats.record_injection(int(count), accepted)
        return accepted

    def total_packets(self) -> int:
        return sum(len(q) for q in self.queues)

    def run_step(self, directed_edges, costs, injections=None, success_fn=None) -> int:
        edges = np.asarray(directed_edges, dtype=np.intp).reshape(-1, 2)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        usable = {(int(u), int(v)): float(c) for (u, v), c in zip(edges, costs)}
        delivered = 0
        for (u, v), c in usable.items():
            q = self.queues[u]
            pick = None
            for i, dest in enumerate(q):
                if self._greedy_next(u, dest) == v:
                    pick = i
                    break
            if pick is None:
                continue
            dest = q[pick]
            del q[pick]
            self.stats.record_attempt(c, True)
            if v == dest:
                delivered += 1
                self.stats.record_delivery()
            elif self._greedy_next(v, dest) is None:
                self.local_minimum_drops += 1
                self.stats.dropped += 1
            else:
                self.queues[v].append(dest)
        for node, dest, count in injections or []:
            self.inject(node, dest, count)
        self.stats.end_step(
            max((len(q) for q in self.queues), default=0), delivered
        )
        return delivered
