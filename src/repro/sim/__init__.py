"""Discrete-time routing simulation substrate (§3 model).

The paper's routing model is synchronous: in each step an adversary (or
a MAC layer) provides a set of usable edges with costs, the router
decides which packets move, packets are received/absorbed, and new
injections arrive (dropped if the destination buffer is full).  This
package provides:

* :mod:`repro.sim.packets` — injection/transmission records;
* :mod:`repro.sim.stats` — throughput/energy/buffer accounting;
* :mod:`repro.sim.adversary` — adversarial injection + edge-activation
  generators, including *witnessed* adversaries that certify an OPT
  schedule (the denominator of competitive measurements);
* :mod:`repro.sim.schedules` — schedule objects and their validator;
* :mod:`repro.sim.optimal` — OPT bounds (time-expanded max-flow upper
  bound, min-energy costs);
* :mod:`repro.sim.baseline_routers` — shortest-path-FIFO and other
  comparison routers;
* :mod:`repro.sim.mobility` — node mobility models;
* :mod:`repro.sim.engine` — the step loop tying everything together.
"""

from repro.sim.packets import Injection, Transmission
from repro.sim.stats import RoutingStats
from repro.sim.schedules import Schedule, validate_schedule, schedules_conflict_free
from repro.sim.adversary import (
    AdversaryStep,
    WitnessedScenario,
    permutation_scenario,
    hotspot_scenario,
    flood_scenario,
    stream_scenario,
    hotspot_stream_scenario,
    random_scenario_on_graph,
)
from repro.sim.optimal import (
    time_expanded_max_throughput,
    min_energy_cost_matrix,
    witness_cost_summary,
)
from repro.sim.baseline_routers import ShortestPathRouter, RandomWalkRouter
from repro.sim.tracking import TrackedBalancingRouter
from repro.sim.scenario_io import (
    save_scenario,
    load_scenario,
    save_event_trace,
    load_event_trace,
)
from repro.sim.geographic import GreedyGeographicRouter, greedy_geographic_path
from repro.sim.aqt import bounded_adversary_scenario, max_window_load
from repro.sim.mobility import StaticMobility, RandomWalkMobility, RandomWaypointMobility
from repro.sim.engine import SimulationEngine, SimulationResult

__all__ = [
    "Injection",
    "Transmission",
    "RoutingStats",
    "Schedule",
    "validate_schedule",
    "schedules_conflict_free",
    "AdversaryStep",
    "WitnessedScenario",
    "permutation_scenario",
    "hotspot_scenario",
    "flood_scenario",
    "stream_scenario",
    "hotspot_stream_scenario",
    "random_scenario_on_graph",
    "time_expanded_max_throughput",
    "min_energy_cost_matrix",
    "witness_cost_summary",
    "ShortestPathRouter",
    "RandomWalkRouter",
    "TrackedBalancingRouter",
    "save_scenario",
    "load_scenario",
    "save_event_trace",
    "load_event_trace",
    "GreedyGeographicRouter",
    "greedy_geographic_path",
    "bounded_adversary_scenario",
    "max_window_load",
    "StaticMobility",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "SimulationEngine",
    "SimulationResult",
]
