"""Accounting for the paper's three performance measures.

§1 names the measures: *throughput* (deliveries), *space overhead*
(buffer occupancy), and *energy* (sum of transmission costs).  A single
:class:`RoutingStats` instance accumulates all three plus the drop and
interference-failure counters needed by the competitive experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoutingStats"]


@dataclass
class RoutingStats:
    """Mutable counters updated by routers/engines during a run."""

    injected: int = 0
    accepted: int = 0
    dropped: int = 0
    delivered: int = 0
    attempts: int = 0
    successes: int = 0
    interference_failures: int = 0
    energy_attempted: float = 0.0
    energy_successful: float = 0.0
    steps: int = 0
    max_buffer_height: int = 0
    #: per-step delivered counts, for time-series plots
    delivered_trace: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_injection(self, count: int, accepted: int) -> None:
        """An adversary offered ``count`` packets; ``accepted`` fit in buffers."""
        if accepted > count:
            raise ValueError("accepted cannot exceed offered count")
        self.injected += count
        self.accepted += accepted
        self.dropped += count - accepted

    def record_attempt(self, cost: float, success: bool) -> None:
        """One transmission attempt with energy ``cost``."""
        self.attempts += 1
        self.energy_attempted += cost
        if success:
            self.successes += 1
            self.energy_successful += cost
        else:
            self.interference_failures += 1

    def record_attempts(self, costs, successes) -> None:
        """Batch :meth:`record_attempt` over aligned cost/success arrays."""
        import numpy as np

        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        ok = np.asarray(successes, dtype=bool).reshape(-1)
        if len(costs) != len(ok):
            raise ValueError("costs and successes must have equal length")
        self.attempts += len(costs)
        self.energy_attempted += float(costs.sum())
        n_ok = int(np.count_nonzero(ok))
        self.successes += n_ok
        self.energy_successful += float(costs[ok].sum())
        self.interference_failures += len(costs) - n_ok

    def record_delivery(self, count: int = 1) -> None:
        """``count`` packets absorbed at their destination this step."""
        self.delivered += count

    def end_step(self, max_height: int, delivered_this_step: int) -> None:
        """Close one simulation step."""
        self.steps += 1
        self.max_buffer_height = max(self.max_buffer_height, int(max_height))
        self.delivered_trace.append(int(delivered_this_step))

    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Deliveries per step (0 when no steps have run)."""
        return self.delivered / self.steps if self.steps else 0.0

    @property
    def delivery_fraction(self) -> float:
        """Delivered / injected (1.0 when nothing was injected)."""
        return self.delivered / self.injected if self.injected else 1.0

    @property
    def average_cost(self) -> float:
        """Total attempted energy per delivered packet (∞ if none delivered)."""
        if self.delivered == 0:
            return float("inf") if self.energy_attempted > 0 else 0.0
        return self.energy_attempted / self.delivered

    def as_dict(self) -> dict[str, float]:
        """Flat dict for result tables."""
        return {
            "injected": float(self.injected),
            "accepted": float(self.accepted),
            "dropped": float(self.dropped),
            "delivered": float(self.delivered),
            "attempts": float(self.attempts),
            "successes": float(self.successes),
            "interference_failures": float(self.interference_failures),
            "energy_attempted": self.energy_attempted,
            "energy_successful": self.energy_successful,
            "steps": float(self.steps),
            "throughput": self.throughput,
            "delivery_fraction": self.delivery_fraction,
            "average_cost": self.average_cost,
            "max_buffer_height": float(self.max_buffer_height),
        }
