"""Accounting for the paper's three performance measures.

§1 names the measures: *throughput* (deliveries), *space overhead*
(buffer occupancy), and *energy* (sum of transmission costs).  A single
:class:`RoutingStats` instance accumulates all three plus the drop and
interference-failure counters needed by the competitive experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoutingStats"]


@dataclass
class RoutingStats:
    """Mutable counters updated by routers/engines during a run."""

    injected: int = 0
    accepted: int = 0
    dropped: int = 0
    delivered: int = 0
    attempts: int = 0
    successes: int = 0
    interference_failures: int = 0
    #: packets lost from buffers of failed/departed nodes (churn runs)
    churn_drops: int = 0
    energy_attempted: float = 0.0
    energy_successful: float = 0.0
    steps: int = 0
    max_buffer_height: int = 0
    #: per-step delivered counts, for time-series plots
    delivered_trace: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_injection(self, count: int, accepted: int) -> None:
        """An adversary offered ``count`` packets; ``accepted`` fit in buffers."""
        if accepted > count:
            raise ValueError("accepted cannot exceed offered count")
        self.injected += count
        self.accepted += accepted
        self.dropped += count - accepted

    def record_attempt(self, cost: float, success: bool) -> None:
        """One transmission attempt with energy ``cost``."""
        self.attempts += 1
        self.energy_attempted += cost
        if success:
            self.successes += 1
            self.energy_successful += cost
        else:
            self.interference_failures += 1

    def record_attempts(self, costs, successes) -> None:
        """Batch :meth:`record_attempt` over aligned cost/success arrays."""
        import numpy as np

        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        ok = np.asarray(successes, dtype=bool).reshape(-1)
        if len(costs) != len(ok):
            raise ValueError("costs and successes must have equal length")
        self.attempts += len(costs)
        self.energy_attempted += float(costs.sum())
        n_ok = int(np.count_nonzero(ok))
        self.successes += n_ok
        self.energy_successful += float(costs[ok].sum())
        self.interference_failures += len(costs) - n_ok

    def record_churn_drops(self, count: int) -> None:
        """``count`` buffered packets lost to a node failure/departure."""
        if count < 0:
            raise ValueError("churn drop count cannot be negative")
        self.churn_drops += int(count)

    def record_delivery(self, count: int = 1) -> None:
        """``count`` packets absorbed at their destination this step."""
        self.delivered += count

    def end_step(self, max_height: int, delivered_this_step: int) -> None:
        """Close one simulation step."""
        self.steps += 1
        self.max_buffer_height = max(self.max_buffer_height, int(max_height))
        self.delivered_trace.append(int(delivered_this_step))

    # ------------------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Deliveries per step (0 when no steps have run)."""
        return self.delivered / self.steps if self.steps else 0.0

    @property
    def delivery_fraction(self) -> float:
        """Delivered / injected (1.0 when nothing was injected)."""
        return self.delivered / self.injected if self.injected else 1.0

    @property
    def average_cost(self) -> float:
        """Total attempted energy per delivered packet (∞ if none delivered)."""
        if self.delivered == 0:
            return float("inf") if self.energy_attempted > 0 else 0.0
        return self.energy_attempted / self.delivered

    def to_dict(self, *, include_trace: bool = False) -> dict:
        """Raw counters with native types (ints stay ints).

        The canonical serialization: :meth:`from_dict` round-trips it,
        the engine attaches it to exported step series, and the report
        command reconciles per-step series against it.
        """
        out: dict = {
            "injected": self.injected,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "delivered": self.delivered,
            "attempts": self.attempts,
            "successes": self.successes,
            "interference_failures": self.interference_failures,
            "churn_drops": self.churn_drops,
            "energy_attempted": self.energy_attempted,
            "energy_successful": self.energy_successful,
            "steps": self.steps,
            "max_buffer_height": self.max_buffer_height,
        }
        if include_trace:
            out["delivered_trace"] = list(self.delivered_trace)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "RoutingStats":
        """Rebuild a stats object from :meth:`to_dict` output."""
        inst = cls(
            injected=int(payload.get("injected", 0)),
            accepted=int(payload.get("accepted", 0)),
            dropped=int(payload.get("dropped", 0)),
            delivered=int(payload.get("delivered", 0)),
            attempts=int(payload.get("attempts", 0)),
            successes=int(payload.get("successes", 0)),
            interference_failures=int(payload.get("interference_failures", 0)),
            churn_drops=int(payload.get("churn_drops", 0)),
            energy_attempted=float(payload.get("energy_attempted", 0.0)),
            energy_successful=float(payload.get("energy_successful", 0.0)),
            steps=int(payload.get("steps", 0)),
            max_buffer_height=int(payload.get("max_buffer_height", 0)),
        )
        inst.delivered_trace = [int(v) for v in payload.get("delivered_trace", [])]
        return inst

    def merge(self, other: "RoutingStats") -> "RoutingStats":
        """Fold another run's counters into this one (in place).

        Counts and energies add, ``max_buffer_height`` takes the max,
        and the per-step traces concatenate (the merged object reads as
        the runs executed back to back).  Returns ``self`` so merges
        chain: ``total = a.merge(b).merge(c)``.
        """
        self.injected += other.injected
        self.accepted += other.accepted
        self.dropped += other.dropped
        self.delivered += other.delivered
        self.attempts += other.attempts
        self.successes += other.successes
        self.interference_failures += other.interference_failures
        self.churn_drops += other.churn_drops
        self.energy_attempted += other.energy_attempted
        self.energy_successful += other.energy_successful
        self.steps += other.steps
        self.max_buffer_height = max(self.max_buffer_height, other.max_buffer_height)
        self.delivered_trace.extend(other.delivered_trace)
        return self

    def as_dict(self) -> dict[str, float]:
        """Flat all-float dict for result tables (adds derived ratios)."""
        out = {k: float(v) for k, v in self.to_dict().items()}
        out["throughput"] = self.throughput
        out["delivery_fraction"] = self.delivery_fraction
        out["average_cost"] = self.average_cost
        return out
