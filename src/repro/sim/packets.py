"""Injection and transmission records.

Packets in the balancing analysis are fungible within a buffer
``Q_{v,d}`` (the algorithm only reads buffer *heights*), so the
simulator tracks integer counts rather than packet objects; these small
records describe the events that change the counts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Injection", "Transmission"]


@dataclass(frozen=True)
class Injection:
    """``count`` packets injected at ``node`` destined for ``dest``.

    ``time`` is the step at which the adversary injects them (packets
    become routable in the *next* step, matching §3.2's "afterwards,
    receive all newly injected packets").
    """

    time: int
    node: int
    dest: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.node == self.dest:
            raise ValueError("source equals destination; packet would be trivially delivered")


@dataclass(frozen=True)
class Transmission:
    """One attempted packet move across directed edge ``src → dst``.

    Attributes
    ----------
    src, dst:
        Directed edge endpoints.
    dest:
        Destination node of the packet being moved (selects the buffer).
    cost:
        Energy charged for the attempt (``c(e)``, typically |uv|^κ).
    """

    src: int
    dst: int
    dest: int
    cost: float
