"""JSON (de)serialization of witnessed scenarios and event traces.

Reproducibility plumbing: an adversarial scenario — graph, injections,
witness schedules — can be saved next to experiment outputs and
reloaded bit-for-bit, so a reported competitive ratio can be re-run
against exactly the inputs that produced it.  Churn workloads
(:class:`repro.dynamic.events.EventTrace`) get the same treatment via
:func:`save_event_trace`/:func:`load_event_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs.base import GeometricGraph
from repro.sim.adversary import WitnessedScenario
from repro.sim.schedules import Schedule

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    "save_event_trace",
    "load_event_trace",
]

_FORMAT_VERSION = 1


def scenario_to_dict(scenario: WitnessedScenario) -> dict:
    """Plain-JSON-types representation of a scenario."""
    g = scenario.graph
    return {
        "format_version": _FORMAT_VERSION,
        "name": scenario.name,
        "duration": scenario.duration,
        "activate_all": scenario.activate_all,
        "graph": {
            "points": g.points.tolist(),
            "edges": g.edges.tolist(),
            "kappa": g.kappa,
            "name": g.name,
        },
        "injections": {
            str(t): [list(x) for x in offers]
            for t, offers in scenario.injection_map.items()
        },
        "witness": [
            {
                "inject_time": s.inject_time,
                "hops": [[[int(u), int(v)], int(t)] for (u, v), t in s.hops],
            }
            for s in scenario.witness_schedules
        ],
    }


def scenario_from_dict(data: dict) -> WitnessedScenario:
    """Inverse of :func:`scenario_to_dict` (validates the witness)."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version: {version!r}")
    gd = data["graph"]
    graph = GeometricGraph(
        np.asarray(gd["points"], dtype=np.float64),
        np.asarray(gd["edges"], dtype=np.intp).reshape(-1, 2),
        kappa=float(gd["kappa"]),
        name=gd.get("name", ""),
    )
    injections = {
        int(t): tuple((int(n), int(d), int(c)) for n, d, c in offers)
        for t, offers in data["injections"].items()
    }
    witness = [
        Schedule(
            inject_time=int(s["inject_time"]),
            hops=tuple(((int(u), int(v)), int(t)) for (u, v), t in s["hops"]),
        )
        for s in data["witness"]
    ]
    return WitnessedScenario(
        graph=graph,
        duration=int(data["duration"]),
        injection_map=injections,
        witness_schedules=witness,
        activate_all=bool(data["activate_all"]),
        name=data.get("name", ""),
    )


def save_scenario(scenario: WitnessedScenario, path: "str | Path") -> None:
    """Write a scenario to ``path`` as JSON."""
    Path(path).write_text(json.dumps(scenario_to_dict(scenario)))


def load_scenario(path: "str | Path") -> WitnessedScenario:
    """Load a scenario previously written by :func:`save_scenario`."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


def save_event_trace(trace, path: "str | Path") -> None:
    """Write an :class:`~repro.dynamic.events.EventTrace` as JSON."""
    from repro.dynamic.events import event_trace_to_dict

    Path(path).write_text(json.dumps(event_trace_to_dict(trace)))


def load_event_trace(path: "str | Path"):
    """Load an event trace written by :func:`save_event_trace`."""
    from repro.dynamic.events import event_trace_from_dict

    return event_trace_from_dict(json.loads(Path(path).read_text()))
