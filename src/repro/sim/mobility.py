"""Node mobility models.

§1 motivates the routing model with "dynamically changing network
conditions": nodes move, so the topology (and hence the usable edge
set) changes between steps.  The engine queries a mobility model for
positions each step and rebuilds the transmission graph; the balancing
router is oblivious to *why* the edge set changed, exactly as the
adversarial model intends.

Models
------
* :class:`StaticMobility` — positions never change (the §2 setting);
* :class:`RandomWalkMobility` — per-step Gaussian jitter, reflected at
  the domain boundary;
* :class:`RandomWaypointMobility` — the classic ad-hoc benchmark: pick
  a waypoint uniformly, travel toward it at the node's speed, repeat.

All models return *read-only views* of their internal position array
from ``positions``/``advance``: callers snapshot or copy, never mutate
(mutation would silently desynchronize the model's own state, e.g. the
waypoint targets).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import as_points
from repro.utils.rng import as_rng
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["StaticMobility", "RandomWalkMobility", "RandomWaypointMobility"]


def _readonly(points: np.ndarray) -> np.ndarray:
    """A read-only view: callers cannot corrupt the model's state."""
    view = points.view()
    view.flags.writeable = False
    return view


class StaticMobility:
    """Positions fixed for all time."""

    def __init__(self, points: np.ndarray) -> None:
        self._points = as_points(points).copy()

    def positions(self, t: int) -> np.ndarray:
        """Node positions at step ``t`` (same view every step)."""
        return _readonly(self._points)

    def advance(self) -> np.ndarray:
        """No-op; returns current positions."""
        return _readonly(self._points)


class RandomWalkMobility:
    """Brownian-style jitter with reflecting boundary.

    Parameters
    ----------
    step_sigma:
        Standard deviation of the per-step displacement.
    side:
        Side of the square domain ``[0, side]^2`` nodes are confined to.
    """

    def __init__(self, points: np.ndarray, *, step_sigma: float, side: float = 1.0, rng=None) -> None:
        self._points = as_points(points).copy()
        self.step_sigma = check_nonnegative("step_sigma", step_sigma)
        self.side = check_positive("side", side)
        self.rng = as_rng(rng)

    def positions(self, t: int) -> np.ndarray:
        return _readonly(self._points)

    def advance(self) -> np.ndarray:
        """Move every node one step; returns the new positions."""
        self._points += self.rng.normal(0.0, self.step_sigma, size=self._points.shape)
        self._points = _reflect(self._points, self.side)
        return _readonly(self._points)


class RandomWaypointMobility:
    """Random-waypoint: travel to a uniform target, then pick a new one.

    Parameters
    ----------
    speed:
        Distance covered per step (same for all nodes; per-node speeds
        would only change constants in the experiments).
    """

    def __init__(self, points: np.ndarray, *, speed: float, side: float = 1.0, rng=None) -> None:
        self._points = as_points(points).copy()
        self.speed = check_positive("speed", speed)
        self.side = check_positive("side", side)
        self.rng = as_rng(rng)
        self._targets = self.rng.uniform(0.0, side, size=self._points.shape)

    def positions(self, t: int) -> np.ndarray:
        return _readonly(self._points)

    def advance(self) -> np.ndarray:
        """Advance all nodes toward their waypoints; returns new positions."""
        d = self._targets - self._points
        dist = np.hypot(d[:, 0], d[:, 1])
        arrived = dist <= self.speed
        # Move non-arrived nodes by `speed` along the direction.
        move = np.zeros_like(d)
        far = ~arrived & (dist > 0)
        move[far] = d[far] / dist[far, None] * self.speed
        self._points = self._points + move
        self._points[arrived] = self._targets[arrived]
        if arrived.any():
            self._targets[arrived] = self.rng.uniform(0.0, self.side, size=(int(arrived.sum()), 2))
        return _readonly(self._points)


def _reflect(points: np.ndarray, side: float) -> np.ndarray:
    """Reflect coordinates into ``[0, side]`` (handles multi-bounce)."""
    p = np.mod(points, 2.0 * side)
    over = p > side
    p[over] = 2.0 * side - p[over]
    return p
