"""Adversarial scenario generators (§3.1 model).

The adversary controls packet injections, the set of usable edges per
step, and edge costs.  Competitive experiments need the adversary to be
*witnessed*: alongside the injections it emits a feasible schedule set
(validated by :mod:`repro.sim.schedules`) that delivers the packets —
a constructive lower bound on OPT.

All generators here build witnesses by greedy *edge-time reservation*:
each packet follows a (shortest or tree) path, and each hop reserves
the earliest free slot of its directed edge after the previous hop.
Reservation guarantees the conflict-freeness the model demands while
keeping witnesses near-optimal for the loads used in the benches.

Scenarios expose the simulation-facing interface consumed by
:class:`repro.sim.engine.SimulationEngine`:

* ``active_edges(t) → (directed_edges, costs)``;
* ``injections(t) → [(node, dest, count), …]``;
* witness facts: ``witness_schedules``, ``witness_buffer``,
  ``witness_avg_cost``, ``witness_avg_path_length``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.graphs.base import GeometricGraph
from repro.sim.schedules import (
    Schedule,
    schedules_conflict_free,
    validate_schedule,
    witness_buffer_usage,
)
from repro.utils.rng import as_rng

__all__ = [
    "AdversaryStep",
    "WitnessedScenario",
    "permutation_scenario",
    "hotspot_scenario",
    "flood_scenario",
    "stream_scenario",
    "hotspot_stream_scenario",
    "random_scenario_on_graph",
]


@dataclass(frozen=True)
class AdversaryStep:
    """Everything the adversary reveals for one step."""

    directed_edges: np.ndarray
    costs: np.ndarray
    injections: tuple[tuple[int, int, int], ...] = ()


@dataclass
class WitnessedScenario:
    """An adversarial run plus a certified OPT lower bound.

    Attributes
    ----------
    graph:
        The (static) topology whose edges the adversary activates.
    duration:
        Number of steps the scenario covers.
    injection_map:
        step → tuple of ``(node, dest, count)`` offers.
    witness_schedules:
        Feasible schedules delivering the witnessed packets.
    activate_all:
        If True the adversary activates every directed edge each step
        (the most generous MAC); otherwise only the edges the witness
        uses at that step.
    """

    graph: GeometricGraph
    duration: int
    injection_map: dict[int, tuple[tuple[int, int, int], ...]]
    witness_schedules: list[Schedule]
    activate_all: bool = True
    name: str = ""
    _edges_by_time: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for s in self.witness_schedules:
            validate_schedule(s)
        if not schedules_conflict_free(self.witness_schedules):
            raise ValueError("witness schedules conflict (edge reused in a step)")
        if not self.activate_all:
            by_time: dict[int, list[tuple[int, int]]] = {}
            for s in self.witness_schedules:
                for (u, v), t in s.hops:
                    by_time.setdefault(t, []).append((u, v))
            self._edges_by_time = {
                t: np.asarray(sorted(set(e)), dtype=np.intp) for t, e in by_time.items()
            }

    # ------------------------------------------------------------------
    # Engine-facing interface
    # ------------------------------------------------------------------
    def active_edges(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Directed usable edges and their costs at step ``t``."""
        if self.activate_all:
            directed = self.graph.directed_edge_array()
            costs = np.concatenate([self.graph.edge_costs, self.graph.edge_costs])
            return directed, costs
        edges = self._edges_by_time.get(t)
        if edges is None or len(edges) == 0:
            return np.empty((0, 2), dtype=np.intp), np.empty(0)
        costs = np.asarray([self.graph.cost(int(u), int(v)) for u, v in edges])
        return edges, costs

    def injections(self, t: int) -> tuple[tuple[int, int, int], ...]:
        """Injections offered at step ``t`` as ``(node, dest, count)``."""
        return self.injection_map.get(t, ())

    @property
    def destinations(self) -> list[int]:
        """All destination ids appearing in the scenario."""
        dests = {d for offers in self.injection_map.values() for _, d, _ in offers}
        dests.update(s.dest for s in self.witness_schedules)
        return sorted(dests)

    @property
    def total_injected(self) -> int:
        return sum(c for offers in self.injection_map.values() for _, _, c in offers)

    # ------------------------------------------------------------------
    # Witness facts
    # ------------------------------------------------------------------
    @property
    def witness_delivered(self) -> int:
        return len(self.witness_schedules)

    @property
    def witness_buffer(self) -> int:
        return max(1, witness_buffer_usage(self.witness_schedules))

    @property
    def witness_avg_path_length(self) -> float:
        if not self.witness_schedules:
            return 1.0
        return float(np.mean([s.n_hops for s in self.witness_schedules]))

    @property
    def witness_total_cost(self) -> float:
        return float(
            sum(
                s.cost(lambda e, t: self.graph.cost(int(e[0]), int(e[1])))
                for s in self.witness_schedules
            )
        )

    @property
    def witness_avg_cost(self) -> float:
        if not self.witness_schedules:
            return 0.0
        return self.witness_total_cost / len(self.witness_schedules)

    @property
    def witness_makespan(self) -> int:
        if not self.witness_schedules:
            return 0
        return max(s.finish_time for s in self.witness_schedules)


# ----------------------------------------------------------------------
# Greedy edge-time reservation
# ----------------------------------------------------------------------
def _shortest_path_table(graph: GeometricGraph, weight: str = "cost"):
    """All-pairs predecessor matrix for path reconstruction."""
    adj = graph.cost_adjacency if weight == "cost" else graph.adjacency
    dist, pred = dijkstra(adj, directed=False, return_predecessors=True)
    return dist, pred


def _reconstruct(pred: np.ndarray, src: int, dst: int) -> "list[int] | None":
    """Node path src..dst from a predecessor matrix row (None if unreachable)."""
    if src == dst:
        return [src]
    path = [dst]
    cur = dst
    while cur != src:
        nxt = pred[src, cur]
        if nxt < 0:
            return None
        cur = int(nxt)
        path.append(cur)
    path.reverse()
    return path


def _reserve_witness(
    requests: "list[tuple[int, int, int]]",
    paths: "list[list[int]]",
) -> list[Schedule]:
    """Greedy reservation: one schedule per (inject_time, src, dst) request.

    Each hop takes the earliest step > previous hop at which its
    directed edge is still unreserved.  Produces a conflict-free
    schedule set by construction.
    """
    reserved: set[tuple[int, int, int]] = set()
    schedules: list[Schedule] = []
    for (t0, _src, _dst), path in zip(requests, paths):
        hops: list[tuple[tuple[int, int], int]] = []
        t = t0
        for u, v in zip(path[:-1], path[1:]):
            t += 1
            while (u, v, t) in reserved:
                t += 1
            reserved.add((u, v, t))
            hops.append(((u, v), t))
        schedules.append(Schedule(inject_time=t0, hops=tuple(hops)))
    return schedules


def _build_scenario(
    graph: GeometricGraph,
    requests: "list[tuple[int, int, int]]",
    *,
    weight: str = "cost",
    activate_all: bool = True,
    extra_injections: "list[tuple[int, int, int, int]] | None" = None,
    name: str = "",
) -> WitnessedScenario:
    """Shared tail of the generators: paths → witness → scenario.

    Parameters
    ----------
    requests:
        ``(inject_time, src, dst)`` triples, one per witnessed packet.
    extra_injections:
        Additional *unwitnessed* offers ``(time, node, dest, count)``
        (flood traffic the witness deliberately drops).
    """
    dist, pred = _shortest_path_table(graph, weight)
    paths = []
    kept_requests = []
    for req in requests:
        t0, s, d = req
        path = _reconstruct(pred, s, d)
        if path is None or len(path) < 2:
            continue
        paths.append(path)
        kept_requests.append(req)
    schedules = _reserve_witness(kept_requests, paths)

    injection_map: dict[int, list[tuple[int, int, int]]] = {}
    for (t0, s, d) in kept_requests:
        injection_map.setdefault(t0, []).append((s, d, 1))
    for (t, node, dest, count) in extra_injections or []:
        injection_map.setdefault(t, []).append((node, dest, count))

    makespan = max((s.finish_time for s in schedules), default=0)
    duration = makespan + 1
    return WitnessedScenario(
        graph=graph,
        duration=duration,
        injection_map={t: tuple(v) for t, v in injection_map.items()},
        witness_schedules=schedules,
        activate_all=activate_all,
        name=name,
    )


# ----------------------------------------------------------------------
# Concrete scenario generators
# ----------------------------------------------------------------------
def permutation_scenario(
    graph: GeometricGraph,
    n_packets: int,
    *,
    waves: int = 1,
    rng=None,
    activate_all: bool = True,
) -> WitnessedScenario:
    """Random-pairs traffic: ``n_packets`` packets between random
    distinct node pairs, injected in ``waves`` bursts.

    The witness routes each packet along its min-energy path with
    greedy reservation.
    """
    gen = as_rng(rng)
    n = graph.n_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    requests = []
    wave_gap = 1
    for k in range(n_packets):
        wave = k % max(waves, 1)
        s, d = gen.choice(n, size=2, replace=False)
        requests.append((wave * wave_gap, int(s), int(d)))
    return _build_scenario(
        graph, requests, activate_all=activate_all, name=f"permutation(n={n_packets})"
    )


def hotspot_scenario(
    graph: GeometricGraph,
    n_packets: int,
    *,
    dest: int | None = None,
    rng=None,
    activate_all: bool = True,
) -> WitnessedScenario:
    """All packets target one hotspot destination.

    Stresses the single-sink convergence the balancing analysis handles
    via per-destination buffers; the witness serializes arrivals over
    the sink's incident edges by reservation.
    """
    gen = as_rng(rng)
    n = graph.n_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    d = int(dest) if dest is not None else int(gen.integers(0, n))
    requests = []
    for _ in range(n_packets):
        s = int(gen.integers(0, n))
        while s == d:
            s = int(gen.integers(0, n))
        requests.append((0, s, d))
    return _build_scenario(
        graph, requests, activate_all=activate_all, name=f"hotspot(d={d}, n={n_packets})"
    )


def flood_scenario(
    graph: GeometricGraph,
    n_witnessed: int,
    flood_factor: float = 4.0,
    *,
    rng=None,
) -> WitnessedScenario:
    """Overload: a witnessed core load plus ``flood_factor`` × unwitnessed
    extra offers at random nodes (which OPT itself would drop).

    Exercises the admission-control half of Theorem 3.1: the online
    algorithm may drop the flood but must still deliver ≈ the witness.
    """
    gen = as_rng(rng)
    base = permutation_scenario(graph, n_witnessed, rng=gen)
    n = graph.n_nodes
    extra = []
    n_extra = int(flood_factor * n_witnessed)
    dests = base.destinations or [0]
    for _ in range(n_extra):
        node = int(gen.integers(0, n))
        dest = int(gen.choice(dests))
        if node == dest:
            continue
        t = int(gen.integers(0, max(base.duration // 2, 1)))
        extra.append((t, node, dest, 1))
    injection_map: dict[int, list[tuple[int, int, int]]] = {
        t: list(v) for t, v in base.injection_map.items()
    }
    for (t, node, dest, count) in extra:
        injection_map.setdefault(t, []).append((node, dest, count))
    return WitnessedScenario(
        graph=graph,
        duration=base.duration,
        injection_map={t: tuple(v) for t, v in injection_map.items()},
        witness_schedules=base.witness_schedules,
        activate_all=True,
        name=f"flood(core={n_witnessed}, x{flood_factor:g})",
    )


def stream_scenario(
    graph: GeometricGraph,
    n_streams: int,
    duration: int,
    *,
    rng=None,
    pairs: "list[tuple[int, int]] | None" = None,
    activate_all: bool = True,
    disjoint: bool = True,
    max_hops: int | None = None,
) -> WitnessedScenario:
    """Sustained streams: ``n_streams`` fixed (source, dest) pairs each
    inject one packet *every step* for ``duration`` steps.

    This is the workload under which the asymptotic competitive bounds
    bite: heights build up to the threshold gradient during a ramp-up
    phase (absorbed by the theorems' additive slack r) and then packets
    flow at the witness's steady-state rate.

    With ``disjoint=True`` (default) the stream pairs are chosen so
    their min-energy paths are directed-edge-disjoint: the witness then
    needs only O(1) buffers (each packet flows one hop per step), which
    keeps the theorem's prescribed T and γ — both functions of the
    witness's B — small and the comparison sharp.  Without it, stream
    contention makes the reservation witness queue linearly, which is a
    legitimate but far weaker OPT lower bound.
    """
    gen = as_rng(rng)
    n = graph.n_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    if duration < 1:
        raise ValueError("duration must be >= 1")
    if pairs is None:
        pairs = (
            _disjoint_stream_pairs(graph, n_streams, gen, max_hops=max_hops)
            if disjoint
            else None
        )
        if pairs is None:
            pairs = []
            for _ in range(n_streams):
                s, d = gen.choice(n, size=2, replace=False)
                pairs.append((int(s), int(d)))
    requests = []
    for t in range(duration):
        for (s, d) in pairs:
            requests.append((t, s, d))
    return _build_scenario(
        graph,
        requests,
        activate_all=activate_all,
        name=f"stream(k={len(pairs)}, T={duration})",
    )


def _disjoint_stream_pairs(
    graph: GeometricGraph,
    n_streams: int,
    gen: np.random.Generator,
    *,
    max_tries: int = 400,
    max_hops: int | None = None,
) -> "list[tuple[int, int]] | None":
    """Pick up to ``n_streams`` pairs whose min-energy paths are
    directed-edge-disjoint (best effort; returns what it found, or
    ``None`` when not even one pair could be placed).

    ``max_hops`` additionally caps each stream's path length — the
    interference-MAC experiments use short streams because the gradient
    mass the balancing algorithm must build before deliveries flow
    grows with the hop count.
    """
    n = graph.n_nodes
    dist, pred = _shortest_path_table(graph, "cost")
    used: set[tuple[int, int]] = set()
    pairs: list[tuple[int, int]] = []
    tries = 0
    while len(pairs) < n_streams and tries < max_tries:
        tries += 1
        s, d = gen.choice(n, size=2, replace=False)
        path = _reconstruct(pred, int(s), int(d))
        if path is None or len(path) < 2:
            continue
        if max_hops is not None and len(path) - 1 > max_hops:
            continue
        hops = list(zip(path[:-1], path[1:]))
        if any((u, v) in used for (u, v) in hops):
            continue
        used.update(hops)
        pairs.append((int(s), int(d)))
    return pairs or None


def hotspot_stream_scenario(
    graph: GeometricGraph,
    n_sources: int,
    duration: int,
    *,
    dest: int | None = None,
    rng=None,
) -> WitnessedScenario:
    """Sustained convergecast: ``n_sources`` nodes each inject one packet
    per step, all toward a single hotspot destination.

    Sources are chosen so their min-energy paths to the hotspot are
    directed-edge-disjoint (approaching the sink over distinct incident
    edges), which keeps the witness load-feasible: each stream flows one
    hop per step, so the witness buffer stays O(1) and the Theorem 3.1
    parameter rule yields a workable threshold.  At most deg(dest)
    sources can be accommodated; excess requests are dropped.  Any
    residual reservation queueing whose delivery would land far beyond
    the horizon is trimmed from the witness — matching the model, where
    OPT simply declines those packets.
    """
    gen = as_rng(rng)
    n = graph.n_nodes
    d = int(dest) if dest is not None else int(gen.integers(0, n))
    dist, pred = _shortest_path_table(graph, "cost")
    used: set[tuple[int, int]] = set()
    sources: list[int] = []
    for s in gen.permutation(n):
        if len(sources) >= n_sources:
            break
        s = int(s)
        if s == d:
            continue
        path = _reconstruct(pred, s, d)
        if path is None or len(path) < 2:
            continue
        hops = list(zip(path[:-1], path[1:]))
        if any(h in used for h in hops):
            continue
        used.update(hops)
        sources.append(s)
    if not sources:
        raise ValueError("no feasible hotspot sources found")
    requests = [(t, s, d) for t in range(duration) for s in sources]
    scenario = _build_scenario(
        graph, requests, activate_all=True, name=f"hotspot-stream(d={d}, k={len(sources)})"
    )
    # Trim witness schedules finishing far beyond the horizon: OPT would
    # not count them either within a comparable time frame.
    horizon = duration * 3
    kept = [s for s in scenario.witness_schedules if s.finish_time <= horizon]
    return WitnessedScenario(
        graph=graph,
        duration=duration,
        injection_map=scenario.injection_map,
        witness_schedules=kept,
        activate_all=True,
        name=scenario.name,
    )


def random_scenario_on_graph(
    graph: GeometricGraph,
    *,
    rate: float,
    duration: int,
    rng=None,
    activate_all: bool = True,
) -> WitnessedScenario:
    """Poisson-ish steady load: ≈``rate`` packets injected per step
    between random pairs over ``duration`` steps.
    """
    gen = as_rng(rng)
    n = graph.n_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    requests = []
    for t in range(duration):
        k = int(gen.poisson(rate))
        for _ in range(k):
            s, d = gen.choice(n, size=2, replace=False)
            requests.append((t, int(s), int(d)))
    if not requests:
        requests.append((0, 0, 1 if n > 1 else 0))
    return _build_scenario(
        graph,
        requests,
        activate_all=activate_all,
        name=f"random(rate={rate:g}, T={duration})",
    )
