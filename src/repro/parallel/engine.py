"""Tiled, process-parallel ΘALG and conflict-structure construction.

Serial ``theta_algorithm`` / ``interference_sets`` are single-core and
dominate the scaling tier beyond n≈30k.  Both kernels are *local* —
a node's phase-1/2 outcome depends only on positions within 2D of it,
and an edge's conflict row only on edges within (2+Δ)·len reach — so
the plane decomposes into :class:`~repro.parallel.tiles.TileGrid`
tiles, each handed to a worker process from a fork pool
(:func:`repro.harness.runner.pool_context`).  Node coordinates, the
edge array, and the per-tile output slabs live in
:mod:`multiprocessing.shared_memory` numpy views
(:class:`~repro.parallel.shm.ShmArena`), so the O(n) inputs cross the
process boundary once and results come back through shared slabs, not
pickles.

Why the output is bit-identical to the serial kernels
-----------------------------------------------------

*ΘALG* — tile ``t`` computes the phase-2 admissions of the receivers it
owns from the subset of points within its rectangle expanded by a 2D
halo.  Every source ``w`` that targets an owned receiver ``x`` lies
within D of ``x`` (choices are in-range), hence within D of the tile
rectangle, hence its **entire** D-neighborhood lies inside the halo
subset: its Yao choices are computed from exactly the same candidate
set as serially.  Conversely a subset node with a truncated
neighborhood is > D from every owned receiver and can never reach one.
Subset-local node ids ascend with global ids, so the (distance,
node-id) lexsort tie-breaks select the same rows.  Each (receiver,
sector) admission is computed by exactly one tile; the union over
tiles equals the serial admission set.

*Conflict rows* — an edge is owned by the tile containing its lower
endpoint.  Any partner of an owned edge has an endpoint within
``(2+Δ)·L_max`` of the tile rectangle (one hop along the edge plus the
larger guard radius), so running the exact CSR kernel on the edges
within that reach reproduces each owned row verbatim; the monotone
local→global edge-id map keeps rows sorted.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.geometry.primitives import TWO_PI, as_points
from repro.geometry.sectors import SectorPartition
from repro.graphs.base import GeometricGraph
from repro.graphs.yao import yao_out_edges
from repro.harness.runner import pool_context
from repro.interference.conflict import InterferenceSets, interference_sets
from repro.obs import telemetry, trace
from repro.parallel.shm import ShmArena, attach
from repro.parallel.tiles import TileGrid
from repro.utils.arrays import ragged_arange, run_starts

__all__ = ["TiledEngine", "TileStats", "TiledTheta", "tiled_theta", "tiled_interference_sets"]

#: Relative slack added to halo reaches so the inclusive ``d² ≤ r² + ε``
#: query epsilon of the serial kernels can never out-reach the halo.
_HALO_SLACK = 1e-6


def default_workers() -> int:
    """Worker count matched to the cores this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class TileStats:
    """Decomposition + work accounting of one tiled construction."""

    n_tiles: int
    workers: int
    owned: "tuple[int, ...]"  # per tile: nodes (ΘALG) or edges (conflict) owned
    subset: "tuple[int, ...]"  # per tile: items in tile + halo actually processed
    tile_seconds: "tuple[float, ...]"
    wall_seconds: float
    #: Grid shape ``(nx, ny)`` actually used for the decomposition.
    shape: "tuple[int, int]" = (1, 1)
    #: Per tile: halo items inside the *corner* squares — state whose
    #: owner is a diagonal neighbor (only nonzero on k×k grids, k ≥ 2).
    corner: "tuple[int, ...]" = ()

    @property
    def halo_items(self) -> int:
        """Total halo traffic: items processed beyond their owner tile."""
        return int(sum(self.subset) - sum(self.owned))

    @property
    def corner_halo_items(self) -> int:
        """Halo traffic owed to diagonal (corner) neighbors."""
        return int(sum(self.corner))


@dataclass(frozen=True)
class TiledTheta:
    """Output of :func:`tiled_theta` (the construction subset of ΘALG).

    Carries the final topology N exactly as ``theta_algorithm(...)``
    would build it; the phase-1 dictionaries of
    :class:`~repro.core.theta.ThetaTopology` are deliberately not
    materialized (they are O(n·cones) Python objects — the dynamic and
    routing layers consume only the graph).
    """

    points: np.ndarray
    theta: float
    max_range: float
    kappa: float
    offset: float
    graph: GeometricGraph
    stats: TileStats

    def edge_set(self) -> "set[tuple[int, int]]":
        """Canonical ``(lo, hi)`` pairs — same form as ``ThetaTopology.edge_set``."""
        return {(int(a), int(b)) for a, b in self.graph.edges}


# ---------------------------------------------------------------------------
# Worker-side tasks (top-level so the spawn fallback can import them)
# ---------------------------------------------------------------------------


def _theta_tile_task(task) -> "tuple[int, int, int, int, float, list]":
    """Phase-1/2 admissions for the receivers owned by one tile.

    Writes the admitted directed pairs (global ids) into this tile's
    slice of the shared output slab; returns
    ``(tile, owned, subset, pairs_written, wall, trace_events)`` — the
    trailing list carries the worker-side span events (empty unless the
    parent traced at fork time; the parent ingests them so per-tile
    phases land on each worker's track).
    """
    (pts_h, out_h, offset_row, grid, t, theta, max_range, cone_offset) = task
    tracer = telemetry.worker_tracer()
    mark = tracer.total_appended if tracer is not None else 0
    t0 = time.perf_counter()
    pts, pts_seg = attach(pts_h)
    out, out_seg = attach(out_h)
    try:
        with trace.span("tile.theta", tile=t) as sp:
            halo = 2.0 * max_range * (1.0 + _HALO_SLACK)
            sub_ids = np.nonzero(grid.halo_mask(pts, t, halo))[0]
            # Upcast once per subset so a float32-shared arena yields the
            # same arithmetic as a serial run on the same float32 values.
            sub_pts = pts[sub_ids].astype(np.float64, copy=False)
            owned_local = grid.tile_of_many(sub_pts) == t
            n_owned = int(owned_local.sum())
            corner = int(grid.corner_mask(sub_pts, t, halo).sum())
            count = 0
            if n_owned and len(sub_ids) >= 2:
                part = SectorPartition(theta, cone_offset)
                directed = yao_out_edges(sub_pts, theta, max_range, offset=cone_offset)
                if len(directed):
                    src, dst = directed[:, 0], directed[:, 1]
                    d = sub_pts[src] - sub_pts[dst]
                    ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
                    sec_in = np.atleast_1d(part.index_of_angle(ang))
                    dist = np.hypot(d[:, 0], d[:, 1])
                    order = np.lexsort((src, dist, sec_in, dst))
                    sel = order[run_starts(dst[order], sec_in[order])]
                    sel = sel[owned_local[dst[sel]]]
                    count = len(sel)
                    out[offset_row : offset_row + count, 0] = sub_ids[src[sel]]
                    out[offset_row : offset_row + count, 1] = sub_ids[dst[sel]]
            sp.set(
                owned=n_owned,
                subset=len(sub_ids),
                halo=len(sub_ids) - n_owned,
                corner_halo=corner,
            )
        events, _ = telemetry.drain_events(tracer, mark)
        return t, n_owned, len(sub_ids), corner, count, time.perf_counter() - t0, events
    finally:
        pts_seg.close()
        out_seg.close()


def _conflict_tile_task(task):
    """Exact conflict rows for the edges owned by one tile.

    Returns ``(tile, owned_eids, degrees, indices_global, subset, wall,
    trace_events)`` — the CSR fragment of the owned rows in global edge
    ids, plus the worker-side span events (see :func:`_theta_tile_task`).
    """
    (pts_h, edges_h, grid, t, delta, reach) = task
    tracer = telemetry.worker_tracer()
    mark = tracer.total_appended if tracer is not None else 0
    t0 = time.perf_counter()
    pts, pts_seg = attach(pts_h)
    edges, edges_seg = attach(edges_h)
    try:
        with trace.span("tile.conflict", tile=t) as sp:
            emask = grid.halo_mask(pts[edges[:, 0]], t, reach) | grid.halo_mask(
                pts[edges[:, 1]], t, reach
            )
            sub_eids = np.nonzero(emask)[0]
            sub_edges = edges[sub_eids]
            owned_sel = grid.tile_of_many(pts[sub_edges[:, 0]]) == t
            corner = int(
                (
                    grid.corner_mask(pts[sub_edges[:, 0]], t, reach)
                    & grid.corner_mask(pts[sub_edges[:, 1]], t, reach)
                ).sum()
            )
            empty = np.empty(0, dtype=np.int64)
            n_owned = int(owned_sel.sum())
            if n_owned:
                node_ids = np.unique(sub_edges)
                local_edges = np.searchsorted(node_ids, sub_edges)
                sub = GeometricGraph(pts[node_ids], local_edges)
                sets = interference_sets(sub, delta)
                deg = np.diff(sets.indptr)[owned_sel].astype(np.int64)
                rows = sets.indices[
                    ragged_arange(np.asarray(sets.indptr[:-1])[owned_sel], deg)
                ]
            sp.set(
                owned=n_owned,
                subset=len(sub_eids),
                halo=len(sub_eids) - n_owned,
                corner_halo=corner,
            )
        events, _ = telemetry.drain_events(tracer, mark)
        if not n_owned:
            return (
                t,
                empty,
                empty,
                empty,
                len(sub_eids),
                corner,
                time.perf_counter() - t0,
                events,
            )
        return (
            t,
            sub_eids[owned_sel].astype(np.int64),
            deg,
            sub_eids[rows].astype(np.int64),
            len(sub_eids),
            corner,
            time.perf_counter() - t0,
            events,
        )
    finally:
        pts_seg.close()
        edges_seg.close()


# ---------------------------------------------------------------------------
# Parent-side engine
# ---------------------------------------------------------------------------


class TiledEngine:
    """A persistent fork pool + tile decomposition for the constructions.

    One engine amortizes worker start-up across any number of
    :meth:`theta` / :meth:`interference_sets` calls (the bench loops
    reuse one engine).  Shared-memory segments are per-call and die
    with the call; the pool dies with :meth:`close` (or the ``with``
    block).
    """

    def __init__(
        self,
        *,
        workers: "int | None" = None,
        tiles: "int | tuple[int, int] | None" = None,
    ) -> None:
        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        #: Pinned grid shape ``(nx, ny)`` when given; else ``tiles`` is a
        #: target count.  The adaptive default oversubscribes 4 tiles per
        #: worker so the plane extent (via the min-width clamp in
        #: :meth:`TileGrid.cover`) decides the final ``nx × ny``.
        self.tile_shape: "tuple[int, int] | None" = None
        if tiles is None:
            self.tiles = 4 * self.workers
        elif isinstance(tiles, tuple):
            self.tile_shape = (int(tiles[0]), int(tiles[1]))
            self.tiles = self.tile_shape[0] * self.tile_shape[1]
        else:
            self.tiles = int(tiles)
        if self.tiles < 1:
            raise ValueError("tiles must be >= 1")
        self._pool = None

    def _run(self, fn, tasks: list):
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = pool_context().Pool(processes=self.workers)
        return self._pool.map(fn, tasks, chunksize=1)

    @staticmethod
    def _ingest_events(results) -> None:
        """Merge the tile tasks' trailing trace-event lists, if tracing.

        Events are only non-empty when the tasks ran in pool workers
        (foreign tracers) — the in-process path records directly on the
        parent tracer and drains nothing, so there is no double count.
        """
        tracer = trace.active()
        if tracer is None:
            return
        for r in results:
            if r[-1]:
                tracer.ingest(r[-1])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TiledEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ΘALG ---------------------------------------------------------------
    def theta(
        self,
        points: np.ndarray,
        theta: float,
        max_range: float,
        *,
        kappa: float = 2.0,
        offset: float = 0.0,
        delta: float = 0.0,
        grid: "TileGrid | None" = None,
        share_dtype=None,
    ) -> TiledTheta:
        """ΘALG over tiles; the graph is bit-identical to the serial run.

        ``delta`` only sizes the tiles (width ≥ the 2(4+Δ)D independence
        radius, so the same grid can later drive batched repair); the
        construction itself needs just the 2D halo.

        ``share_dtype`` (e.g. ``np.float32``) stores the shared position
        arena at reduced precision; workers upcast per subset, so the
        result equals a serial run on the same quantized coordinates.
        The admitted-pair slab is ``int32`` whenever ids fit — at n=10⁶
        the two together halve the arena footprint.
        """
        t_start = time.perf_counter()
        pts = as_points(points)
        n = len(pts)
        if share_dtype is not None:
            # Quantize up front: ownership, halos, and kernels all see
            # the same (upcast) coordinates the serial reference would.
            pts = pts.astype(share_dtype).astype(np.float64)
        if grid is None:
            grid = self._grid_for(pts, max_range, delta)
        part = SectorPartition(theta, offset)
        out_dt = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        with ShmArena() as arena:
            shared_pts = arena.share(pts, dtype=share_dtype)
            owners = grid.tile_of_many(pts) if n else np.empty(0, dtype=np.int64)
            owned_counts = np.bincount(owners, minlength=grid.n_tiles)
            caps = owned_counts * part.n_sectors
            offs = np.zeros(grid.n_tiles + 1, dtype=np.int64)
            np.cumsum(caps, out=offs[1:])
            out = arena.empty((max(int(offs[-1]), 1), 2), out_dt)
            pts_h, out_h = arena.handle(shared_pts), arena.handle(out)
            tasks = [
                (pts_h, out_h, int(offs[t]), grid, t, theta, max_range, offset)
                for t in range(grid.n_tiles)
                if owned_counts[t]
            ]
            results = self._run(_theta_tile_task, tasks)
            self._ingest_events(results)
            chunks = [out[offs[t] : offs[t] + cnt] for t, _, _, _, cnt, _, _ in results]
            kept = (
                np.vstack(chunks).astype(np.int64)
                if chunks
                else np.empty((0, 2), dtype=np.int64)
            )
            graph = GeometricGraph(pts, kept, kappa=kappa, name=f"TiledThetaALG(θ={theta:.4g})")
        stats = TileStats(
            n_tiles=grid.n_tiles,
            workers=self.workers,
            owned=tuple(int(r[1]) for r in results),
            subset=tuple(int(r[2]) for r in results),
            tile_seconds=tuple(float(r[5]) for r in results),
            wall_seconds=time.perf_counter() - t_start,
            shape=grid.shape,
            corner=tuple(int(r[3]) for r in results),
        )
        return TiledTheta(
            points=graph.points,
            theta=float(theta),
            max_range=float(max_range),
            kappa=float(kappa),
            offset=float(offset),
            graph=graph,
            stats=stats,
        )

    # -- conflict rows -------------------------------------------------------
    def interference_sets(
        self,
        graph: GeometricGraph,
        delta: float,
        *,
        grid: "TileGrid | None" = None,
    ) -> "tuple[InterferenceSets, TileStats]":
        """§2.4 conflict rows over tiles, row-for-row equal to the kernel."""
        t_start = time.perf_counter()
        pts = graph.points
        edges = np.ascontiguousarray(graph.edges, dtype=np.int64)
        m = len(edges)
        if m == 0:
            sets = InterferenceSets(np.zeros(1, dtype=np.intp), np.empty(0, dtype=np.intp))
            stats = TileStats(1, self.workers, (0,), (0,), (0.0,), time.perf_counter() - t_start)
            return sets, stats
        l_max = float(graph.edge_lengths.max())
        reach = (2.0 + float(delta)) * l_max * (1.0 + _HALO_SLACK)
        if grid is None:
            grid = self._grid_for(pts, l_max, delta)
        with ShmArena() as arena:
            pts_h = arena.handle(arena.share(pts))
            edges_h = arena.handle(arena.share(edges))
            tasks = [(pts_h, edges_h, grid, t, float(delta), reach) for t in range(grid.n_tiles)]
            results = self._run(_conflict_tile_task, tasks)
        self._ingest_events(results)
        deg_full = np.zeros(m, dtype=np.int64)
        for _, owned, deg, _, _, _, _, _ in results:
            deg_full[owned] = deg
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(deg_full, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for _, owned, deg, idx, _, _, _, _ in results:
            if len(owned):
                indices[ragged_arange(indptr[:-1][owned], deg)] = idx
        stats = TileStats(
            n_tiles=grid.n_tiles,
            workers=self.workers,
            owned=tuple(len(r[1]) for r in results),
            subset=tuple(int(r[4]) for r in results),
            tile_seconds=tuple(float(r[6]) for r in results),
            wall_seconds=time.perf_counter() - t_start,
            shape=grid.shape,
            corner=tuple(int(r[5]) for r in results),
        )
        return InterferenceSets(indptr, indices), stats

    def _grid_for(self, pts: np.ndarray, max_range: float, delta: float) -> TileGrid:
        from repro.dynamic.batching import independence_radius

        if len(pts) == 0:
            return TileGrid(0.0, 0.0, 1.0, 1.0, 1, 1)
        x0, y0 = pts.min(axis=0)
        x1, y1 = pts.max(axis=0)
        bounds = (float(x0), float(y0), float(x1), float(y1))
        if self.tile_shape is not None:
            return TileGrid.cover(bounds, shape=self.tile_shape)
        return TileGrid.cover(
            bounds,
            tiles=self.tiles,
            min_width=independence_radius(max_range, delta),
        )


def tiled_theta(
    points: np.ndarray,
    theta: float,
    max_range: float,
    *,
    kappa: float = 2.0,
    offset: float = 0.0,
    delta: float = 0.0,
    workers: "int | None" = None,
    tiles: "int | tuple[int, int] | None" = None,
    engine: "TiledEngine | None" = None,
) -> TiledTheta:
    """One-shot :meth:`TiledEngine.theta` (creates/tears down a pool)."""
    if engine is not None:
        return engine.theta(points, theta, max_range, kappa=kappa, offset=offset, delta=delta)
    with TiledEngine(workers=workers, tiles=tiles) as eng:
        return eng.theta(points, theta, max_range, kappa=kappa, offset=offset, delta=delta)


def tiled_interference_sets(
    graph: GeometricGraph,
    delta: float,
    *,
    workers: "int | None" = None,
    tiles: "int | tuple[int, int] | None" = None,
    engine: "TiledEngine | None" = None,
) -> InterferenceSets:
    """One-shot :meth:`TiledEngine.interference_sets` (sets only)."""
    if engine is not None:
        return engine.interference_sets(graph, delta)[0]
    with TiledEngine(workers=workers, tiles=tiles) as eng:
        return eng.interference_sets(graph, delta)[0]
