"""Persistent tile-worker pool: process-parallel churn repair.

The thread backend of :func:`repro.dynamic.batching.apply_events_parallel`
proves group independence but cannot buy wall-clock speed — group repairs
are Python-loop heavy, so the GIL serializes them.  This pool runs the
groups in **worker processes** and keeps the result bit-identical to the
serial path by construction:

* **Replicated state, shared geometry.**  Each worker forks from the
  parent *after* :meth:`DynamicGridIndex.share_buffers` moved the
  position/alive arrays into :class:`~repro.parallel.shm.ShmArena`
  segments, so every process reads one physical copy of the coordinates;
  the pure-Python topology state (``_out``/``_in``/``_admit``/
  ``_edge_dirs``, conflict rows) is inherited copy-on-write and kept in
  sync by diffs.
* **One sync per phase.**  Per batch the parent runs phase A (serial
  mutations — geometry lands in the shared arrays) and sends each worker
  one message: the batch's mutation records (private bucket bookkeeping),
  the repair contexts of the groups *assigned* to it (routed by the tile
  of their first anchor), and the **foreign diffs** of the previous batch
  (the groups other workers repaired).  Workers replay foreign diffs,
  replay the records, repair their groups with
  ``collect_diff=True``, and reply with compact state diffs — the halo
  exchange is double-buffered: batch *k*'s diffs travel inside batch
  *k+1*'s message, so there is exactly one send and one receive per
  worker per batch.
* **Halo subscriptions.**  With ``halo_filter=True`` (default) a diff is
  shipped to a worker *eagerly* only when one of its group's anchors
  falls within the worker's territory — its owned tiles expanded by the
  subscription radius (9+3Δ)D, which covers both future group repairs
  and the pool-side MAC read region (see :meth:`TileWorkerPool.mac_step`).
  Everything else parks in a per-worker ordered backlog and is *caught
  up* lazily: at send time any backlog diff whose anchors come within
  the 2(4+Δ)D independence radius of the batch's assigned-group anchors
  is delivered, together with every **earlier** backlog diff whose
  region overlaps a delivered one (a backward transitive-closure pass —
  replay order between overlapping diffs must match splice order).  A
  replica is therefore exact wherever it is about to read, while fully
  disjoint regions never cross the pipe; the parent replica still
  applies every diff and remains globally exact.  The backlog is capped
  (``max_backlog``) by a flush-everything delivery.
* **Exact replay.**  Diffs replay the repairer's transition sequence
  verbatim (:meth:`IncrementalTheta.apply_repair_diff`,
  :meth:`DynamicInterference.apply_row_diff`), so parent and every
  worker hold bit-identical state after each batch — checked per batch
  in ``tests/test_parallel_tiles.py`` against serial application.

Group independence (the 2(4+Δ)D union–find radius of
:func:`repro.dynamic.batching.group_events`) guarantees concurrent
groups touch disjoint nodes, edges, and conflict rows, so the diffs of
one batch commute and splicing them in group order reproduces any
serial order.

If a worker dies mid-batch (crash, OOM-kill, SIGKILL) the parent
detects the dead process sentinel, terminates the remaining workers,
**unlinks every shared-memory segment**, and raises
:class:`~repro.parallel.shm.WorkerCrashError` — no leaked ``/dev/shm``
entries (``tests/test_parallel_shm.py``).
"""

from __future__ import annotations

import gc
import os
import pickle
import time
import traceback
from multiprocessing.connection import wait as _mp_wait

import numpy as np

from repro.dynamic.batching import BatchApplyStats, group_events, independence_radius
from repro.dynamic.events import event_kind
from repro.dynamic.interference import MacStep, edge_uniforms
from repro.harness.runner import pool_context
from repro.interference.model import InterferenceModel
from repro.obs import metrics, telemetry, trace
from repro.parallel.shm import ShmArena, WorkerCrashError
from repro.parallel.tiles import TileGrid

__all__ = ["TileWorkerPool"]

#: Relative slack on halo/subscription radii, mirroring the engine's:
#: the serial kernels' inclusive ``d² ≤ r² + ε`` epsilon must never
#: out-reach a geometric filter.
_SLACK = 1e-6

#: Fork-inherited worker payload; set by the parent immediately before
#: ``Process.start()`` (fork happens synchronously inside it) and read
#: once by ``_worker_main``.  Passing the replicas through fork COW
#: instead of pickled args is what makes worker start O(1) in n.
_FORK_STATE: "dict | None" = None


def _diff_size(topo_diff: dict, row_diff: "dict | None") -> int:
    """Halo traffic of one group's diffs, in state entries."""
    n = len(topo_diff["out"]) + len(topo_diff["admit"]) + len(topo_diff["dead"])
    if row_diff is not None:
        n += len(row_diff["rows"]) + len(row_diff["added"]) + len(row_diff["removed"])
    return n


def _mac_tile_step(inc, di, grid, wid: int, workers: int, seed: int, step: int):
    """Activate + resolve the MAC round for this worker's tile interiors.

    Ownership: an edge belongs to the worker owning the tile of its
    lower endpoint, so the owned sets partition the live edge set.  The
    candidate set is every edge with an endpoint within (2+Δ)D of an
    owned tile — any guard region that can veto an owned activated edge
    is centered on such an edge, and the halo subscription keeps the
    replica exact out to (5+2Δ)D, so candidate existence, conflict
    degrees (activation probabilities), and the hash-derived uniforms
    of :func:`repro.dynamic.interference.edge_uniforms` all agree with
    the serial :meth:`DynamicMAC.deterministic_step` bit for bit.
    Returns ``(edges, costs, ok)`` for the owned activated edges.
    """
    empty = (np.empty((0, 2), dtype=np.int64), np.empty(0), np.empty(0, dtype=bool))
    edges = np.asarray(inc.edge_array(), dtype=np.int64)
    if len(edges) == 0:
        return empty
    pos = inc.all_positions()
    delta = float(di.delta)
    reach = (2.0 + delta) * float(inc.max_range) * (1.0 + _SLACK)
    p0, p1 = pos[edges[:, 0]], pos[edges[:, 1]]
    cand = np.zeros(len(edges), dtype=bool)
    for t in range(wid, grid.n_tiles, workers):
        cand |= grid.halo_mask(p0, t, reach)
        cand |= grid.halo_mask(p1, t, reach)
    ce = edges[cand]
    if len(ce) == 0:
        return empty
    codes = (ce[:, 0] << 32) | ce[:, 1]
    rows = di._rows
    # Direct row lookups (KeyError = stale replica = a filtering bug —
    # fail loudly rather than activate with a wrong probability).
    deg = np.fromiter(
        (len(rows[int(c)]) for c in codes), dtype=np.int64, count=len(codes)
    )
    probs = 1.0 / (2.0 * np.maximum(deg.astype(np.float64), 1.0))
    act = edge_uniforms(codes, seed, step) < probs
    ae = ce[act]
    if len(ae) == 0:
        return empty
    own = (grid.tile_of_many(pos[ae[:, 0]]) % workers) == wid
    mat = InterferenceModel(delta).interference_matrix(pos, ae)
    ok_all = ~mat.any(axis=1) if mat.size else np.ones(len(ae), dtype=bool)
    oe = ae[own]
    d = pos[oe[:, 0]] - pos[oe[:, 1]]
    costs = np.hypot(d[:, 0], d[:, 1]) ** float(inc.kappa)
    return oe, costs, ok_all[own]


def _worker_main(wid: int, conn) -> None:
    """Worker loop: apply foreign diffs, replay records, repair groups.

    Telemetry rides the existing reply channel: every message back to
    the parent (the startup ``hello``, each batch's ``ok``, the
    ``error`` path) carries a resource sample (RSS, CPU time via
    ``/proc``), the batch counter, the last span reached — and, when
    the parent traced at fork time, the span events recorded since the
    previous reply, which the parent ``Tracer.ingest``-merges so one
    Chrome trace shows a track per worker.
    """
    # Freeze the fork-inherited heap out of the cyclic GC: a gen-2
    # collection relinks every tracked object's GC header, which would
    # copy-on-write the entire inherited topology state into each
    # worker (multi-second stalls at n >= 3e4, memory x workers).
    gc.freeze()
    state = _FORK_STATE
    inc = state["inc"]
    di = state["di"]
    grid = state["grid"]
    workers = state["workers"]
    tracer = telemetry.worker_tracer()
    mark = tracer.total_appended if tracer is not None else 0
    sampler = telemetry.ResourceSampler()
    batch_no = 0
    last_span = "start"

    def _tele() -> dict:
        nonlocal mark
        tele = sampler.sample(worker=wid, batch=batch_no, last_span=last_span)
        events, mark = telemetry.drain_events(tracer, mark)
        if events:
            tele["events"] = events
        return tele

    try:
        conn.send(("hello", _tele()))
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            conn.close()
            return
        if msg[0] == "mac":
            try:
                _, foreign, seed, step = msg
                with trace.span("pool.mac", worker=wid, step=step, diffs=len(foreign)):
                    last_span = "pool.mac"
                    for tdiff, rdiff in foreign:
                        inc.apply_repair_diff(tdiff)
                        if rdiff is not None:
                            di.apply_row_diff(rdiff, _sync=False)
                    payload = _mac_tile_step(inc, di, grid, wid, workers, seed, step)
                last_span = "idle"
                conn.send(("ok", payload, _tele()))
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc(), _tele()))
                finally:
                    return
            continue
        try:
            _, foreign, records, assigned = msg
            batch_no += 1
            with trace.span(
                "pool.batch", worker=wid, batch=batch_no, groups=len(assigned)
            ):
                last_span = "pool.replay"
                with trace.span(
                    "pool.replay", worker=wid, diffs=len(foreign), records=len(records)
                ):
                    for tdiff, rdiff in foreign:
                        inc.apply_repair_diff(tdiff)
                        if di is not None and rdiff is not None:
                            di.apply_row_diff(rdiff, _sync=False)
                    for op, kind, node, old_key, new_key in records:
                        if kind == "fail":
                            inc._failed.add(node)
                        elif kind == "recover":
                            inc._failed.discard(node)
                        inc._index.apply_shared_mutation(op, node, old_key, new_key)
                out = []
                for gid, ctxs, moved in assigned:
                    last_span = f"pool.repair_group:{gid}"
                    with trace.span(
                        "pool.repair_group", worker=wid, group=gid, events=len(ctxs)
                    ) as sp:
                        rs, tdiff = inc._repair_batch(
                            ctxs, kind="batch", node=-1, collect_diff=True
                        )
                        cs = rdiff = None
                        if di is not None:
                            cs, rdiff = di.update(
                                rs.edges_added, rs.edges_removed, moved,
                                _sync=False, collect_diff=True,
                            )
                        sp.set(
                            nodes_touched=rs.nodes_touched,
                            diff_entries=_diff_size(tdiff, rdiff),
                        )
                    out.append((gid, rs, tdiff, cs, rdiff))
                inc.topology_version += 1
                if di is not None:
                    di._mark_synced()
            last_span = "idle"
            conn.send(("ok", out, _tele()))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc(), _tele()))
            finally:
                return


class TileWorkerPool:
    """Persistent fork pool repairing disjoint event groups per tile.

    Parameters
    ----------
    incremental:
        The parent's :class:`~repro.dynamic.incremental.IncrementalTheta`.
        Its grid-index buffers are moved into shared memory; workers fork
        with full replicas of the topology state.
    interference:
        Optional :class:`~repro.dynamic.interference.DynamicInterference`
        maintained alongside (same protocol as the thread backend).
    workers:
        Worker process count (default: available cores).
    capacity:
        Hard ceiling on node ids (shared buffers cannot grow across
        processes).  Default: double the current id space.
    grid:
        Tile decomposition for group→worker routing; default covers the
        live bounding box with ~4 tiles per worker at the 2(4+Δ)D
        independence width.
    tiles:
        Alternative to ``grid``: an explicit tile shape ``(nx, ny)`` or
        a target tile count for the default cover (the CLI's
        ``--tiles nx,ny`` lands here).
    halo_filter:
        Route diffs through per-worker halo subscriptions (see module
        docstring).  ``False`` restores the full broadcast — every diff
        to every worker — for A/B comparison.
    max_backlog:
        Suppressed-diff backlog length per worker above which the next
        delivery flushes everything (memory bound; exactness never
        depends on it).

    Construct the pool **before** applying any events you want it to
    process — workers fork from the current state.  Use as a context
    manager or call :meth:`close`.
    """

    def __init__(
        self,
        incremental,
        interference=None,
        *,
        workers: "int | None" = None,
        capacity: "int | None" = None,
        grid: "TileGrid | None" = None,
        tiles: "int | tuple[int, int] | None" = None,
        halo_filter: bool = True,
        max_backlog: int = 512,
    ) -> None:
        ctx = pool_context()
        if ctx.get_start_method() != "fork":
            raise RuntimeError(
                "TileWorkerPool requires fork start (workers inherit the "
                "topology replicas); use the thread or serial backend here"
            )
        self.inc = incremental
        self.di = interference
        if interference is not None and interference.inc is not incremental:
            raise ValueError("interference tracks a different IncrementalTheta")
        self.workers = int(workers) if workers else max(1, len(os.sched_getaffinity(0)))
        delta = interference.delta if interference is not None else 0.0
        index = incremental._index
        if capacity is None:
            capacity = max(2 * index.size, index.size + 1024)
        self._arena = ShmArena()
        index.share_buffers(self._arena, int(capacity))
        if grid is None:
            if isinstance(tiles, tuple):
                grid = TileGrid.cover(index.bounds(), shape=tiles)
            else:
                grid = TileGrid.cover(
                    index.bounds(),
                    tiles=int(tiles) if tiles else 4 * self.workers,
                    min_width=independence_radius(incremental.max_range, delta),
                )
        elif tiles is not None:
            raise ValueError("pass either grid= or tiles=, not both")
        self.grid = grid
        self.halo_filter = bool(halo_filter)
        self.max_backlog = int(max_backlog)
        D = float(incremental.max_range)
        #: Eager-subscription radius around a worker's owned tiles.  A
        #: diff's state lies within (4+Δ)D of its group anchors; the MAC
        #: step reads degrees of edges out to (2+Δ)D whose rows reach a
        #: further (2+Δ)D — exactness out to (5+2Δ)D from the tiles
        #: suffices, i.e. anchors within (9+3Δ)D must be delivered.
        #: (9+3Δ)D also dominates the 2(4+Δ)D repair independence radius.
        self._sub_radius = (9.0 + 3.0 * delta) * D * (1.0 + _SLACK)
        #: Catch-up radius: two repair regions can only overlap when
        #: their anchor sets come within 2(4+Δ)D of each other.
        self._need_radius = independence_radius(D, delta) * (1.0 + _SLACK)
        self._owned_tiles = [
            tuple(range(w, grid.n_tiles, self.workers)) for w in range(self.workers)
        ]
        self._closed = False
        self._procs = []
        self._conns = []
        #: Eagerly-subscribed diffs of the previous batch, staged per
        #: worker (double buffer); entries are (seq, anchors, tdiff, rdiff).
        self._pending: "list[list]" = [[] for _ in range(self.workers)]
        #: Suppressed diffs per worker, ordered by seq, awaiting catch-up.
        self._backlog: "list[list]" = [[] for _ in range(self.workers)]
        self._seq = 0
        #: Cumulative halo-traffic accounting (also merged into each
        #: worker's telemetry snapshot).
        self.diffs_replayed_total = 0
        self.diffs_suppressed_total = 0
        self._diffs_in = [0] * self.workers
        self._diffs_deferred = [0] * self.workers
        #: Last telemetry snapshot received from each worker (hello or
        #: batch reply) — the crash-postmortem payload.
        self._last_tele: "dict[int, dict]" = {}

        global _FORK_STATE
        _FORK_STATE = {
            "inc": incremental,
            "di": interference,
            "grid": grid,
            "workers": self.workers,
        }
        try:
            for wid in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main, args=(wid, child_conn), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        finally:
            _FORK_STATE = None
        # Startup handshake: every worker reports one telemetry sample
        # before the first batch, so even a crash on batch 1 has a
        # baseline snapshot, and a worker that dies during fork/import
        # is detected here rather than mid-batch.
        for wid in range(self.workers):
            try:
                msg = self._conns[wid].recv()
            except (EOFError, OSError):
                self._fail(wid)
            self._adopt_telemetry(wid, msg[1])

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def apply_batch(self, events, *, radius: "float | None" = None) -> BatchApplyStats:
        """Apply one step's events across the worker pool.

        Equivalent to ``apply_events_parallel(..., jobs=1)`` — same
        final state, same per-group stats — with group repairs executed
        in the owning tile's worker process.
        """
        if self._closed:
            raise RuntimeError("TileWorkerPool is closed")
        with trace.span(
            "pool.apply_batch", events=len(events), workers=self.workers
        ) as batch_span:
            stats = self._apply_batch(events, radius=radius, batch_span=batch_span)
        return stats

    def _apply_batch(self, events, *, radius, batch_span) -> BatchApplyStats:
        t0 = time.perf_counter()
        inc = self.inc
        di = self.di
        index = inc._index
        delta = di.delta if di is not None else 0.0
        idx_groups = group_events(inc, events, radius=radius, delta=delta)

        # Phase A — serial mutations in trace order.  Geometry lands in
        # the shared buffers; records carry the private bucket
        # bookkeeping (including pre-move cell keys workers can no
        # longer derive) to every replica.
        records = []
        contexts = []
        for ev in events:
            kind = event_kind(ev)
            node = int(ev.node)
            old_key = None
            if kind in ("move", "leave", "fail") and index.is_alive(node):
                old_key = index.cell_key(index.position(node))
            ctx = inc._mutate(ev)
            contexts.append(ctx)
            if ctx is None:
                records.append(("noop", kind, node, None, None))
            elif kind in ("join", "recover"):
                records.append(
                    ("insert", kind, node, None, index.cell_key(index.position(node)))
                )
            elif kind == "move":
                records.append(
                    ("move", kind, node, old_key, index.cell_key(index.position(node)))
                )
            else:  # leave / fail
                records.append(("remove", kind, node, old_key, None))

        # Route each group to the worker owning the tile of its first
        # anchor; groups with no repair work (all dead-slot moves) are
        # dropped here exactly like the serial backend drops them.  The
        # full anchor set of each group (a chain group can span tiles)
        # drives the halo-subscription bookkeeping.
        assigned: "list[list]" = [[] for _ in range(self.workers)]
        need_anchors: "list[list]" = [[] for _ in range(self.workers)]
        group_anchors: "dict[int, np.ndarray]" = {}
        for gid, idxs in enumerate(idx_groups):
            ctxs = [contexts[i] for i in idxs if contexts[i] is not None]
            if not ctxs:
                continue
            moved = [
                int(events[i].node)
                for i in idxs
                if contexts[i] is not None
                and contexts[i][0] == "move"
                and index.is_alive(int(events[i].node))
            ]
            anchors = np.asarray(
                [a for c in ctxs for a in c[2]], dtype=np.float64
            ).reshape(-1, 2)
            group_anchors[gid] = anchors
            wid = self.grid.tile_of(ctxs[0][2][0]) % self.workers
            assigned[wid].append((gid, ctxs, moved))
            need_anchors[wid].append(anchors)

        tracing = trace.is_enabled()
        diff_bytes = 0
        diffs_replayed = 0
        for wid in range(self.workers):
            na = need_anchors[wid]
            foreign = self._drain(
                wid, np.vstack(na) if na else np.empty((0, 2), dtype=np.float64)
            )
            diffs_replayed += len(foreign)
            if tracing and foreign:
                # Wire size of the halo exchange actually shipped.
                diff_bytes += len(pickle.dumps(foreign))
            self._send(wid, ("batch", foreign, records, assigned[wid]))

        replies = self._recv_all()

        # Splice every group's diffs in group order (disjoint regions —
        # any order yields the same state) and stage them as the other
        # workers' foreign diffs for the next batch: eagerly for workers
        # whose territory the group's anchors touch, backlogged for the
        # rest.
        results = []
        for wid, reply in enumerate(replies):
            for gid, rs, tdiff, cs, rdiff in reply:
                results.append((gid, wid, rs, tdiff, cs, rdiff))
        results.sort(key=lambda r: r[0])
        repairs = []
        conflict_repairs = []
        halo = 0
        diffs_suppressed = 0
        for gid, wid, rs, tdiff, cs, rdiff in results:
            inc.apply_repair_diff(tdiff)
            if di is not None and rdiff is not None:
                di.apply_row_diff(rdiff, _sync=False)
            repairs.append(rs)
            if cs is not None:
                conflict_repairs.append(cs)
            halo += _diff_size(tdiff, rdiff)
            diffs_suppressed += self._route_diff(wid, group_anchors[gid], tdiff, rdiff)

        inc.topology_version += 1
        if di is not None:
            di._mark_synced()

        batch_span.set(
            groups=len(idx_groups),
            halo_entries=halo,
            diff_bytes=diff_bytes,
            diffs_replayed=diffs_replayed,
            diffs_suppressed=diffs_suppressed,
        )
        reg = metrics.active()
        if reg is not None:
            reg.counter("pool.batches").inc()
            reg.counter("pool.halo_entries").inc(halo)
            reg.counter("pool.diff_bytes").inc(diff_bytes)
            reg.counter("pool.diffs_sent").inc(diffs_replayed)
            reg.counter("pool.diffs_suppressed").inc(diffs_suppressed)
            reg.gauge("pool.shm_bytes").set(self._arena.nbytes)
            rss = [
                t.get("rss_bytes", 0) for t in self._last_tele.values() if t
            ]
            if rss:
                reg.gauge("pool.worker_rss_bytes").set(max(rss))

        return BatchApplyStats(
            events=len(events),
            groups=len(idx_groups),
            group_sizes=tuple(len(g) for g in idx_groups),
            nodes_touched=sum(r.nodes_touched for r in repairs),
            edges_flipped=sum(r.edges_flipped for r in repairs),
            repairs=repairs,
            conflict_repairs=conflict_repairs,
            wall_time=time.perf_counter() - t0,
            backend="process",
            jobs=self.workers,
            halo_nodes=halo,
            diffs_replayed=diffs_replayed,
            diffs_suppressed=diffs_suppressed,
        )

    # ------------------------------------------------------------------
    # Halo subscriptions
    # ------------------------------------------------------------------
    @staticmethod
    def _near(a: np.ndarray, b: np.ndarray, r: float) -> bool:
        """Whether any point of ``a`` is within ``r`` of a point of ``b``."""
        if len(a) == 0 or len(b) == 0:
            return False
        dx = a[:, None, 0] - b[None, :, 0]
        dy = a[:, None, 1] - b[None, :, 1]
        return bool((dx * dx + dy * dy <= r * r).any())

    def _in_territory(self, wid: int, anchors: np.ndarray) -> bool:
        """Whether any anchor falls in worker ``wid``'s subscription zone."""
        if len(anchors) == 0:
            return True  # undeterminable region — deliver, never guess
        grid, r = self.grid, self._sub_radius
        return any(
            grid.halo_mask(anchors, t, r).any() for t in self._owned_tiles[wid]
        )

    def _route_diff(self, src_wid: int, anchors, tdiff, rdiff) -> int:
        """Stage one group diff for every other worker; returns deferrals."""
        entry = (self._seq, anchors, tdiff, rdiff)
        self._seq += 1
        deferred = 0
        for other in range(self.workers):
            if other == src_wid:
                continue
            if not self.halo_filter or self._in_territory(other, anchors):
                self._pending[other].append(entry)
            else:
                self._backlog[other].append(entry)
                self._diffs_deferred[other] += 1
                deferred += 1
        self.diffs_suppressed_total += deferred
        return deferred

    def _drain(self, wid: int, need_anchors: "np.ndarray | None") -> list:
        """The ordered foreign-diff list to ship to ``wid`` right now.

        Always includes the eager pending entries; pulls backlog entries
        whose regions the batch's assigned groups may read
        (``need_anchors`` within the 2(4+Δ)D independence radius), then
        closes backward over earlier overlapping backlog entries so the
        replay order of overlapping diffs always matches splice order.
        A backlog past ``max_backlog`` is flushed whole.
        """
        pending, self._pending[wid] = self._pending[wid], []
        backlog = self._backlog[wid]
        if not backlog:
            selected = []
        elif len(backlog) > self.max_backlog:
            selected, backlog = backlog, []
        else:
            n = len(backlog)
            need = [False] * n
            if need_anchors is not None and len(need_anchors):
                for i, (_, anch, _, _) in enumerate(backlog):
                    need[i] = self._near(anch, need_anchors, self._need_radius)
            # Backward transitive closure: delivering a diff requires
            # every *earlier* withheld diff whose region overlaps it
            # (later replay of the earlier diff would clobber newer
            # state on the shared nodes).
            sel_anchors = [e[1] for e in pending] + [
                backlog[i][1] for i in range(n) if need[i]
            ]
            for i in range(n - 1, -1, -1):
                if need[i]:
                    continue
                anch = backlog[i][1]
                if any(self._near(anch, s, self._need_radius) for s in sel_anchors):
                    need[i] = True
                    sel_anchors.append(anch)
            selected = [backlog[i] for i in range(n) if need[i]]
            backlog = [backlog[i] for i in range(n) if not need[i]]
        self._backlog[wid] = backlog
        out = sorted(selected + pending, key=lambda e: e[0])
        self._diffs_in[wid] += len(out)
        self.diffs_replayed_total += len(out)
        return [(td, rd) for _, _, td, rd in out]

    # ------------------------------------------------------------------
    # Pool-side MAC steps
    # ------------------------------------------------------------------
    def mac_step(self, *, seed: int, step: int) -> MacStep:
        """One §3.3 activate+resolve round, sharded over tile interiors.

        Each worker activates and resolves the edges owned by its tiles
        against the (2+Δ)D candidate halo; randomness comes from
        :func:`repro.dynamic.interference.edge_uniforms`, so the merged
        result is bit-identical to
        ``DynamicMAC(di, bound_mode="own").deterministic_step(seed=...,
        step=...)`` evaluated serially on the parent (asserted in
        ``tests/test_parallel_tiles.py``).  Requires the pool to carry a
        :class:`DynamicInterference` replica; only the ``"own"``
        activation bound parallelizes (degree lookups are local — the
        ``"neighborhood"`` bound reads whole rows).
        """
        if self._closed:
            raise RuntimeError("TileWorkerPool is closed")
        if self.di is None:
            raise RuntimeError(
                "mac_step requires the pool to maintain a DynamicInterference "
                "replica; construct TileWorkerPool(inc, interference)"
            )
        with trace.span("pool.mac_step", step=step, workers=self.workers) as sp:
            # Ship each worker its eager pending diffs first — the MAC
            # reads tile interiors + (2+Δ)D immediately, and those
            # regions are exactly what the eager subscription keeps
            # current.  (Backlogged diffs are outside the read region by
            # construction; the closure inside _drain still rides along
            # when a pending diff overlaps one.)
            for wid in range(self.workers):
                foreign = self._drain(wid, None)
                self._send(wid, ("mac", foreign, int(seed), int(step)))
            replies = self._recv_all()
            parts = [r for r in replies if len(r[0])]
            if parts:
                edges = np.vstack([r[0] for r in parts])
                costs = np.concatenate([r[1] for r in parts])
                ok = np.concatenate([r[2] for r in parts])
                order = np.argsort((edges[:, 0] << 32) | edges[:, 1], kind="stable")
                result = MacStep(edges=edges[order], costs=costs[order], ok=ok[order])
            else:
                result = MacStep(
                    edges=np.empty((0, 2), dtype=np.int64),
                    costs=np.empty(0),
                    ok=np.empty(0, dtype=bool),
                )
            sp.set(activated=result.activated, succeeded=result.succeeded)
        reg = metrics.active()
        if reg is not None:
            reg.counter("pool.mac_steps").inc()
            reg.counter("mac.activation_rounds").inc()
            reg.counter("mac.activated_edges").inc(result.activated)
            reg.counter("mac.resolved_attempts").inc(result.activated)
            reg.counter("mac.collision_failures").inc(
                result.activated - result.succeeded
            )
        return result

    # ------------------------------------------------------------------
    # Transport and failure handling
    # ------------------------------------------------------------------
    def _send(self, wid: int, msg) -> None:
        try:
            self._conns[wid].send(msg)
        except (BrokenPipeError, OSError):
            self._fail(wid)

    def _recv_all(self) -> "list[list]":
        replies: "dict[int, list]" = {}
        pending = set(range(self.workers))
        while pending:
            sentinels = {self._procs[w].sentinel: w for w in pending}
            conns = {self._conns[w]: w for w in pending}
            ready = _mp_wait(list(conns) + list(sentinels))
            for obj in ready:
                wid = conns.get(obj)
                if wid is None:
                    wid = sentinels[obj]
                    # Dead sentinel — but a reply may still sit in the
                    # pipe (worker died after sending).
                    if wid in pending and not self._conns[wid].poll():
                        self._fail(wid)
                    continue
                if wid not in pending:
                    continue
                try:
                    msg = self._conns[wid].recv()
                except (EOFError, OSError):
                    self._fail(wid)
                self._adopt_telemetry(wid, msg[2])
                if msg[0] == "error":
                    self._fail(wid, worker_traceback=msg[1])
                replies[wid] = msg[1]
                pending.discard(wid)
        return [replies[w] for w in range(self.workers)]

    def _adopt_telemetry(self, wid: int, tele: "dict | None") -> None:
        """Record a worker's reply telemetry; merge its span events.

        The parent grafts its halo-traffic bookkeeping onto the sample
        (``diffs_in`` / ``diffs_suppressed`` / ``shm_bytes``), so
        ``repro top`` and crash postmortems show per-worker subscription
        imbalance without another message round.
        """
        if not tele:
            return
        tele = dict(tele)
        events = tele.pop("events", None)
        if events:
            tracer = trace.active()
            if tracer is not None:
                tracer.ingest(events)
        tele["diffs_in"] = self._diffs_in[wid]
        tele["diffs_suppressed"] = self._diffs_deferred[wid]
        tele["shm_bytes"] = self._arena.nbytes
        self._last_tele[wid] = tele

    def telemetry_snapshot(self) -> "dict[int, dict]":
        """Per-worker telemetry incl. halo traffic (latest known sample)."""
        return {wid: dict(t) for wid, t in sorted(self._last_tele.items())}

    def _fail(self, wid: int, *, worker_traceback: "str | None" = None) -> None:
        """Tear everything down after a worker death and raise."""
        proc = self._procs[wid]
        exitcode = proc.exitcode
        tele = self._last_tele.get(wid)
        self.close()
        detail = (
            f"worker {wid} raised:\n{worker_traceback}"
            if worker_traceback
            else f"worker {wid} (pid {proc.pid}) died with exit code {exitcode}"
        )
        if tele:
            detail += (
                "; last telemetry: rss={:.1f}MB, cpu={:.2f}s, batch={}, "
                "last_span={}".format(
                    tele.get("rss_bytes", 0) / 1e6,
                    tele.get("cpu_user_s", 0.0) + tele.get("cpu_sys_s", 0.0),
                    tele.get("batch", "?"),
                    tele.get("last_span", "?"),
                )
            )
        raise WorkerCrashError(
            f"{detail}; the pool is closed, all shared-memory segments are "
            "unlinked, and the topology state may be mid-batch — rebuild "
            "IncrementalTheta/DynamicInterference and a fresh TileWorkerPool",
            telemetry=tele,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        # Give the index private buffers back *before* unmapping the
        # segments, or its views would dangle into unmapped pages.
        self.inc._index.unshare_buffers()
        self._arena.close()

    def __enter__(self) -> "TileWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
