"""Shared-memory array plumbing for the tiled process-parallel engine.

Workers of the tiled engine (:mod:`repro.parallel.engine`,
:mod:`repro.parallel.pool`) read node coordinates, CSR adjacency, and
conflict-row arrays as numpy views over
:class:`multiprocessing.shared_memory.SharedMemory` segments, so the
plane's geometry crosses the process boundary exactly once — no
per-task pickling of O(n) state.

Lifecycle is the hard part, and it is centralized here:

* the **parent** owns every segment through a :class:`ShmArena`, whose
  :meth:`~ShmArena.close` both closes and unlinks; it is idempotent,
  runs from ``with`` blocks, from pool teardown (including the
  worker-crash path), and from an ``atexit`` hook, so a SIGKILLed
  worker or an abandoned pool never leaks ``/dev/shm`` segments from a
  surviving parent;
* **workers** only ever attach (:func:`attach`), never unlink.  Attach
  de-registers the segment from the worker's ``resource_tracker``
  (or passes ``track=False`` on Python ≥ 3.13), because a tracker that
  believes it owns an attached segment would unlink it when the worker
  exits — yanking the mapping out from under its siblings.

If the *parent* itself is SIGKILLed nothing can run cleanup; that is an
OS-level limit shared by every shm user.  The supported failure mode —
a worker dying mid-batch — is handled by the pool: it detects the dead
sentinel, closes the arena (unlinking every segment), and raises
:class:`WorkerCrashError` (tested in ``tests/test_parallel_shm.py``).
"""

from __future__ import annotations

import atexit
import os
import sys
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "ShmHandle", "WorkerCrashError", "attach"]


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-batch; shared state is unrecoverable.

    Raised by the parent *after* it has terminated the surviving
    workers and unlinked every shared-memory segment, so the error
    never coexists with leaked ``/dev/shm`` entries.

    ``telemetry`` carries the crashed worker's last telemetry snapshot
    (RSS, CPU time, last span, batch id — see
    :mod:`repro.obs.telemetry`), captured from its most recent reply or
    its startup handshake, so a SIGKILL/OOM postmortem starts from the
    worker's final observed state instead of a bare "worker died".
    """

    def __init__(self, message: str, *, telemetry: "dict | None" = None) -> None:
        super().__init__(message)
        self.telemetry = telemetry


@dataclass(frozen=True)
class ShmHandle:
    """Picklable description of one shared array (name + layout).

    The parent sends handles to workers; :func:`attach` turns one back
    into a numpy view on the same physical pages.
    """

    name: str
    shape: "tuple[int, ...]"
    dtype: str

    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def attach(handle: ShmHandle) -> "tuple[np.ndarray, shared_memory.SharedMemory]":
    """Attach to a parent-owned segment as a numpy view (worker side).

    Returns ``(array, segment)``; the caller must keep the segment
    object alive as long as the array is in use (the pool workers cache
    both per handle name).  On Python ≥ 3.13 the attach passes
    ``track=False`` so only the parent's registration exists.  On older
    versions the attach re-registers with the resource tracker — a
    no-op here, because the fork-preferred pools
    (:func:`repro.harness.runner.pool_context`) share the parent's
    tracker daemon and its registry is a set; explicitly unregistering
    would instead erase the parent's own registration.
    """
    if sys.version_info >= (3, 13):
        seg = shared_memory.SharedMemory(name=handle.name, track=False)
    else:
        seg = shared_memory.SharedMemory(name=handle.name)
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)
    return arr, seg


class ShmArena:
    """Create, hand out, and deterministically destroy shared arrays.

    All segments allocated through one arena die together in
    :meth:`close` — close() + unlink() per segment, idempotent, also
    wired to ``atexit`` so an abandoned arena cannot outlive the
    parent process.
    """

    def __init__(self) -> None:
        self._segments: "list[shared_memory.SharedMemory]" = []
        self._handles: "dict[int, ShmHandle]" = {}
        self._closed = False
        # Fork children inherit the arena object (and its atexit hook);
        # only the creating process may unlink, or a worker exiting
        # normally would tear the segments out from under its siblings.
        self._owner_pid = os.getpid()
        atexit.register(self.close)

    # -- allocation --------------------------------------------------------
    @staticmethod
    def available_bytes() -> "int | None":
        """Free bytes on the shared-memory filesystem (None if unknown)."""
        try:
            st = os.statvfs("/dev/shm")
        except OSError:  # pragma: no cover - non-tmpfs platforms
            return None
        return int(st.f_bavail) * int(st.f_frsize)

    def empty(self, shape: "tuple[int, ...]", dtype) -> np.ndarray:
        """A new zero-initialized shared array of the given layout."""
        if self._closed:
            raise RuntimeError("ShmArena is closed")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        try:
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
        except OSError as exc:
            free = self.available_bytes()
            avail = f"{free:,}" if free is not None else "unknown"
            raise OSError(
                f"shared-memory allocation of {nbytes:,} bytes "
                f"(shape {tuple(shape)}, dtype {dt.str}) failed: {exc}; "
                f"/dev/shm has {avail} bytes available and this arena "
                f"(owner pid {self._owner_pid}) already pins "
                f"{self.nbytes:,} bytes across {len(self._segments)} "
                "segments — shrink the world, use a float32/int32 "
                "share_dtype, or raise the /dev/shm size limit"
            ) from exc
        self._segments.append(seg)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr[...] = np.zeros((), dtype=dt)
        self._handles[id(arr)] = ShmHandle(name=seg.name, shape=tuple(shape), dtype=dt.str)
        return arr

    def share(self, source: np.ndarray, *, dtype=None) -> np.ndarray:
        """Copy ``source`` into a new shared array and return the view.

        ``dtype`` stores the copy at a different precision (the float32
        arena option of the n=10⁶ tier); the cast is the only lossy step,
        so callers wanting bit-identical serial comparisons must quantize
        their reference through the same dtype.
        """
        arr = self.empty(source.shape, dtype if dtype is not None else source.dtype)
        arr[...] = source
        return arr

    def handle(self, arr: np.ndarray) -> ShmHandle:
        """The picklable handle of an array allocated by this arena."""
        try:
            return self._handles[id(arr)]
        except KeyError:
            raise KeyError("array was not allocated by this arena") from None

    @property
    def names(self) -> "list[str]":
        """Segment names currently owned (empty after :meth:`close`)."""
        return [seg.name for seg in self._segments]

    @property
    def nbytes(self) -> int:
        """Bytes currently pinned in shared memory (0 after :meth:`close`)."""
        return sum(seg.size for seg in self._segments)

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._handles.clear()
        segments, self._segments = self._segments, []
        owner = os.getpid() == self._owner_pid
        for seg in segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            if not owner:
                continue
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                # Already unlinked — e.g. the crash path tore the arena
                # down and a second close (atexit, __del__, an outer
                # ``with`` block) races it, or the resource tracker got
                # there first after a SIGKILLed worker.  Double-unlink
                # must stay a no-op.
                pass
        atexit.unregister(self.close)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()
