"""Plane decomposition into worker-owned tiles.

The paper's locality results make domain decomposition sound: a churn
event's repair region is bounded by 2D (E23), conflict rows reach
(1+Δ)D (E24), and repairs whose dirty regions are ≥ 2(4+Δ)D apart are
independent (the union–find radius of :mod:`repro.dynamic.batching`).
A :class:`TileGrid` carves the bounding box of the node set into an
``nx × ny`` grid of axis-aligned tiles at least that wide, so

* every node belongs to exactly one tile (its **owner**), and
* per-tile work only ever needs state within a fixed-width **halo**
  band around the tile — the rest of the plane is invisible to it.

Ownership is pure arithmetic on coordinates (``floor((x - x0)/w)``
clamped to the grid), identical in parent and workers, so no ownership
table is ever exchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TileGrid"]


@dataclass(frozen=True)
class TileGrid:
    """An ``nx × ny`` decomposition of ``[x0, x0+nx·w] × [y0, y0+ny·h]``.

    Tiles are indexed ``t = tx * ny + ty`` (column-major).  Points
    outside the box are clamped to the border tiles, so the outermost
    tiles own the half-open overhang as well — every point in the plane
    has exactly one owner.
    """

    x0: float
    y0: float
    tile_w: float
    tile_h: float
    nx: int
    ny: int

    @classmethod
    def cover(
        cls,
        bounds: "tuple[float, float, float, float]",
        *,
        tiles: int,
        min_width: float,
    ) -> "TileGrid":
        """A grid of roughly ``tiles`` near-square tiles over ``bounds``.

        ``min_width`` is the independence radius 2(4+Δ)D: no tile side
        ever drops below it (the tile count shrinks instead), so work
        on distinct non-adjacent tiles can never interact.
        """
        x0, y0, x1, y1 = (float(v) for v in bounds)
        if not (x1 >= x0 and y1 >= y0):
            raise ValueError(f"invalid bounds {bounds}")
        if min_width <= 0:
            raise ValueError("min_width must be positive")
        tiles = max(1, int(tiles))
        w, h = x1 - x0, y1 - y0
        max_nx = max(1, int(math.floor(w / min_width)))
        max_ny = max(1, int(math.floor(h / min_width)))
        # Aim for near-square tiles: split the target count in proportion
        # to the box aspect ratio, then clamp to the min-width limits.
        if w <= 0 or h <= 0:
            nx = min(tiles if h <= 0 else 1, max_nx)
            ny = min(tiles if w <= 0 else 1, max_ny)
        else:
            nx = int(round(math.sqrt(tiles * w / h))) or 1
            nx = min(max(1, nx), max_nx)
            ny = min(max(1, int(math.ceil(tiles / nx))), max_ny)
        return cls(
            x0=x0,
            y0=y0,
            tile_w=(w / nx) if w > 0 else max(min_width, 1.0),
            tile_h=(h / ny) if h > 0 else max(min_width, 1.0),
            nx=nx,
            ny=ny,
        )

    @property
    def n_tiles(self) -> int:
        return self.nx * self.ny

    # -- ownership ---------------------------------------------------------
    def tile_of_many(self, pts: np.ndarray) -> np.ndarray:
        """Owner tile id per point (vectorized, clamped to the grid)."""
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        tx = np.floor((pts[:, 0] - self.x0) / self.tile_w).astype(np.int64)
        ty = np.floor((pts[:, 1] - self.y0) / self.tile_h).astype(np.int64)
        np.clip(tx, 0, self.nx - 1, out=tx)
        np.clip(ty, 0, self.ny - 1, out=ty)
        return tx * self.ny + ty

    def tile_of(self, p: np.ndarray) -> int:
        """Owner tile id of one point."""
        return int(self.tile_of_many(np.asarray(p, dtype=np.float64).reshape(1, 2))[0])

    # -- geometry ----------------------------------------------------------
    def rect(self, t: int) -> "tuple[float, float, float, float]":
        """The closed rectangle ``(x0, y0, x1, y1)`` of tile ``t``."""
        if not 0 <= t < self.n_tiles:
            raise IndexError(f"tile {t} out of range for {self.n_tiles} tiles")
        tx, ty = divmod(int(t), self.ny)
        return (
            self.x0 + tx * self.tile_w,
            self.y0 + ty * self.tile_h,
            self.x0 + (tx + 1) * self.tile_w,
            self.y0 + (ty + 1) * self.tile_h,
        )

    def halo_mask(self, pts: np.ndarray, t: int, halo: float) -> np.ndarray:
        """Points within tile ``t``'s rectangle expanded by ``halo``.

        Border tiles extend to infinity on their outer sides (they own
        the clamped overhang), so the mask is a superset of the owned
        points for any ``halo ≥ 0``.
        """
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        x0, y0, x1, y1 = self.rect(t)
        tx, ty = divmod(int(t), self.ny)
        lo_x = -np.inf if tx == 0 else x0 - halo
        hi_x = np.inf if tx == self.nx - 1 else x1 + halo
        lo_y = -np.inf if ty == 0 else y0 - halo
        hi_y = np.inf if ty == self.ny - 1 else y1 + halo
        return (
            (pts[:, 0] >= lo_x)
            & (pts[:, 0] <= hi_x)
            & (pts[:, 1] >= lo_y)
            & (pts[:, 1] <= hi_y)
        )
