"""Plane decomposition into worker-owned tiles.

The paper's locality results make domain decomposition sound: a churn
event's repair region is bounded by 2D (E23), conflict rows reach
(1+Δ)D (E24), and repairs whose dirty regions are ≥ 2(4+Δ)D apart are
independent (the union–find radius of :mod:`repro.dynamic.batching`).
A :class:`TileGrid` carves the bounding box of the node set into an
``nx × ny`` grid of axis-aligned tiles at least that wide, so

* every node belongs to exactly one tile (its **owner**), and
* per-tile work only ever needs state within a fixed-width **halo**
  band around the tile — the rest of the plane is invisible to it.

Ownership is pure arithmetic on coordinates (``floor((x - x0)/w)``
clamped to the grid), identical in parent and workers, so no ownership
table is ever exchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TileGrid"]


@dataclass(frozen=True)
class TileGrid:
    """An ``nx × ny`` decomposition of ``[x0, x0+nx·w] × [y0, y0+ny·h]``.

    Tiles are indexed ``t = tx * ny + ty`` (column-major).  Points
    outside the box are clamped to the border tiles, so the outermost
    tiles own the half-open overhang as well — every point in the plane
    has exactly one owner.
    """

    x0: float
    y0: float
    tile_w: float
    tile_h: float
    nx: int
    ny: int

    @classmethod
    def cover(
        cls,
        bounds: "tuple[float, float, float, float]",
        *,
        tiles: "int | None" = None,
        min_width: "float | None" = None,
        shape: "tuple[int, int] | None" = None,
    ) -> "TileGrid":
        """A grid of roughly ``tiles`` near-square tiles over ``bounds``.

        ``min_width`` is the independence radius 2(4+Δ)D: no tile side
        ever drops below it (the tile count shrinks instead), so work
        on distinct non-adjacent tiles can never interact.

        ``shape=(nx, ny)`` pins the grid shape exactly instead (each
        axis still collapses to 1 over a degenerate zero extent).  The
        construction halos stay exact for *any* tile size — the
        min-width clamp only matters for independence-based routing —
        so a pinned shape skips it; ``min_width`` may then be omitted.
        """
        x0, y0, x1, y1 = (float(v) for v in bounds)
        if not (x1 >= x0 and y1 >= y0):
            raise ValueError(f"invalid bounds {bounds}")
        w, h = x1 - x0, y1 - y0
        if shape is not None:
            nx, ny = (int(v) for v in shape)
            if nx < 1 or ny < 1:
                raise ValueError(f"shape must be >= (1, 1), got {shape}")
            nx = nx if w > 0 else 1
            ny = ny if h > 0 else 1
        else:
            if tiles is None:
                raise ValueError("pass either tiles= or shape=")
            if min_width is None or min_width <= 0:
                raise ValueError("min_width must be positive")
            tiles = max(1, int(tiles))
            max_nx = max(1, int(math.floor(w / min_width)))
            max_ny = max(1, int(math.floor(h / min_width)))
            # Aim for near-square tiles: split the target count in
            # proportion to the box aspect ratio, then clamp to the
            # min-width limits.
            if w <= 0 or h <= 0:
                nx = min(tiles if h <= 0 else 1, max_nx)
                ny = min(tiles if w <= 0 else 1, max_ny)
            else:
                nx = int(round(math.sqrt(tiles * w / h))) or 1
                nx = min(max(1, nx), max_nx)
                ny = min(max(1, int(math.ceil(tiles / nx))), max_ny)
        fallback = max(min_width or 0.0, 1.0)
        return cls(
            x0=x0,
            y0=y0,
            tile_w=(w / nx) if w > 0 else fallback,
            tile_h=(h / ny) if h > 0 else fallback,
            nx=nx,
            ny=ny,
        )

    @property
    def n_tiles(self) -> int:
        return self.nx * self.ny

    @property
    def shape(self) -> "tuple[int, int]":
        return (self.nx, self.ny)

    # -- ownership ---------------------------------------------------------
    def tile_of_many(self, pts: np.ndarray) -> np.ndarray:
        """Owner tile id per point (vectorized, clamped to the grid)."""
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        tx = np.floor((pts[:, 0] - self.x0) / self.tile_w).astype(np.int64)
        ty = np.floor((pts[:, 1] - self.y0) / self.tile_h).astype(np.int64)
        np.clip(tx, 0, self.nx - 1, out=tx)
        np.clip(ty, 0, self.ny - 1, out=ty)
        return tx * self.ny + ty

    def tile_of(self, p: np.ndarray) -> int:
        """Owner tile id of one point."""
        return int(self.tile_of_many(np.asarray(p, dtype=np.float64).reshape(1, 2))[0])

    # -- geometry ----------------------------------------------------------
    def rect(self, t: int) -> "tuple[float, float, float, float]":
        """The closed rectangle ``(x0, y0, x1, y1)`` of tile ``t``."""
        if not 0 <= t < self.n_tiles:
            raise IndexError(f"tile {t} out of range for {self.n_tiles} tiles")
        tx, ty = divmod(int(t), self.ny)
        return (
            self.x0 + tx * self.tile_w,
            self.y0 + ty * self.tile_h,
            self.x0 + (tx + 1) * self.tile_w,
            self.y0 + (ty + 1) * self.tile_h,
        )

    def halo_mask(self, pts: np.ndarray, t: int, halo: float) -> np.ndarray:
        """Points within tile ``t``'s rectangle expanded by ``halo``.

        Border tiles extend to infinity on their outer sides (they own
        the clamped overhang), so the mask is a superset of the owned
        points for any ``halo ≥ 0``.
        """
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        x0, y0, x1, y1 = self.rect(t)
        tx, ty = divmod(int(t), self.ny)
        lo_x = -np.inf if tx == 0 else x0 - halo
        hi_x = np.inf if tx == self.nx - 1 else x1 + halo
        lo_y = -np.inf if ty == 0 else y0 - halo
        hi_y = np.inf if ty == self.ny - 1 else y1 + halo
        return (
            (pts[:, 0] >= lo_x)
            & (pts[:, 0] <= hi_x)
            & (pts[:, 1] >= lo_y)
            & (pts[:, 1] <= hi_y)
        )

    def _own_extent(self, t: int) -> "tuple[float, float, float, float]":
        """Tile ``t``'s owned extent with border overhang (±inf sides)."""
        x0, y0, x1, y1 = self.rect(t)
        tx, ty = divmod(int(t), self.ny)
        return (
            -np.inf if tx == 0 else x0,
            -np.inf if ty == 0 else y0,
            np.inf if tx == self.nx - 1 else x1,
            np.inf if ty == self.ny - 1 else y1,
        )

    def corner_mask(self, pts: np.ndarray, t: int, halo: float) -> np.ndarray:
        """Halo points of tile ``t`` that live in its *corner* squares.

        On a 1×k or k×1 grid every halo point is axis-adjacent; at k×k
        (k ≥ 2) the halo band also covers the four corner squares beyond
        **both** of the tile's axis extents — state that only a diagonal
        neighbor owns.  These points are still inside the halo rectangle
        of :meth:`halo_mask` (the exchange is implicit in the rectangle
        geometry), this mask just isolates them for accounting and tests.
        Border tiles own their overhang, so sides extended to ±inf never
        produce corners.
        """
        pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        lo_x, lo_y, hi_x, hi_y = self._own_extent(t)
        outside_x = (pts[:, 0] < lo_x) | (pts[:, 0] > hi_x)
        outside_y = (pts[:, 1] < lo_y) | (pts[:, 1] > hi_y)
        return self.halo_mask(pts, t, halo) & outside_x & outside_y

    def neighbors(self, t: int, *, diagonal: bool = True) -> "tuple[int, ...]":
        """Adjacent tile ids (including the diagonal corner neighbors)."""
        if not 0 <= t < self.n_tiles:
            raise IndexError(f"tile {t} out of range for {self.n_tiles} tiles")
        tx, ty = divmod(int(t), self.ny)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                if not diagonal and dx != 0 and dy != 0:
                    continue
                ux, uy = tx + dx, ty + dy
                if 0 <= ux < self.nx and 0 <= uy < self.ny:
                    out.append(ux * self.ny + uy)
        return tuple(sorted(out))
