"""Process-parallel tiled execution layer (sharding the plane).

The paper's locality results (E23/E24: bounded repair regions, flat
touched-sets) justify domain decomposition: :class:`TileGrid` carves
the plane into worker-owned tiles, :class:`ShmArena` puts coordinates,
edge arrays, and output slabs into shared memory, and
:class:`TiledEngine` / :class:`TileWorkerPool` run ΘALG construction,
conflict-row building, and churn repair across a persistent fork pool
— bit-identical to the serial kernels (see ``tests/test_parallel_tiles.py``).
"""

from repro.parallel.engine import (
    TiledEngine,
    TiledTheta,
    TileStats,
    tiled_interference_sets,
    tiled_theta,
)
from repro.parallel.pool import TileWorkerPool
from repro.parallel.shm import ShmArena, ShmHandle, WorkerCrashError, attach
from repro.parallel.tiles import TileGrid

__all__ = [
    "ShmArena",
    "ShmHandle",
    "TileGrid",
    "TileStats",
    "TileWorkerPool",
    "TiledEngine",
    "TiledTheta",
    "WorkerCrashError",
    "attach",
    "tiled_interference_sets",
    "tiled_theta",
]
